//! Seeded mask expansion.
//!
//! A deterministic stream of field elements from a 64-bit seed, used to
//! expand pairwise and self-mask seeds into full mask vectors. The stream is
//! a splitmix64 counter with rejection sampling into GF(2^61 − 1), so every
//! field element is (statistically) uniform and two parties holding the same
//! seed derive identical masks.

use crate::field::{Fe, MODULUS};

/// A deterministic pseudo-random stream of field elements.
#[derive(Debug, Clone)]
pub struct MaskStream {
    state: u64,
}

impl MaskStream {
    /// Creates a stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next uniform field element (rejection sampling on 61-bit draws).
    pub fn next_fe(&mut self) -> Fe {
        loop {
            let v = self.next_u64() & MODULUS; // 61 low bits
            if v < MODULUS {
                return Fe::new(v);
            }
        }
    }

    /// Expands the stream into a mask vector of the given length.
    #[must_use]
    pub fn expand(&mut self, len: usize) -> Vec<Fe> {
        (0..len).map(|_| self.next_fe()).collect()
    }
}

/// Derives the seed two clients share for their pairwise mask. Symmetric in
/// its arguments, and domain-separated by the session seed — this stands in
/// for the Diffie–Hellman agreement of the real protocol.
#[must_use]
pub fn pairwise_seed(session: u64, a: u64, b: u64) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    mix(mix(mix(session, 0x70A1), lo), hi)
}

/// Derives a client's private self-mask seed.
#[must_use]
pub fn self_seed(session: u64, client: u64) -> u64 {
    mix(mix(session, 0x5E1F), client)
}

/// Derives an independent session seed for one secure-aggregation instance
/// inside a hierarchy. Every `(tier, index)` pair gets its own seed — and
/// with it its own pairwise key graph, self masks, and Shamir shares — so
/// per-shard instances and the cross-shard merge instance share nothing but
/// the parent session. Domain-separated from [`self_seed`] and
/// [`pairwise_seed`] by a distinct tweak constant.
#[must_use]
pub fn instance_seed(session: u64, tier: u32, index: u64) -> u64 {
    mix(
        mix(mix(session, 0x712E_5EC0_11E2_A3C7), u64::from(tier)),
        index,
    )
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let a = MaskStream::new(42).expand(16);
        let b = MaskStream::new(42).expand(16);
        assert_eq!(a, b);
        let c = MaskStream::new(43).expand(16);
        assert_ne!(a, c);
    }

    #[test]
    fn elements_in_field_range() {
        let mut s = MaskStream::new(7);
        for _ in 0..10_000 {
            assert!(s.next_fe().value() < MODULUS);
        }
    }

    #[test]
    fn stream_looks_uniform() {
        // Mean of uniform field elements ≈ p/2.
        let mut s = MaskStream::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.next_fe().value() as f64).sum::<f64>() / f64::from(n);
        let expected = MODULUS as f64 / 2.0;
        assert!((mean / expected - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pairwise_seed_is_symmetric() {
        assert_eq!(pairwise_seed(1, 3, 9), pairwise_seed(1, 9, 3));
        assert_ne!(pairwise_seed(1, 3, 9), pairwise_seed(2, 3, 9));
        assert_ne!(pairwise_seed(1, 3, 9), pairwise_seed(1, 3, 10));
    }

    #[test]
    fn self_seed_differs_from_pairwise() {
        assert_ne!(self_seed(1, 3), pairwise_seed(1, 3, 3));
        assert_ne!(self_seed(1, 3), self_seed(1, 4));
    }

    #[test]
    fn instance_seeds_are_distinct_across_tiers_and_indices() {
        let mut seen = std::collections::HashSet::new();
        for tier in 0..3u32 {
            for index in 0..50u64 {
                assert!(
                    seen.insert(instance_seed(9, tier, index)),
                    "collision tier={tier} index={index}"
                );
            }
        }
        // And separated from the flat derivations.
        assert_ne!(instance_seed(9, 0, 3), self_seed(9, 3));
        assert_ne!(instance_seed(9, 0, 3), pairwise_seed(9, 0, 3));
        // Deterministic per (session, tier, index).
        assert_eq!(instance_seed(9, 1, 4), instance_seed(9, 1, 4));
        assert_ne!(instance_seed(9, 1, 4), instance_seed(10, 1, 4));
    }

    #[test]
    fn distinct_pairs_get_distinct_masks() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..30u64 {
            for b in (a + 1)..30u64 {
                assert!(seen.insert(pairwise_seed(5, a, b)), "collision {a},{b}");
            }
        }
    }
}
