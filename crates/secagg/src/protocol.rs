//! The four-round secure-aggregation protocol, simulated with explicit
//! dropout phases.
//!
//! Round structure (after Bonawitz et al., CCS 2017):
//!
//! 1. **Advertise keys** — every client joins; pairwise seeds `s_ij` are
//!    agreed (simulated by public derivation from the session seed in place
//!    of Diffie–Hellman; see crate docs).
//! 2. **Share keys** — every client draws a private self-mask seed `b_i`
//!    and Shamir-shares both `b_i` and its key material among all clients
//!    with threshold `k`.
//! 3. **Masked input** — surviving clients send
//!    `y_i = x_i + PRG(b_i) ± Σ PRG(s_ij)`.
//! 4. **Unmask** — surviving clients reveal, for each client that *sent an
//!    input*, shares of `b_i` (to strip self masks), and for each client
//!    that *dropped before sending*, shares of its key material (to strip
//!    the orphaned pairwise masks other clients added for it). The server
//!    never holds both kinds of share for the same client.
//!
//! The server's output is exactly `Σ_{i ∈ U2} x_i (mod 2^61 − 1)` — it sees
//! sums, never individual inputs, matching the primitive the paper's
//! Section 3.3 builds on.

use std::collections::BTreeSet;

use fednum_core::bits::BitPlanes;
use rand::Rng;

use crate::field::{Fe, MODULUS};
use crate::masking::{accumulate_mask, add_assign, ring_neighbors};
use crate::prg::{pairwise_seed, self_seed};
use crate::shamir::{share, Share, WeightCache};

/// Protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecAggConfig {
    /// Number of clients enrolled in round 1.
    pub n: usize,
    /// Shamir reconstruction threshold `k` (also the minimum number of
    /// unmask-round survivors).
    pub threshold: usize,
    /// Length of each client's input vector.
    pub vector_len: usize,
    /// Session seed (key-agreement transcript stand-in).
    pub session_seed: u64,
    /// Pairwise-mask graph degree: each client exchanges masks with this
    /// many ring neighbors (Bell et al., CCS 2020), making the protocol
    /// `O(n·k)`. `None` uses the complete graph of the original Bonawitz
    /// construction.
    pub neighbors: Option<usize>,
}

impl SecAggConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics unless `1 <= threshold <= n` and `vector_len > 0`.
    #[must_use]
    pub fn new(n: usize, threshold: usize, vector_len: usize, session_seed: u64) -> Self {
        assert!(n >= 1, "need at least one client");
        assert!(
            threshold >= 1 && threshold <= n,
            "threshold must be in 1..=n"
        );
        assert!(vector_len > 0, "vector_len must be positive");
        Self {
            n,
            threshold,
            vector_len,
            session_seed,
            neighbors: None,
        }
    }

    /// Switches to a `degree`-regular ring-neighbor mask graph.
    ///
    /// # Panics
    /// Panics if `degree == 0`.
    #[must_use]
    pub fn with_neighbors(mut self, degree: usize) -> Self {
        assert!(degree >= 1, "neighbor degree must be >= 1");
        self.neighbors = Some(degree);
        self
    }

    /// The effective mask-graph degree (complete graph when unset).
    fn degree(&self) -> usize {
        self.neighbors.unwrap_or(self.n.saturating_sub(1)).max(1)
    }
}

/// Which clients drop out, and when.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DropoutPlan {
    /// Clients that complete key sharing but never send a masked input
    /// (their orphaned pairwise masks must be reconstructed).
    pub before_masking: BTreeSet<usize>,
    /// Clients that send a masked input but are unavailable for the unmask
    /// round (their input still counts; they just can't reveal shares).
    pub after_masking: BTreeSet<usize>,
}

impl DropoutPlan {
    /// No dropouts.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }
}

/// Protocol failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecAggError {
    /// Fewer unmask-round survivors than the reconstruction threshold.
    TooFewSurvivors {
        /// Clients alive in the unmask round.
        survivors: usize,
        /// Required threshold.
        threshold: usize,
    },
    /// An input vector had the wrong length.
    InputLengthMismatch {
        /// Offending client.
        client: usize,
        /// Its vector length.
        got: usize,
        /// Expected length.
        expected: usize,
    },
    /// An input value was too large for exact field aggregation.
    InputTooLarge {
        /// Offending client.
        client: usize,
    },
    /// A client appears in both dropout phases.
    InconsistentDropouts {
        /// Offending client.
        client: usize,
    },
    /// The number of input vectors differs from the configured cohort size.
    WrongClientCount {
        /// Vectors supplied.
        got: usize,
        /// Configured cohort size.
        expected: usize,
    },
}

impl std::fmt::Display for SecAggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecAggError::TooFewSurvivors {
                survivors,
                threshold,
            } => write!(
                f,
                "only {survivors} unmask-round survivors, below threshold {threshold}"
            ),
            SecAggError::InputLengthMismatch {
                client,
                got,
                expected,
            } => write!(
                f,
                "client {client} sent a vector of length {got}, expected {expected}"
            ),
            SecAggError::InputTooLarge { client } => {
                write!(f, "client {client} input exceeds the field modulus")
            }
            SecAggError::InconsistentDropouts { client } => {
                write!(f, "client {client} listed in both dropout phases")
            }
            SecAggError::WrongClientCount { got, expected } => {
                write!(f, "{got} input vectors for a cohort of {expected}")
            }
        }
    }
}

impl std::error::Error for SecAggError {}

/// Successful aggregation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecAggOutcome {
    /// The exact component-wise sum of the contributing clients' inputs.
    pub sum: Vec<u64>,
    /// Clients whose inputs are included (those that sent masked input).
    pub contributors: Vec<usize>,
    /// Self-mask seeds the server reconstructed (one per contributor).
    pub self_masks_reconstructed: usize,
    /// Dropped clients whose pairwise masks had to be reconstructed.
    pub pairwise_masks_reconstructed: usize,
}

/// Secret material one client Shamir-shares — the self-mask seed and the
/// key seed, each split into two ≤32-bit field elements so a full u64
/// survives the 61-bit field. Shares go to `holders` (the client itself plus
/// its mask-graph neighbors; the whole cohort on the complete graph), with
/// per-client threshold `k`.
struct SharedSecrets {
    holders: Vec<usize>,
    k: usize,
    b_lo: Vec<Share>,
    b_hi: Vec<Share>,
    key_lo: Vec<Share>,
    key_hi: Vec<Share>,
}

fn share_u64(v: u64, k: usize, n: usize, rng: &mut dyn Rng) -> (Vec<Share>, Vec<Share>) {
    let lo = Fe::new(v & 0xFFFF_FFFF);
    let hi = Fe::new(v >> 32);
    (share(lo, k, n, rng), share(hi, k, n, rng))
}

/// Client `i`'s share holders (its mask-graph neighbors plus itself, sorted)
/// and its per-client reconstruction threshold: the global threshold on the
/// complete graph, a majority of the neighborhood on the sparse graph.
///
/// Both the share-level protocol and the plane-level fast path derive their
/// recovery feasibility from this one function, so the two can never
/// disagree about which dropout patterns are recoverable.
fn mask_holders(
    config: &SecAggConfig,
    i: usize,
    all: &[u64],
    degree: usize,
) -> (Vec<usize>, usize) {
    let mut holders: Vec<usize> = ring_neighbors(i as u64, all, degree)
        .into_iter()
        .map(|j| j as usize)
        .collect();
    holders.push(i);
    holders.sort_unstable();
    let k = if config.neighbors.is_none() {
        config.threshold.min(holders.len())
    } else {
        holders.len().div_ceil(2)
    };
    (holders, k)
}

impl SharedSecrets {
    /// Picks `self.k` shares of the given field (by index into `holders`)
    /// whose holders survive per the `alive` mask, or reports how many were
    /// available. The mask is indexed by client id: this test runs for
    /// every holder of every contributor, so it must stay O(1) per lookup.
    fn surviving<'a>(&'a self, shares: &'a [Share], alive: &[bool]) -> Result<Vec<Share>, usize> {
        let picked: Vec<Share> = self
            .holders
            .iter()
            .enumerate()
            .filter(|(_, &h)| alive[h])
            .map(|(idx, _)| shares[idx])
            .take(self.k)
            .collect();
        if picked.len() < self.k {
            Err(picked.len())
        } else {
            Ok(picked)
        }
    }
}

/// Runs the full protocol.
///
/// `inputs[i]` is client `i`'s private vector. Clients listed in
/// `plan.before_masking` never send their input (it is excluded from the
/// sum); clients in `plan.after_masking` contribute input but not shares.
///
/// # Errors
/// See [`SecAggError`].
pub fn run_secure_aggregation(
    config: &SecAggConfig,
    inputs: &[Vec<u64>],
    plan: &DropoutPlan,
    rng: &mut dyn Rng,
) -> Result<SecAggOutcome, SecAggError> {
    if inputs.len() != config.n {
        return Err(SecAggError::WrongClientCount {
            got: inputs.len(),
            expected: config.n,
        });
    }
    for client in &plan.before_masking {
        if plan.after_masking.contains(client) {
            return Err(SecAggError::InconsistentDropouts { client: *client });
        }
    }
    for (i, v) in inputs.iter().enumerate() {
        if v.len() != config.vector_len {
            return Err(SecAggError::InputLengthMismatch {
                client: i,
                got: v.len(),
                expected: config.vector_len,
            });
        }
        if v.iter().any(|&x| x >= MODULUS) {
            return Err(SecAggError::InputTooLarge { client: i });
        }
    }

    let session = config.session_seed;
    let all: Vec<u64> = (0..config.n as u64).collect();

    // Rounds 1–2: every client draws secret material and Shamir-shares it
    // among itself plus its mask-graph neighbors (the whole cohort on the
    // complete graph — the original Bonawitz construction; the neighborhood
    // variant is Bell et al.'s O(n·k) refinement). In this simulation the
    // self seeds follow the deterministic derivation used by
    // `client_mask_ring`; the key seed gates pairwise-mask recovery.
    let degree = config.degree();
    let secrets: Vec<SharedSecrets> = (0..config.n)
        .map(|i| {
            let (holders, k) = mask_holders(config, i, &all, degree);
            let b = self_seed(session, i as u64);
            let key = key_seed(session, i as u64);
            let (b_lo, b_hi) = share_u64(b, k, holders.len(), rng);
            let (key_lo, key_hi) = share_u64(key, k, holders.len(), rng);
            SharedSecrets {
                holders,
                k,
                b_lo,
                b_hi,
                key_lo,
                key_hi,
            }
        })
        .collect();

    // Round 3: surviving clients send masked inputs.
    let u2: Vec<usize> = (0..config.n)
        .filter(|i| !plan.before_masking.contains(i))
        .collect();
    let mut total = vec![Fe::ZERO; config.vector_len];
    let mut y = vec![Fe::ZERO; config.vector_len];
    for &i in &u2 {
        for (slot, &x) in y.iter_mut().zip(&inputs[i]) {
            *slot = Fe::new(x);
        }
        // The client's full mask, streamed straight into its input vector —
        // identical math to `client_mask_ring`, minus the per-client
        // allocations (this loop runs once per client per round).
        accumulate_mask(&mut y, self_seed(session, i as u64), false);
        for j in ring_neighbors(i as u64, &all, degree) {
            accumulate_mask(&mut y, pairwise_seed(session, i as u64, j), i as u64 > j);
        }
        add_assign(&mut total, &y, false);
    }

    // Round 4: unmasking with the surviving clients' shares.
    let u3: Vec<usize> = u2
        .iter()
        .copied()
        .filter(|i| !plan.after_masking.contains(i))
        .collect();
    if u3.len() < config.threshold {
        return Err(SecAggError::TooFewSurvivors {
            survivors: u3.len(),
            threshold: config.threshold,
        });
    }
    // Membership as a bitmask (not a tree set): `surviving` probes it once
    // per holder of every contributor. The weight cache makes the repeated
    // reconstructions cheap — absent dropouts, every contributor's share
    // points coincide, so the Lagrange weights are computed once.
    let mut alive = vec![false; config.n];
    for &i in &u3 {
        alive[i] = true;
    }
    let mut cache = WeightCache::new();
    let reconstruct_secret = |cache: &mut WeightCache,
                              s: &SharedSecrets,
                              lo: &[Share],
                              hi: &[Share]|
     -> Result<u64, SecAggError> {
        let too_few = |got| SecAggError::TooFewSurvivors {
            survivors: got,
            threshold: s.k,
        };
        let lo = s.surviving(lo, &alive).map_err(too_few)?;
        let hi = s.surviving(hi, &alive).map_err(too_few)?;
        Ok((cache.reconstruct(&hi).value() << 32) | cache.reconstruct(&lo).value())
    };

    // Strip self masks of every contributor (reconstruct b_i from the
    // surviving share holders — never requested for non-contributors, whose
    // key material is reconstructed instead).
    let mut self_masks = 0;
    for &i in &u2 {
        let s = &secrets[i];
        let b = reconstruct_secret(&mut cache, s, &s.b_lo, &s.b_hi)?;
        debug_assert_eq!(b, self_seed(session, i as u64));
        accumulate_mask(&mut total, b, true);
        self_masks += 1;
    }

    // Strip orphaned pairwise masks of clients that dropped before sending:
    // every contributing *neighbor* i of d added ±PRG(s_id); reconstruct d's
    // key material and cancel those terms.
    let mut contributed = vec![false; config.n];
    for &i in &u2 {
        contributed[i] = true;
    }
    let mut pairwise_masks = 0;
    for &d in &plan.before_masking {
        let s = &secrets[d];
        let key = reconstruct_secret(&mut cache, s, &s.key_lo, &s.key_hi)?;
        // The reconstructed key authorizes recomputing d's pairwise seeds.
        debug_assert_eq!(key, key_seed(session, d as u64));
        for j in ring_neighbors(d as u64, &all, degree) {
            let i = j as usize;
            if !contributed[i] {
                continue; // that neighbor never sent a mask either
            }
            let s = pairwise_seed(session, i as u64, d as u64);
            // Contributor i added +PRG if i < d, −PRG if i > d; subtract it.
            let i_added_positive = (i as u64) < (d as u64);
            accumulate_mask(&mut total, s, i_added_positive);
        }
        pairwise_masks += 1;
    }

    Ok(SecAggOutcome {
        sum: total.iter().map(|fe| fe.value()).collect(),
        contributors: u2,
        self_masks_reconstructed: self_masks,
        pairwise_masks_reconstructed: pairwise_masks,
    })
}

/// Runs the protocol over a packed [`BitPlanes`] cohort — the bit-plane
/// fast path for the bit-pushing one-hot shape.
///
/// Cohort slot `i` is client `i`; its input vector is the one-hot
/// `[ones | counts]` row the bit-pushing integration feeds the share-level
/// protocol (`v[bit] = reported bit`, `v[bits + bit] = 1`). Because the
/// server's output is *exactly* `Σ_{i ∈ U2} x_i` — every mask cancels in
/// the field — that sum equals a `count_ones()` tally of the planes
/// restricted to U2, 64 clients per instruction, with no share arithmetic
/// on the hot path.
///
/// What cannot be skipped is the protocol's failure surface: this entry
/// point replicates [`run_secure_aggregation`]'s validation order, its
/// survivor threshold, and the per-secret share-holder feasibility test
/// (via the shared `mask_holders` derivation), so a dropout pattern fails
/// with the identical [`SecAggError`] on both paths. No RNG is taken: the
/// share polynomials it never materializes are the only randomness the
/// share-level protocol consumes.
///
/// # Errors
/// See [`SecAggError`]; errors match the share-level path case for case.
pub fn run_secure_aggregation_planes(
    config: &SecAggConfig,
    planes: &BitPlanes,
    plan: &DropoutPlan,
) -> Result<SecAggOutcome, SecAggError> {
    if planes.slots() != config.n {
        return Err(SecAggError::WrongClientCount {
            got: planes.slots(),
            expected: config.n,
        });
    }
    for client in &plan.before_masking {
        if plan.after_masking.contains(client) {
            return Err(SecAggError::InconsistentDropouts { client: *client });
        }
    }
    let bits = planes.bits() as usize;
    if 2 * bits != config.vector_len {
        return Err(SecAggError::InputLengthMismatch {
            client: 0,
            got: 2 * bits,
            expected: config.vector_len,
        });
    }

    let all: Vec<u64> = (0..config.n as u64).collect();
    let degree = config.degree();
    let u2: Vec<usize> = (0..config.n)
        .filter(|i| !plan.before_masking.contains(i))
        .collect();
    let mut alive = vec![false; config.n];
    let mut u3_len = 0;
    for &i in &u2 {
        if !plan.after_masking.contains(&i) {
            alive[i] = true;
            u3_len += 1;
        }
    }
    if u3_len < config.threshold {
        return Err(SecAggError::TooFewSurvivors {
            survivors: u3_len,
            threshold: config.threshold,
        });
    }

    // The share-level path reconstructs b_i for every contributor and key
    // material for every pre-masking dropout; each fails when fewer than k
    // of that client's share holders survive. Same derivation, same
    // iteration order, same error values — without touching a share.
    let feasible = |i: usize| -> Result<(), SecAggError> {
        let (holders, k) = mask_holders(config, i, &all, degree);
        let survivors = holders.iter().filter(|&&h| alive[h]).take(k).count();
        if survivors < k {
            return Err(SecAggError::TooFewSurvivors {
                survivors,
                threshold: k,
            });
        }
        Ok(())
    };
    for &i in &u2 {
        feasible(i)?;
    }
    for &d in &plan.before_masking {
        feasible(d)?;
    }

    let mut keep = vec![0u64; planes.words_per_plane()];
    for &i in &u2 {
        keep[i / 64] |= 1 << (i % 64);
    }
    let mut sum = planes.ones_masked(&keep);
    sum.extend(planes.counts_masked(&keep));
    Ok(SecAggOutcome {
        sum,
        self_masks_reconstructed: u2.len(),
        pairwise_masks_reconstructed: plan.before_masking.len(),
        contributors: u2,
    })
}

/// The key-material seed a client Shamir-shares for dropout recovery
/// (stands in for its Diffie–Hellman private key).
#[must_use]
fn key_seed(session: u64, client: u64) -> u64 {
    // Domain-separated from both self and pairwise seeds.
    self_seed(session ^ 0xABCD_EF01_2345_6789, client)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inputs(n: usize, len: usize) -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| (0..len).map(|j| ((i * 31 + j * 7) % 100) as u64).collect())
            .collect()
    }

    fn expected_sum(inputs: &[Vec<u64>], include: impl Fn(usize) -> bool) -> Vec<u64> {
        let len = inputs[0].len();
        let mut sum = vec![0u64; len];
        for (i, v) in inputs.iter().enumerate() {
            if include(i) {
                for (s, &x) in sum.iter_mut().zip(v) {
                    *s += x;
                }
            }
        }
        sum
    }

    #[test]
    fn exact_sum_no_dropouts() {
        let config = SecAggConfig::new(10, 6, 8, 42);
        let ins = inputs(10, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_secure_aggregation(&config, &ins, &DropoutPlan::none(), &mut rng).unwrap();
        assert_eq!(out.sum, expected_sum(&ins, |_| true));
        assert_eq!(out.contributors.len(), 10);
        assert_eq!(out.self_masks_reconstructed, 10);
        assert_eq!(out.pairwise_masks_reconstructed, 0);
    }

    #[test]
    fn dropouts_before_masking_are_excluded_exactly() {
        let config = SecAggConfig::new(10, 5, 6, 7);
        let ins = inputs(10, 6);
        let plan = DropoutPlan {
            before_masking: [2usize, 7].into_iter().collect(),
            after_masking: BTreeSet::new(),
        };
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_secure_aggregation(&config, &ins, &plan, &mut rng).unwrap();
        assert_eq!(out.sum, expected_sum(&ins, |i| i != 2 && i != 7));
        assert_eq!(out.contributors.len(), 8);
        assert_eq!(out.pairwise_masks_reconstructed, 2);
    }

    #[test]
    fn dropouts_after_masking_still_counted() {
        let config = SecAggConfig::new(10, 5, 4, 9);
        let ins = inputs(10, 4);
        let plan = DropoutPlan {
            before_masking: BTreeSet::new(),
            after_masking: [0usize, 3, 9].into_iter().collect(),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_secure_aggregation(&config, &ins, &plan, &mut rng).unwrap();
        // Inputs of the late droppers are included.
        assert_eq!(out.sum, expected_sum(&ins, |_| true));
    }

    #[test]
    fn mixed_dropout_phases() {
        let config = SecAggConfig::new(12, 6, 5, 11);
        let ins = inputs(12, 5);
        let plan = DropoutPlan {
            before_masking: [1usize, 4].into_iter().collect(),
            after_masking: [0usize, 6, 8].into_iter().collect(),
        };
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_secure_aggregation(&config, &ins, &plan, &mut rng).unwrap();
        assert_eq!(out.sum, expected_sum(&ins, |i| i != 1 && i != 4));
    }

    #[test]
    fn below_threshold_fails_closed() {
        let config = SecAggConfig::new(6, 5, 3, 1);
        let ins = inputs(6, 3);
        let plan = DropoutPlan {
            before_masking: [0usize].into_iter().collect(),
            after_masking: [1usize].into_iter().collect(),
        };
        // Survivors: 4 < threshold 5.
        let mut rng = StdRng::seed_from_u64(5);
        let err = run_secure_aggregation(&config, &ins, &plan, &mut rng).unwrap_err();
        assert_eq!(
            err,
            SecAggError::TooFewSurvivors {
                survivors: 4,
                threshold: 5
            }
        );
    }

    #[test]
    fn wrong_vector_length_rejected() {
        let config = SecAggConfig::new(3, 2, 4, 1);
        let mut ins = inputs(3, 4);
        ins[1].pop();
        let mut rng = StdRng::seed_from_u64(6);
        let err =
            run_secure_aggregation(&config, &ins, &DropoutPlan::none(), &mut rng).unwrap_err();
        assert!(matches!(
            err,
            SecAggError::InputLengthMismatch { client: 1, .. }
        ));
    }

    #[test]
    fn oversized_input_rejected() {
        let config = SecAggConfig::new(2, 1, 1, 1);
        let ins = vec![vec![MODULUS], vec![0]];
        let mut rng = StdRng::seed_from_u64(7);
        let err =
            run_secure_aggregation(&config, &ins, &DropoutPlan::none(), &mut rng).unwrap_err();
        assert_eq!(err, SecAggError::InputTooLarge { client: 0 });
    }

    #[test]
    fn wrong_client_count_rejected() {
        let config = SecAggConfig::new(4, 2, 2, 1);
        let ins = inputs(3, 2);
        let mut rng = StdRng::seed_from_u64(10);
        let err =
            run_secure_aggregation(&config, &ins, &DropoutPlan::none(), &mut rng).unwrap_err();
        assert_eq!(
            err,
            SecAggError::WrongClientCount {
                got: 3,
                expected: 4
            }
        );
        assert!(err.to_string().contains("cohort of 4"));
    }

    #[test]
    fn inconsistent_dropout_plan_rejected() {
        let config = SecAggConfig::new(3, 1, 1, 1);
        let ins = inputs(3, 1);
        let plan = DropoutPlan {
            before_masking: [1usize].into_iter().collect(),
            after_masking: [1usize].into_iter().collect(),
        };
        let mut rng = StdRng::seed_from_u64(8);
        let err = run_secure_aggregation(&config, &ins, &plan, &mut rng).unwrap_err();
        assert_eq!(err, SecAggError::InconsistentDropouts { client: 1 });
    }

    #[test]
    fn bit_histogram_shape_round_trip() {
        // The bit-pushing integration shape: one-hot [ones | counts] rows.
        let bits = 8;
        let n = 50;
        let config = SecAggConfig::new(n, 30, 2 * bits, 99);
        let mut rng = StdRng::seed_from_u64(9);
        let mut ins = Vec::new();
        for i in 0..n {
            let j = i % bits; // assigned bit
            let bit_val = u64::from(i % 3 == 0);
            let mut v = vec![0u64; 2 * bits];
            v[j] = bit_val;
            v[bits + j] = 1;
            ins.push(v);
        }
        let out = run_secure_aggregation(&config, &ins, &DropoutPlan::none(), &mut rng).unwrap();
        // Counts per bit must sum to n.
        let total_counts: u64 = out.sum[bits..].iter().sum();
        assert_eq!(total_counts, n as u64);
        // Ones never exceed counts.
        for j in 0..bits {
            assert!(out.sum[j] <= out.sum[bits + j]);
        }
    }

    #[test]
    fn single_client_degenerate_case() {
        let config = SecAggConfig::new(1, 1, 2, 5);
        let ins = vec![vec![17, 3]];
        let mut rng = StdRng::seed_from_u64(10);
        let out = run_secure_aggregation(&config, &ins, &DropoutPlan::none(), &mut rng).unwrap();
        assert_eq!(out.sum, vec![17, 3]);
    }

    #[test]
    fn ring_graph_matches_complete_graph_sums() {
        let n = 40;
        let ins = inputs(n, 5);
        let full = SecAggConfig::new(n, 20, 5, 3);
        let ring = SecAggConfig::new(n, 20, 5, 3).with_neighbors(6);
        let plan = DropoutPlan {
            before_masking: [2usize, 19, 33].into_iter().collect(),
            after_masking: [7usize].into_iter().collect(),
        };
        let a = run_secure_aggregation(&full, &ins, &plan, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = run_secure_aggregation(&ring, &ins, &plan, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_eq!(a.sum, b.sum, "mask graph must not change the sum");
    }

    #[test]
    fn ring_graph_scales_to_large_cohorts() {
        // The whole point of the sparse graph: 5000 clients in well under a
        // second, which the complete graph cannot do.
        let n = 5000;
        let len = 4;
        let ins: Vec<Vec<u64>> = (0..n).map(|i| vec![(i % 7) as u64; len]).collect();
        let config = SecAggConfig::new(n, 2500, len, 9).with_neighbors(20);
        let plan = DropoutPlan {
            before_masking: (0..50).map(|i| i * 11).collect(),
            after_masking: BTreeSet::new(),
        };
        let mut rng = StdRng::seed_from_u64(4);
        let start = std::time::Instant::now();
        let out = run_secure_aggregation(&config, &ins, &plan, &mut rng).unwrap();
        assert!(
            start.elapsed().as_secs() < 30,
            "ring secagg too slow: {:?}",
            start.elapsed()
        );
        let expected = expected_sum(&ins, |i| !(0..50).map(|x| x * 11).any(|d| d == i));
        assert_eq!(out.sum, expected);
        assert_eq!(out.pairwise_masks_reconstructed, 50);
    }

    #[test]
    fn adjacent_dropouts_on_the_ring_are_handled() {
        // Two dropped clients that are each other's neighbors: neither added
        // a mask, so nothing must be subtracted for their mutual edge. With
        // degree 4 each dropped client still has a surviving majority of
        // share holders.
        let n = 10;
        let ins = inputs(n, 3);
        let config = SecAggConfig::new(n, 4, 3, 21).with_neighbors(4);
        let plan = DropoutPlan {
            before_masking: [4usize, 5].into_iter().collect(),
            after_masking: BTreeSet::new(),
        };
        let mut rng = StdRng::seed_from_u64(5);
        let out = run_secure_aggregation(&config, &ins, &plan, &mut rng).unwrap();
        assert_eq!(out.sum, expected_sum(&ins, |i| i != 4 && i != 5));
    }

    #[test]
    fn too_sparse_graph_fails_closed_on_adjacent_dropouts() {
        // Degree 2: a dropped client whose only surviving holder is one
        // neighbor cannot have its key reconstructed — the protocol must
        // error rather than output a wrong sum.
        let n = 10;
        let ins = inputs(n, 3);
        let config = SecAggConfig::new(n, 4, 3, 21).with_neighbors(2);
        let plan = DropoutPlan {
            before_masking: [4usize, 5].into_iter().collect(),
            after_masking: BTreeSet::new(),
        };
        let mut rng = StdRng::seed_from_u64(5);
        let err = run_secure_aggregation(&config, &ins, &plan, &mut rng).unwrap_err();
        assert!(matches!(err, SecAggError::TooFewSurvivors { .. }));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SecAggError::TooFewSurvivors {
            survivors: 2,
            threshold: 5,
        };
        assert!(e.to_string().contains("below threshold 5"));
    }

    /// A bit-pushing cohort in both representations: the one-hot
    /// `[ones | counts]` input vectors and the equivalent packed planes.
    fn one_hot_cohort(n: usize, bits: usize, salt: u64) -> (Vec<Vec<u64>>, BitPlanes) {
        let mut ins = Vec::with_capacity(n);
        let mut planes = BitPlanes::new(bits as u32, n);
        for i in 0..n {
            let h = (i as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let j = (h % bits as u64) as usize;
            let sent = h & (1 << 33) != 0;
            let mut v = vec![0u64; 2 * bits];
            v[j] = u64::from(sent);
            v[bits + j] = 1;
            ins.push(v);
            planes.record(i, j as u32, sent);
        }
        (ins, planes)
    }

    #[test]
    fn plane_path_matches_share_path_exactly() {
        let (n, bits) = (60, 8);
        let (ins, planes) = one_hot_cohort(n, bits, 17);
        for (plan, neighbors) in [
            (DropoutPlan::none(), None),
            (
                DropoutPlan {
                    before_masking: [3usize, 41, 59].into_iter().collect(),
                    after_masking: [7usize, 20].into_iter().collect(),
                },
                None,
            ),
            (
                DropoutPlan {
                    before_masking: [0usize, 30].into_iter().collect(),
                    after_masking: [1usize].into_iter().collect(),
                },
                Some(8),
            ),
        ] {
            let mut config = SecAggConfig::new(n, 30, 2 * bits, 99);
            if let Some(d) = neighbors {
                config = config.with_neighbors(d);
            }
            let mut rng = StdRng::seed_from_u64(11);
            let shares = run_secure_aggregation(&config, &ins, &plan, &mut rng).unwrap();
            let planes_out = run_secure_aggregation_planes(&config, &planes, &plan).unwrap();
            assert_eq!(planes_out, shares, "plan {plan:?} neighbors {neighbors:?}");
        }
    }

    #[test]
    fn plane_path_replicates_error_surface() {
        let (n, bits) = (10, 4);
        let (ins, planes) = one_hot_cohort(n, bits, 5);
        let config = SecAggConfig::new(n, 8, 2 * bits, 7);
        let check = |plan: &DropoutPlan, cfg: &SecAggConfig, planes: &BitPlanes| {
            let mut rng = StdRng::seed_from_u64(1);
            let share_err = run_secure_aggregation(cfg, &ins, plan, &mut rng).unwrap_err();
            let plane_err = run_secure_aggregation_planes(cfg, planes, plan).unwrap_err();
            assert_eq!(plane_err, share_err);
        };
        // Below the global survivor threshold.
        check(
            &DropoutPlan {
                before_masking: [0usize, 1].into_iter().collect(),
                after_masking: [2usize].into_iter().collect(),
            },
            &config,
            &planes,
        );
        // Inconsistent dropout phases.
        check(
            &DropoutPlan {
                before_masking: [3usize].into_iter().collect(),
                after_masking: [3usize].into_iter().collect(),
            },
            &config,
            &planes,
        );
        // Adjacent dropouts on a too-sparse ring: per-secret infeasibility.
        let sparse_n = 10;
        let (sparse_ins, sparse_planes) = one_hot_cohort(sparse_n, bits, 9);
        let sparse = SecAggConfig::new(sparse_n, 4, 2 * bits, 21).with_neighbors(2);
        let plan = DropoutPlan {
            before_masking: [4usize, 5].into_iter().collect(),
            after_masking: BTreeSet::new(),
        };
        let mut rng = StdRng::seed_from_u64(5);
        let share_err = run_secure_aggregation(&sparse, &sparse_ins, &plan, &mut rng).unwrap_err();
        let plane_err = run_secure_aggregation_planes(&sparse, &sparse_planes, &plan).unwrap_err();
        assert_eq!(plane_err, share_err);
        // Cohort-size mismatch.
        let small = BitPlanes::new(bits as u32, n - 1);
        assert_eq!(
            run_secure_aggregation_planes(&config, &small, &DropoutPlan::none()).unwrap_err(),
            SecAggError::WrongClientCount {
                got: n - 1,
                expected: n
            }
        );
        // Plane width incompatible with the configured vector length.
        let wide = BitPlanes::new(bits as u32 + 1, n);
        assert!(matches!(
            run_secure_aggregation_planes(&config, &wide, &DropoutPlan::none()).unwrap_err(),
            SecAggError::InputLengthMismatch { client: 0, .. }
        ));
    }
}
