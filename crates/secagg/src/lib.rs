//! Simulated secure aggregation.
//!
//! The paper's formal-privacy story leans on a secure-aggregation primitive:
//! "the server knows the sum of the input values, without revealing anything
//! further about the inputs of individual clients" (Section 3.3, citing
//! Bonawitz/Segal et al., CCS 2017). Bit-pushing's server state is a vector
//! of per-bit counts, which is exactly the shape that primitive aggregates.
//!
//! This crate implements the arithmetic core of that protocol, from scratch:
//!
//! * [`field`] — the prime field GF(2^61 − 1) all masks live in;
//! * [`prg`] — a seeded mask expander (splitmix64 stream with rejection
//!   sampling into the field);
//! * [`shamir`] — Shamir secret sharing with Lagrange reconstruction, used
//!   to recover dropped clients' masks;
//! * [`masking`] — pairwise cancelling masks plus per-client self-masks;
//! * [`protocol`] — the four-round protocol simulation with explicit
//!   dropout phases: the server ends up with *only* the sum.
//!
//! What is simulated rather than real: key agreement. Pairwise seeds are
//! derived from client ids and a session seed instead of an ECDH exchange —
//! the aggregation and dropout-recovery semantics the paper relies on are
//! preserved exactly (see `DESIGN.md` §2).

pub mod enclave;
pub mod field;
pub mod masking;
pub mod prg;
pub mod protocol;
pub mod shamir;

pub use enclave::{EnclaveAggregator, SanitizedAggregate, Sanitizer};
pub use field::Fe;
pub use masking::{accumulate_mask, add_assign, client_mask_ring, mask_from_seed, ring_neighbors};
pub use prg::{instance_seed, MaskStream};
pub use protocol::{
    run_secure_aggregation, run_secure_aggregation_planes, DropoutPlan, SecAggConfig, SecAggError,
    SecAggOutcome,
};
pub use shamir::{reconstruct, share, Share};
