//! Simulated trusted-enclave aggregation (the SGX path).
//!
//! The paper's deployment runs on infrastructure where "Intel offers
//! hardware with Secure Guard Extensions (SGX), which assumes trust in the
//! security of hardware beyond an edge device" (Section 1), and reports
//! that "achieving a *central differential privacy* guarantee by having the
//! enclave apply thresholding to the reported bit counts was effective, and
//! introduced a negligible amount of noise compared to the non-thresholded
//! sample" (Section 4.3, item 3).
//!
//! This module simulates that trust boundary in software: reports enter the
//! enclave individually (standing in for encrypted channels terminated
//! inside the enclave), but the *only* state that can ever leave is a
//! sanitized aggregate — the release method consumes the enclave, applies
//! the configured sanitizer (count thresholding and/or noise), and an audit
//! log records every release. Individual reports have no accessor at all,
//! so "the server never sees raw reports" is enforced by the type system
//! rather than by convention.

use rand::Rng;

/// Sanitization applied at release time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sanitizer {
    /// Release raw sums (secure aggregation semantics only — no DP).
    None,
    /// Zero any cell whose *report count* is at or below the threshold —
    /// the paper's deployed central-DP mechanism.
    Threshold {
        /// Minimum surviving count.
        min_count: u64,
    },
    /// Thresholding plus discrete Laplace noise on each released sum
    /// (classical central DP, for comparison).
    ThresholdAndNoise {
        /// Minimum surviving count.
        min_count: u64,
        /// ε for the per-cell Laplace noise (sensitivity 1: one client
        /// changes one cell by one).
        epsilon: f64,
    },
}

/// One audit-log entry: what was released and how it was sanitized.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEntry {
    /// Task label supplied at release.
    pub task: String,
    /// Reports that entered the enclave.
    pub reports_in: u64,
    /// Cells zeroed by thresholding.
    pub cells_suppressed: usize,
    /// Whether noise was added.
    pub noised: bool,
}

/// A simulated enclave accumulating per-cell (ones, totals) histograms.
///
/// Cells are bit indices for bit-pushing, buckets for histograms — the
/// enclave is agnostic.
#[derive(Debug)]
pub struct EnclaveAggregator {
    ones: Vec<u64>,
    totals: Vec<u64>,
    sanitizer: Sanitizer,
}

/// The sanitized aggregate released by the enclave.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizedAggregate {
    /// Per-cell one-counts after sanitization (noise can push these
    /// negative, hence `f64`).
    pub ones: Vec<f64>,
    /// Per-cell report totals after sanitization.
    pub totals: Vec<u64>,
    /// The audit entry recorded for this release.
    pub audit: AuditEntry,
}

impl EnclaveAggregator {
    /// Creates an enclave over `cells` histogram cells.
    ///
    /// # Panics
    /// Panics if `cells == 0`.
    #[must_use]
    pub fn new(cells: usize, sanitizer: Sanitizer) -> Self {
        assert!(cells >= 1, "need at least one cell");
        Self {
            ones: vec![0; cells],
            totals: vec![0; cells],
            sanitizer,
        }
    }

    /// Ingests one client report (conceptually: decrypted inside the
    /// enclave).
    ///
    /// # Panics
    /// Panics if `cell` is out of range.
    pub fn ingest(&mut self, cell: usize, bit: bool) {
        assert!(cell < self.ones.len(), "cell {cell} out of range");
        self.ones[cell] += u64::from(bit);
        self.totals[cell] += 1;
    }

    /// Reports ingested so far (count only — the contents are sealed).
    #[must_use]
    pub fn reports(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Releases the sanitized aggregate, consuming the enclave: no further
    /// queries against the same raw state are possible (one release per
    /// collection, matching the deployment's one-aggregate-per-task rule).
    pub fn release(self, task: impl Into<String>, rng: &mut dyn Rng) -> SanitizedAggregate {
        let reports_in = self.reports();
        let mut ones: Vec<f64> = self.ones.iter().map(|&o| o as f64).collect();
        let mut totals = self.totals.clone();
        let mut suppressed = 0;
        let mut noised = false;
        match self.sanitizer {
            Sanitizer::None => {}
            Sanitizer::Threshold { min_count } => {
                for (o, t) in ones.iter_mut().zip(&mut totals) {
                    if *t <= min_count {
                        *o = 0.0;
                        *t = 0;
                        suppressed += 1;
                    }
                }
            }
            Sanitizer::ThresholdAndNoise { min_count, epsilon } => {
                assert!(epsilon > 0.0, "epsilon must be positive");
                for (o, t) in ones.iter_mut().zip(&mut totals) {
                    if *t <= min_count {
                        *o = 0.0;
                        *t = 0;
                        suppressed += 1;
                    } else {
                        *o += sample_laplace(1.0 / epsilon, rng);
                    }
                }
                noised = true;
            }
        }
        SanitizedAggregate {
            ones,
            totals,
            audit: AuditEntry {
                task: task.into(),
                reports_in,
                cells_suppressed: suppressed,
                noised,
            },
        }
    }
}

fn sample_laplace(scale: f64, rng: &mut dyn Rng) -> f64 {
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filled(sanitizer: Sanitizer) -> EnclaveAggregator {
        let mut e = EnclaveAggregator::new(4, sanitizer);
        // Cell 0: 60/100 ones; cell 1: 3/5; cell 2: 0/0; cell 3: 1/1.
        for i in 0..100 {
            e.ingest(0, i < 60);
        }
        for i in 0..5 {
            e.ingest(1, i < 3);
        }
        e.ingest(3, true);
        e
    }

    #[test]
    fn raw_release_matches_ingest() {
        let e = filled(Sanitizer::None);
        assert_eq!(e.reports(), 106);
        let mut rng = StdRng::seed_from_u64(1);
        let out = e.release("t", &mut rng);
        assert_eq!(out.ones, vec![60.0, 3.0, 0.0, 1.0]);
        assert_eq!(out.totals, vec![100, 5, 0, 1]);
        assert_eq!(out.audit.reports_in, 106);
        assert_eq!(out.audit.cells_suppressed, 0);
        assert!(!out.audit.noised);
    }

    #[test]
    fn thresholding_suppresses_small_cells() {
        let e = filled(Sanitizer::Threshold { min_count: 5 });
        let mut rng = StdRng::seed_from_u64(2);
        let out = e.release("t", &mut rng);
        // Cells 1 (5 ≤ 5), 2 (0) and 3 (1) suppressed; cell 0 survives.
        assert_eq!(out.ones, vec![60.0, 0.0, 0.0, 0.0]);
        assert_eq!(out.totals, vec![100, 0, 0, 0]);
        assert_eq!(out.audit.cells_suppressed, 3);
    }

    #[test]
    fn thresholding_noise_is_negligible_at_scale() {
        // The Section 4.3 finding: compared to the sample, the threshold
        // perturbs almost nothing for well-populated cells.
        let mut e = EnclaveAggregator::new(1, Sanitizer::Threshold { min_count: 10 });
        for i in 0..100_000 {
            e.ingest(0, i % 3 == 0);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let out = e.release("t", &mut rng);
        let mean = out.ones[0] / out.totals[0] as f64;
        let exact = 33_334.0 / 100_000.0; // ceil(100000/3) ones
        assert!((mean - exact).abs() < 1e-12, "mean {mean} unchanged");
    }

    #[test]
    fn noise_variant_perturbs_but_stays_unbiased() {
        let mut sum = 0.0;
        let trials = 400;
        for s in 0..trials {
            let e = filled(Sanitizer::ThresholdAndNoise {
                min_count: 2,
                epsilon: 1.0,
            });
            let mut rng = StdRng::seed_from_u64(s);
            let out = e.release("t", &mut rng);
            assert!(out.audit.noised);
            sum += out.ones[0];
        }
        let avg = sum / f64::from(trials as u32);
        assert!((avg - 60.0).abs() < 0.5, "noised mean {avg}");
    }

    #[test]
    fn release_consumes_the_enclave() {
        // Compile-time property: `release(self)` moves the enclave, so raw
        // state cannot be queried twice. Runtime check: audit totals match.
        let e = filled(Sanitizer::None);
        let mut rng = StdRng::seed_from_u64(4);
        let out = e.release("only once", &mut rng);
        assert_eq!(out.audit.task, "only once");
        // `e.reports()` here would not compile — enforced by ownership.
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_cell() {
        let mut e = EnclaveAggregator::new(2, Sanitizer::None);
        e.ingest(2, true);
    }
}
