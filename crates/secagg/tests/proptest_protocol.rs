//! Property tests: for *any* dropout plan and either mask graph, the
//! protocol either outputs the exact sum of the contributing clients or
//! fails closed — never a wrong sum.

use std::collections::BTreeSet;

use fednum_secagg::protocol::{run_secure_aggregation, DropoutPlan, SecAggConfig, SecAggError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn expected_sum(inputs: &[Vec<u64>], excluded: &BTreeSet<usize>) -> Vec<u64> {
    let len = inputs[0].len();
    let mut sum = vec![0u64; len];
    for (i, v) in inputs.iter().enumerate() {
        if !excluded.contains(&i) {
            for (s, &x) in sum.iter_mut().zip(v) {
                *s += x;
            }
        }
    }
    sum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Complete graph: exact sum or loud failure under arbitrary dropouts.
    #[test]
    fn complete_graph_exact_or_fails_closed(
        n in 2usize..24,
        len in 1usize..6,
        threshold_frac in 0.3f64..0.9,
        seed in any::<u64>(),
        drop_bits in any::<u32>(),
    ) {
        let threshold = ((n as f64 * threshold_frac) as usize).clamp(1, n);
        let config = SecAggConfig::new(n, threshold, len, seed ^ 0xAB);
        let inputs: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..len).map(|j| ((i * 13 + j * 7) % 97) as u64).collect())
            .collect();
        // Derive a dropout plan from the random bits: bit 2i = drop-before,
        // bit 2i+1 = drop-after (before wins).
        let mut plan = DropoutPlan::none();
        for i in 0..n.min(16) {
            if drop_bits >> (2 * i) & 1 == 1 {
                plan.before_masking.insert(i);
            } else if drop_bits >> (2 * i + 1) & 1 == 1 {
                plan.after_masking.insert(i);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        match run_secure_aggregation(&config, &inputs, &plan, &mut rng) {
            Ok(out) => {
                prop_assert_eq!(out.sum, expected_sum(&inputs, &plan.before_masking));
                prop_assert_eq!(
                    out.contributors.len(),
                    n - plan.before_masking.len()
                );
            }
            Err(SecAggError::TooFewSurvivors { survivors, threshold: t }) => {
                // Failing closed is only legitimate when survivors really
                // are below the applicable threshold.
                prop_assert!(survivors < t);
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Ring graph: same exactness property with a sparse mask graph.
    #[test]
    fn ring_graph_exact_or_fails_closed(
        n in 4usize..40,
        degree in 2usize..10,
        seed in any::<u64>(),
        drop_bits in any::<u32>(),
    ) {
        let config = SecAggConfig::new(n, n / 2, 3, seed ^ 0xCD).with_neighbors(degree);
        let inputs: Vec<Vec<u64>> = (0..n)
            .map(|i| vec![(i % 11) as u64, 1, (i % 3) as u64])
            .collect();
        let mut plan = DropoutPlan::none();
        for i in 0..n.min(32) {
            if drop_bits >> i & 1 == 1 {
                plan.before_masking.insert(i);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        match run_secure_aggregation(&config, &inputs, &plan, &mut rng) {
            Ok(out) => {
                prop_assert_eq!(out.sum, expected_sum(&inputs, &plan.before_masking));
            }
            Err(SecAggError::TooFewSurvivors { survivors, threshold }) => {
                prop_assert!(survivors < threshold);
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// The two graphs agree whenever both succeed.
    #[test]
    fn graphs_agree(n in 4usize..20, seed in any::<u64>()) {
        let inputs: Vec<Vec<u64>> = (0..n).map(|i| vec![(i * i % 19) as u64]).collect();
        let full = SecAggConfig::new(n, 2, 1, 5);
        let ring = SecAggConfig::new(n, 2, 1, 5).with_neighbors(4);
        let a = run_secure_aggregation(&full, &inputs, &DropoutPlan::none(),
            &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = run_secure_aggregation(&ring, &inputs, &DropoutPlan::none(),
            &mut StdRng::seed_from_u64(seed.wrapping_add(1))).unwrap();
        prop_assert_eq!(a.sum, b.sum);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Threshold boundary, complete graph: exactly `t` survivors at the
    /// unmask round reconstruct the exact sum; `t − 1` fail closed with
    /// `TooFewSurvivors` — never a panic, never a wrong sum.
    #[test]
    fn complete_graph_threshold_boundary_is_exact(
        n in 3usize..24,
        t_frac in 0.2f64..0.95,
        seed in any::<u64>(),
    ) {
        let threshold = ((n as f64 * t_frac).ceil() as usize).clamp(2, n - 1);
        let config = SecAggConfig::new(n, threshold, 2, seed ^ 0xEF);
        let inputs: Vec<Vec<u64>> = (0..n).map(|i| vec![i as u64, 1]).collect();

        // Exactly `threshold` clients alive at the unmask round: success,
        // and the after-masking droppers' inputs still count.
        let mut plan = DropoutPlan::none();
        for i in 0..(n - threshold) {
            plan.after_masking.insert(i);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let out = run_secure_aggregation(&config, &inputs, &plan, &mut rng)
            .expect("exactly t survivors must reconstruct");
        prop_assert_eq!(out.sum, expected_sum(&inputs, &BTreeSet::new()));

        // One fewer survivor: a typed failure, not a panic.
        plan.after_masking.insert(n - threshold);
        let mut rng = StdRng::seed_from_u64(seed);
        match run_secure_aggregation(&config, &inputs, &plan, &mut rng) {
            Err(SecAggError::TooFewSurvivors { survivors, threshold: th }) => {
                prop_assert_eq!(survivors, threshold - 1);
                prop_assert_eq!(th, threshold);
            }
            other => prop_assert!(false, "expected TooFewSurvivors, got {other:?}"),
        }
    }

    /// Threshold boundary, ring-neighbor graph. Share reconstruction there
    /// needs a majority of each neighborhood, so the droppers are spread
    /// evenly around the ring; the global threshold check still gives the
    /// exact `t` / `t − 1` boundary.
    #[test]
    fn ring_graph_threshold_boundary_is_exact(
        n in 12usize..40,
        seed in any::<u64>(),
    ) {
        let threshold = (n as f64 * 0.75).ceil() as usize;
        let config = SecAggConfig::new(n, threshold, 2, seed ^ 0xF1).with_neighbors(6);
        let inputs: Vec<Vec<u64>> = (0..n).map(|i| vec![(i % 7) as u64, 1]).collect();

        // Evenly spaced after-masking droppers, exactly `threshold` alive:
        // every 6-neighborhood keeps its share majority.
        let droppers = n - threshold;
        let mut plan = DropoutPlan::none();
        for j in 0..droppers {
            plan.after_masking.insert(j * n / droppers.max(1));
        }
        prop_assert_eq!(plan.after_masking.len(), droppers);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = run_secure_aggregation(&config, &inputs, &plan, &mut rng)
            .expect("exactly t spread-out survivors must reconstruct");
        prop_assert_eq!(out.sum, expected_sum(&inputs, &BTreeSet::new()));

        // Drop one more (first index not already dropped): typed failure.
        let extra = (0..n).find(|i| !plan.after_masking.contains(i)).unwrap();
        plan.after_masking.insert(extra);
        let mut rng = StdRng::seed_from_u64(seed);
        match run_secure_aggregation(&config, &inputs, &plan, &mut rng) {
            Err(SecAggError::TooFewSurvivors { survivors, .. }) => {
                prop_assert_eq!(survivors, threshold - 1);
            }
            other => prop_assert!(false, "expected TooFewSurvivors, got {other:?}"),
        }
    }
}
