//! Property tests on the round orchestrator: conservation and fail-closed
//! invariants under arbitrary dropout and auto-adjustment settings.

use fednum_core::encoding::FixedPointCodec;
use fednum_core::protocol::basic::BasicConfig;
use fednum_core::sampling::BitSampling;
use fednum_fedsim::round::{run_round_impl, FederatedMeanConfig, FederatedOutcome, RoundError};
use fednum_fedsim::DropoutModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Non-deprecated stand-in for the legacy free function; the property bodies
// below keep their original call shape.
fn run_federated_mean(
    values: &[f64],
    config: &FederatedMeanConfig,
    rng: &mut dyn Rng,
) -> Result<FederatedOutcome, RoundError> {
    run_round_impl(values, config, None, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: contacted ≤ population, reports ≤ contacted, and the
    /// per-bit counts in the outcome sum to the reports.
    #[test]
    fn report_conservation(
        n in 10usize..3000,
        rate in 0.0f64..0.9,
        waves in 1u32..5,
        wave_fraction in 0.2f64..1.0,
        seed in any::<u64>(),
    ) {
        let dropout = if rate == 0.0 {
            DropoutModel::None
        } else {
            DropoutModel::bernoulli(rate)
        };
        let config = FederatedMeanConfig::new(BasicConfig::new(
            FixedPointCodec::integer(8),
            BitSampling::geometric(8, 1.0),
        ))
        .with_dropout(dropout)
        .with_auto_adjust(waves, 20, wave_fraction);
        let values: Vec<f64> = (0..n).map(|i| (i % 200) as f64).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        match run_federated_mean(&values, &config, &mut rng) {
            Ok(out) => {
                prop_assert!(out.contacted <= n);
                prop_assert!(out.reports <= out.contacted as u64);
                prop_assert_eq!(
                    out.outcome.accumulator.total_reports(),
                    out.reports
                );
                prop_assert!(out.waves_used >= 1 && out.waves_used <= waves);
                prop_assert!(out.outcome.estimate.is_finite());
                prop_assert!((0.0..=255.0 + 1e-9).contains(&out.outcome.estimate));
            }
            Err(RoundError::NoReports) => {
                // Only legitimate under dropout.
                prop_assert!(rate > 0.0);
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Without dropout, every contacted client reports — the one-bit
    /// worst-case promise holds through the orchestrator.
    #[test]
    fn no_dropout_means_full_participation(
        n in 5usize..2000,
        gamma in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let config = FederatedMeanConfig::new(BasicConfig::new(
            FixedPointCodec::integer(10),
            BitSampling::geometric(10, gamma),
        ));
        let values: Vec<f64> = (0..n).map(|i| (i % 900) as f64).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = run_federated_mean(&values, &config, &mut rng).unwrap();
        prop_assert_eq!(out.contacted, n);
        prop_assert_eq!(out.reports, n as u64);
    }
}
