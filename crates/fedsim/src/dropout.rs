//! Client dropout models.
//!
//! "Client devices participating in FA exhibit diverse system
//! characteristics, and their network connection can be unreliable...
//! Client devices can drop out at any point of the federated protocol"
//! (Section 4.3). Dropout interacts with bit-pushing in two ways: it thins
//! the per-bit report counts (handled by auto-adjustment in
//! [`crate::round`]) and it exercises the secure-aggregation recovery path.

use rand::{Rng, RngExt};

use crate::error::FedError;

/// A dropout model applied to each contacted client independently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DropoutModel {
    /// Nobody drops.
    None,
    /// Each contacted client fails to respond with this probability.
    Bernoulli {
        /// Per-client dropout probability in `[0, 1)`.
        rate: f64,
    },
    /// Distinguishes when in the protocol the client vanishes — relevant
    /// with secure aggregation, where dropping before vs. after sending the
    /// masked input takes different recovery paths.
    Phased {
        /// Probability of dropping before sending any report.
        before_report: f64,
        /// Probability of dropping after reporting but before the unmask
        /// round (secure aggregation only).
        after_report: f64,
    },
}

/// A single client's fate in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Responds and stays to the end.
    Responds,
    /// Never responds.
    DropsBeforeReport,
    /// Responds but is gone for the unmask round.
    DropsAfterReport,
}

impl DropoutModel {
    /// Creates a Bernoulli model.
    ///
    /// # Errors
    /// [`FedError::InvalidConfig`] unless `0 <= rate < 1`.
    pub fn try_bernoulli(rate: f64) -> Result<Self, FedError> {
        if !(0.0..1.0).contains(&rate) {
            return Err(FedError::InvalidConfig(format!(
                "rate must be in [0, 1), got {rate}"
            )));
        }
        Ok(DropoutModel::Bernoulli { rate })
    }

    /// Creates a Bernoulli model.
    ///
    /// # Panics
    /// Panics unless `0 <= rate < 1`; see [`DropoutModel::try_bernoulli`]
    /// for the non-panicking variant.
    #[must_use]
    pub fn bernoulli(rate: f64) -> Self {
        Self::try_bernoulli(rate).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a phased model.
    ///
    /// # Errors
    /// [`FedError::InvalidConfig`] unless both probabilities are in `[0, 1)`
    /// and sum below 1.
    pub fn try_phased(before_report: f64, after_report: f64) -> Result<Self, FedError> {
        for rate in [before_report, after_report] {
            if !(0.0..1.0).contains(&rate) {
                return Err(FedError::InvalidConfig(format!(
                    "rate must be in [0, 1), got {rate}"
                )));
            }
        }
        if before_report + after_report >= 1.0 {
            return Err(FedError::InvalidConfig(format!(
                "rates must sum below 1, got {}",
                before_report + after_report
            )));
        }
        Ok(DropoutModel::Phased {
            before_report,
            after_report,
        })
    }

    /// Creates a phased model.
    ///
    /// # Panics
    /// Panics unless both probabilities are in `[0, 1)` and sum below 1; see
    /// [`DropoutModel::try_phased`] for the non-panicking variant.
    #[must_use]
    pub fn phased(before_report: f64, after_report: f64) -> Self {
        Self::try_phased(before_report, after_report).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Samples one client's fate.
    pub fn sample(&self, rng: &mut dyn Rng) -> Fate {
        match *self {
            DropoutModel::None => Fate::Responds,
            DropoutModel::Bernoulli { rate } => {
                if rate > 0.0 && rng.random_bool(rate) {
                    Fate::DropsBeforeReport
                } else {
                    Fate::Responds
                }
            }
            DropoutModel::Phased {
                before_report,
                after_report,
            } => {
                let u: f64 = rng.random();
                if u < before_report {
                    Fate::DropsBeforeReport
                } else if u < before_report + after_report {
                    Fate::DropsAfterReport
                } else {
                    Fate::Responds
                }
            }
        }
    }

    /// The probability a contacted client produces a report.
    #[must_use]
    pub fn response_rate(&self) -> f64 {
        match *self {
            DropoutModel::None => 1.0,
            DropoutModel::Bernoulli { rate } => 1.0 - rate,
            DropoutModel::Phased { before_report, .. } => 1.0 - before_report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_drops() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(DropoutModel::None.sample(&mut rng), Fate::Responds);
        }
        assert_eq!(DropoutModel::None.response_rate(), 1.0);
    }

    #[test]
    fn bernoulli_rate_is_respected() {
        let m = DropoutModel::bernoulli(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let dropped = (0..n)
            .filter(|_| m.sample(&mut rng) == Fate::DropsBeforeReport)
            .count();
        let rate = dropped as f64 / f64::from(n);
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!((m.response_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_bernoulli_never_drops() {
        let m = DropoutModel::bernoulli(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), Fate::Responds);
        }
    }

    #[test]
    fn phased_splits_fates() {
        let m = DropoutModel::phased(0.2, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut before = 0;
        let mut after = 0;
        for _ in 0..n {
            match m.sample(&mut rng) {
                Fate::DropsBeforeReport => before += 1,
                Fate::DropsAfterReport => after += 1,
                Fate::Responds => {}
            }
        }
        assert!((before as f64 / f64::from(n) - 0.2).abs() < 0.01);
        assert!((after as f64 / f64::from(n) - 0.1).abs() < 0.01);
        assert!((m.response_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn bernoulli_rejects_certain_dropout() {
        let _ = DropoutModel::bernoulli(1.0);
    }

    #[test]
    #[should_panic(expected = "sum below 1")]
    fn phased_rejects_oversized_rates() {
        let _ = DropoutModel::phased(0.6, 0.5);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        use crate::error::FedError;
        assert!(matches!(
            DropoutModel::try_bernoulli(1.0),
            Err(FedError::InvalidConfig(_))
        ));
        assert!(matches!(
            DropoutModel::try_phased(-0.1, 0.2),
            Err(FedError::InvalidConfig(_))
        ));
        assert!(matches!(
            DropoutModel::try_phased(0.6, 0.5),
            Err(FedError::InvalidConfig(_))
        ));
        assert_eq!(
            DropoutModel::try_bernoulli(0.3).unwrap(),
            DropoutModel::bernoulli(0.3)
        );
        assert_eq!(
            DropoutModel::try_phased(0.2, 0.1).unwrap(),
            DropoutModel::phased(0.2, 0.1)
        );
    }
}
