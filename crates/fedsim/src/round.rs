//! Federated round orchestration.
//!
//! Wires the full deployment pipeline together: contact a cohort in one or
//! more waves, apply the dropout model, let each client extract (and
//! randomize) its assigned bit, transport the reports either directly or
//! through the simulated secure-aggregation protocol, and hand the per-bit
//! histograms to `fednum-core` for estimation.
//!
//! Auto-adjustment (Section 4.3: "the bit sampling probabilities were
//! auto-adjusted based on the dropout rate, improving utility"): after the
//! first wave, bits whose report counts fell below the target are re-sampled
//! in follow-up waves over previously uncontacted clients, with weights
//! proportional to their deficit.

use fednum_core::accumulator::BitAccumulator;
use fednum_core::bits::bit;
use fednum_core::protocol::basic::{BasicBitPushing, BasicConfig, Outcome};
use fednum_core::sampling::BitSampling;
use fednum_secagg::protocol::{run_secure_aggregation, DropoutPlan, SecAggConfig, SecAggError};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::dropout::{DropoutModel, Fate};
use crate::latency::LatencyModel;

/// Secure-aggregation transport settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecAggSettings {
    /// Shamir threshold as a fraction of the contacted cohort.
    pub threshold_fraction: f64,
    /// Pairwise-mask graph degree; `None` = complete graph. Cohorts beyond a
    /// few hundred clients need the sparse graph (`O(n·k)` vs `O(n²)`).
    pub neighbors: Option<usize>,
}

impl Default for SecAggSettings {
    fn default() -> Self {
        Self {
            threshold_fraction: 0.5,
            // Bell-et-al-style logarithmic degree: ample mask connectivity
            // for the cohort sizes simulated here.
            neighbors: Some(64),
        }
    }
}

/// Configuration of a federated mean-estimation task.
#[derive(Debug, Clone)]
pub struct FederatedMeanConfig {
    /// The bit-pushing round configuration (codec, sampling, privacy,
    /// squashing).
    pub protocol: BasicConfig,
    /// Client dropout behaviour.
    pub dropout: DropoutModel,
    /// Maximum contact waves (1 = no auto-adjustment).
    pub max_waves: u32,
    /// Auto-adjustment target: bits with a positive sampling probability
    /// should end with at least this many reports.
    pub min_reports_per_bit: u64,
    /// Fraction of the cohort contacted in the first wave (the remainder is
    /// the refill reserve).
    pub wave_fraction: f64,
    /// Transport reports through simulated secure aggregation.
    pub secagg: Option<SecAggSettings>,
    /// Wall-clock model (adds per-wave completion times).
    pub latency: Option<LatencyModel>,
    /// Session seed for the secure-aggregation masks.
    pub session_seed: u64,
}

impl FederatedMeanConfig {
    /// Single-wave defaults: no dropout handling beyond thinning, direct
    /// transport, no latency model.
    #[must_use]
    pub fn new(protocol: BasicConfig) -> Self {
        Self {
            protocol,
            dropout: DropoutModel::None,
            max_waves: 1,
            min_reports_per_bit: 1,
            wave_fraction: 1.0,
            secagg: None,
            latency: None,
            session_seed: 0xF3D5,
        }
    }

    /// Sets the dropout model.
    #[must_use]
    pub fn with_dropout(mut self, dropout: DropoutModel) -> Self {
        self.dropout = dropout;
        self
    }

    /// Enables auto-adjustment: up to `max_waves` waves, refilling bits
    /// below `min_reports_per_bit`, holding back `1 - wave_fraction` of the
    /// cohort as reserve.
    ///
    /// # Panics
    /// Panics unless `max_waves >= 1` and `0 < wave_fraction <= 1`.
    #[must_use]
    pub fn with_auto_adjust(
        mut self,
        max_waves: u32,
        min_reports_per_bit: u64,
        wave_fraction: f64,
    ) -> Self {
        assert!(max_waves >= 1, "need at least one wave");
        assert!(
            wave_fraction > 0.0 && wave_fraction <= 1.0,
            "wave_fraction in (0, 1]"
        );
        self.max_waves = max_waves;
        self.min_reports_per_bit = min_reports_per_bit;
        self.wave_fraction = wave_fraction;
        self
    }

    /// Enables secure-aggregation transport.
    #[must_use]
    pub fn with_secagg(mut self, settings: SecAggSettings) -> Self {
        self.secagg = Some(settings);
        self
    }

    /// Enables the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = Some(latency);
        self
    }
}

/// Summary of the secure-aggregation transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecAggSummary {
    /// Clients whose reports entered the sum.
    pub contributors: usize,
    /// Dropped clients whose pairwise masks were reconstructed.
    pub recovered_pairwise: usize,
}

/// Result of a federated mean-estimation task.
#[derive(Debug, Clone)]
pub struct FederatedOutcome {
    /// The protocol outcome (estimate, bit means, predicted error).
    pub outcome: Outcome,
    /// Clients contacted across all waves.
    pub contacted: usize,
    /// Reports actually received.
    pub reports: u64,
    /// Waves used.
    pub waves_used: u32,
    /// Total wall-clock time (0 without a latency model).
    pub completion_time: f64,
    /// Bits with positive sampling probability that still ended below the
    /// report target.
    pub starved_bits: Vec<u32>,
    /// Secure-aggregation diagnostics, when enabled.
    pub secagg: Option<SecAggSummary>,
}

/// Failure modes of a federated round.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundError {
    /// No client produced any report (e.g., total dropout).
    NoReports,
    /// The secure-aggregation protocol failed.
    SecAgg(SecAggError),
}

impl std::fmt::Display for RoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundError::NoReports => write!(f, "no reports were received"),
            RoundError::SecAgg(e) => write!(f, "secure aggregation failed: {e}"),
        }
    }
}

impl std::error::Error for RoundError {}

impl From<SecAggError> for RoundError {
    fn from(e: SecAggError) -> Self {
        RoundError::SecAgg(e)
    }
}

/// One contacted client's record.
struct Contact {
    bit: u32,
    report: Option<bool>, // None = dropped before reporting
    fate: Fate,
}

/// Runs a complete federated mean-estimation task over one private value per
/// client.
///
/// # Errors
/// See [`RoundError`].
///
/// # Panics
/// Panics if `values` is empty.
pub fn run_federated_mean(
    values: &[f64],
    config: &FederatedMeanConfig,
    rng: &mut dyn Rng,
) -> Result<FederatedOutcome, RoundError> {
    assert!(!values.is_empty(), "need at least one client");
    let codec = config.protocol.codec;
    let bits = codec.bits();
    let (codes, clip_fraction) = codec.encode_all(values);

    // Uncontacted-client pool, randomly ordered.
    let mut pool: Vec<usize> = (0..codes.len()).collect();
    pool.shuffle(rng);

    let base_probs = config.protocol.sampling.probs().to_vec();
    let mut counts = vec![0u64; bits as usize];
    let mut contacts: Vec<Contact> = Vec::new();
    let mut completion_time = 0.0;
    let mut waves_used = 0;

    for wave in 0..config.max_waves {
        if pool.is_empty() {
            break;
        }
        // Sampling distribution for this wave.
        let sampling = if wave == 0 {
            config.protocol.sampling.clone()
        } else {
            // Deficit-weighted refill over bits the base distribution cares
            // about.
            let deficits: Vec<f64> = base_probs
                .iter()
                .zip(&counts)
                .map(|(&p, &c)| {
                    if p > 0.0 && c < config.min_reports_per_bit {
                        (config.min_reports_per_bit - c) as f64
                    } else {
                        0.0
                    }
                })
                .collect();
            if deficits.iter().all(|&d| d == 0.0) {
                break; // every bit satisfied
            }
            BitSampling::custom(deficits)
        };

        // Wave size: first wave takes the configured fraction; refill waves
        // contact just enough clients to cover the remaining deficit at the
        // expected response rate.
        let wave_size = if wave == 0 {
            ((config.wave_fraction * pool.len() as f64).ceil() as usize).clamp(1, pool.len())
        } else {
            let deficit_total: u64 = base_probs
                .iter()
                .zip(&counts)
                .filter(|(&p, &c)| p > 0.0 && c < config.min_reports_per_bit)
                .map(|(_, &c)| config.min_reports_per_bit - c)
                .sum();
            let needed =
                (deficit_total as f64 / config.dropout.response_rate().max(0.01)).ceil() as usize;
            needed.clamp(1, pool.len())
        };
        waves_used = wave + 1;

        let batch: Vec<usize> = pool.drain(..wave_size).collect();
        let assignment = sampling.assign(config.protocol.assignment, batch.len(), rng);
        if let Some(lat) = &config.latency {
            completion_time += lat.simulate_round(batch.len(), 0.9, rng).completion_time;
        }
        for (slot, &client) in batch.iter().enumerate() {
            let j = assignment[slot];
            let fate = config.dropout.sample(rng);
            let report = if fate == Fate::DropsBeforeReport {
                None
            } else {
                let raw = bit(codes[client], j);
                let sent = match &config.protocol.privacy {
                    Some(rr) => rr.flip(raw, rng),
                    None => raw,
                };
                counts[j as usize] += 1;
                Some(sent)
            };
            contacts.push(Contact {
                bit: j,
                report,
                fate,
            });
        }
    }

    let total_reports: u64 = counts.iter().sum();
    if total_reports == 0 {
        return Err(RoundError::NoReports);
    }

    // Transport: aggregate per-bit (ones, counts).
    let (ones, secagg_summary) = match &config.secagg {
        Some(settings) => {
            let n = contacts.len();
            let threshold = ((settings.threshold_fraction * n as f64).ceil() as usize).clamp(1, n);
            let vector_len = 2 * bits as usize;
            let mut inputs = Vec::with_capacity(n);
            let mut plan = DropoutPlan::none();
            for (i, c) in contacts.iter().enumerate() {
                let mut v = vec![0u64; vector_len];
                match c.report {
                    Some(sent) => {
                        v[c.bit as usize] = u64::from(sent);
                        v[bits as usize + c.bit as usize] = 1;
                        if c.fate == Fate::DropsAfterReport {
                            plan.after_masking.insert(i);
                        }
                    }
                    None => {
                        plan.before_masking.insert(i);
                    }
                }
                inputs.push(v);
            }
            let mut sa_config = SecAggConfig::new(n, threshold, vector_len, config.session_seed);
            if let Some(k) = settings.neighbors {
                sa_config = sa_config.with_neighbors(k);
            }
            let out = run_secure_aggregation(&sa_config, &inputs, &plan, rng)?;
            // Sanity: the securely aggregated counts match the tally.
            debug_assert_eq!(&out.sum[bits as usize..], counts.as_slice());
            let ones: Vec<u64> = out.sum[..bits as usize].to_vec();
            (
                ones,
                Some(SecAggSummary {
                    contributors: out.contributors.len(),
                    recovered_pairwise: out.pairwise_masks_reconstructed,
                }),
            )
        }
        None => {
            let mut ones = vec![0u64; bits as usize];
            for c in &contacts {
                if let Some(true) = c.report {
                    ones[c.bit as usize] += 1;
                }
            }
            (ones, None)
        }
    };

    // Debias the per-bit sums (randomized response is affine, so debiasing
    // the sum equals debiasing every report) and finish through the core
    // protocol: squashing, reconstruction, decoding, predicted error.
    let sums: Vec<f64> = ones
        .iter()
        .zip(&counts)
        .map(|(&o, &c)| match (&config.protocol.privacy, c) {
            (_, 0) => 0.0,
            (Some(rr), c) => c as f64 * rr.debias_mean(o as f64 / c as f64),
            (None, _) => o as f64,
        })
        .collect();
    let acc = BitAccumulator::from_parts(sums, counts.clone());
    let outcome = BasicBitPushing::new(config.protocol.clone()).finish(acc, clip_fraction);

    let starved_bits = base_probs
        .iter()
        .zip(&counts)
        .enumerate()
        .filter(|(_, (&p, &c))| p > 0.0 && c < config.min_reports_per_bit)
        .map(|(j, _)| j as u32)
        .collect();

    Ok(FederatedOutcome {
        outcome,
        contacted: contacts.len(),
        reports: total_reports,
        waves_used,
        completion_time,
        starved_bits,
        secagg: secagg_summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fednum_core::encoding::FixedPointCodec;
    use fednum_core::sampling::BitSampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_config(bits: u32) -> FederatedMeanConfig {
        FederatedMeanConfig::new(BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, 1.0),
        ))
    }

    fn values(n: usize, hi: u64) -> Vec<f64> {
        (0..n).map(|i| (i as u64 % hi) as f64).collect()
    }

    #[test]
    fn plain_round_estimates_mean() {
        let vs = values(20_000, 200);
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_federated_mean(&vs, &base_config(8), &mut rng).unwrap();
        assert!((out.outcome.estimate - truth).abs() / truth < 0.05);
        assert_eq!(out.contacted, 20_000);
        assert_eq!(out.reports, 20_000);
        assert_eq!(out.waves_used, 1);
        assert!(out.secagg.is_none());
    }

    #[test]
    fn dropout_thins_reports_but_keeps_estimate_unbiased() {
        let vs = values(30_000, 200);
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let cfg = base_config(8).with_dropout(DropoutModel::bernoulli(0.4));
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_federated_mean(&vs, &cfg, &mut rng).unwrap();
        let rate = out.reports as f64 / out.contacted as f64;
        assert!((rate - 0.6).abs() < 0.02, "response rate {rate}");
        assert!((out.outcome.estimate - truth).abs() / truth < 0.06);
    }

    #[test]
    fn auto_adjust_refills_starved_bits() {
        // Heavy dropout plus a small first wave: without refills, low-order
        // bits (tiny p_j) are starved.
        let vs = values(20_000, 200);
        let single = base_config(8)
            .with_dropout(DropoutModel::bernoulli(0.5))
            .with_auto_adjust(1, 30, 0.6);
        let multi = base_config(8)
            .with_dropout(DropoutModel::bernoulli(0.5))
            .with_auto_adjust(4, 30, 0.6);
        let mut starved_single = 0;
        let mut starved_multi = 0;
        for s in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(s);
            starved_single += run_federated_mean(&vs, &single, &mut rng)
                .unwrap()
                .starved_bits
                .len();
            let mut rng = StdRng::seed_from_u64(s);
            let out = run_federated_mean(&vs, &multi, &mut rng).unwrap();
            starved_multi += out.starved_bits.len();
            assert!(out.waves_used >= 1);
        }
        assert!(
            starved_multi < starved_single,
            "refill waves should reduce starvation: {starved_multi} vs {starved_single}"
        );
    }

    #[test]
    fn secagg_transport_matches_direct() {
        let vs = values(500, 100);
        let mut cfg_direct = base_config(7);
        cfg_direct.session_seed = 42;
        let cfg_secagg = {
            let mut c = base_config(7).with_secagg(SecAggSettings::default());
            c.session_seed = 42;
            c
        };
        // Same seed → same assignment and reports → identical estimates.
        let direct = run_federated_mean(&vs, &cfg_direct, &mut StdRng::seed_from_u64(3)).unwrap();
        let secure = run_federated_mean(&vs, &cfg_secagg, &mut StdRng::seed_from_u64(3)).unwrap();
        assert!((direct.outcome.estimate - secure.outcome.estimate).abs() < 1e-9);
        let summary = secure.secagg.unwrap();
        assert_eq!(summary.contributors, 500);
    }

    #[test]
    fn secagg_with_dropouts_recovers_masks() {
        let vs = values(400, 100);
        let cfg = base_config(7)
            .with_dropout(DropoutModel::phased(0.1, 0.05))
            .with_secagg(SecAggSettings {
                threshold_fraction: 0.5,
                ..SecAggSettings::default()
            });
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_federated_mean(&vs, &cfg, &mut rng).unwrap();
        let summary = out.secagg.unwrap();
        assert!(summary.recovered_pairwise > 10, "expected dropout recovery");
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        assert!((out.outcome.estimate - truth).abs() / truth < 0.4);
    }

    #[test]
    fn privacy_composes_with_transport() {
        let vs = values(60_000, 200);
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let mut cfg = base_config(8);
        cfg.protocol = cfg
            .protocol
            .with_privacy(fednum_core::privacy::RandomizedResponse::from_epsilon(2.0));
        let mut rng = StdRng::seed_from_u64(5);
        let out = run_federated_mean(&vs, &cfg, &mut rng).unwrap();
        assert!(
            (out.outcome.estimate - truth).abs() / truth < 0.25,
            "est {} truth {truth}",
            out.outcome.estimate
        );
    }

    #[test]
    fn latency_model_accumulates_time() {
        let vs = values(1000, 100);
        let cfg = base_config(7).with_latency(LatencyModel::typical_fleet());
        let mut rng = StdRng::seed_from_u64(6);
        let out = run_federated_mean(&vs, &cfg, &mut rng).unwrap();
        assert!(out.completion_time > 0.0);
    }

    #[test]
    fn total_dropout_fails_closed() {
        let vs = values(50, 10);
        let cfg = base_config(4).with_dropout(DropoutModel::bernoulli(0.999));
        // With rate .999 on 50 clients, most seeds yield zero reports.
        let mut failures = 0;
        for s in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(s);
            if matches!(
                run_federated_mean(&vs, &cfg, &mut rng),
                Err(RoundError::NoReports)
            ) {
                failures += 1;
            }
        }
        assert!(failures > 10, "expected frequent NoReports, got {failures}");
    }

    #[test]
    fn error_display() {
        assert_eq!(
            RoundError::NoReports.to_string(),
            "no reports were received"
        );
    }
}
