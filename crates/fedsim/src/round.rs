//! Federated round orchestration.
//!
//! Wires the full deployment pipeline together: contact a cohort in one or
//! more waves, apply the dropout model and any injected faults, let each
//! client extract (and randomize) its assigned bit, validate what the
//! transport delivers, carry the reports either directly or through the
//! simulated secure-aggregation protocol — retrying a failed unmask over
//! the survivors — and hand the per-bit histograms to `fednum-core` for
//! estimation.
//!
//! Auto-adjustment (Section 4.3: "the bit sampling probabilities were
//! auto-adjusted based on the dropout rate, improving utility"): after the
//! first wave, bits whose report counts fell below the target are re-sampled
//! in follow-up waves over previously uncontacted clients, with weights
//! proportional to their deficit. Between waves the orchestrator backs off
//! on the capped exponential schedule of its [`RetryPolicy`].
//!
//! Everything that can go wrong at runtime — total dropout, a cohort below
//! the privacy minimum, secure aggregation failing past its retry budget —
//! surfaces as a typed [`FedError`]; the orchestration path never panics on
//! fleet behaviour.

use fednum_core::accumulator::BitAccumulator;
use fednum_core::bits::bit;
use fednum_core::privacy::PrivacyLedger;
use fednum_core::protocol::basic::{BasicBitPushing, BasicConfig, Outcome};
use fednum_core::sampling::BitSampling;
use fednum_secagg::protocol::{run_secure_aggregation, DropoutPlan, SecAggConfig, SecAggError};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::dropout::{DropoutModel, Fate};
use crate::error::FedError;
use crate::faults::{FaultKind, FaultPlan};
use crate::latency::LatencyModel;
use crate::retry::{RetryPolicy, SalvagePolicy};
use crate::traffic::TrafficStats;
use crate::validation::{RejectionCounts, ReportValidator};

/// Compatibility alias: round orchestration now reports the crate-wide
/// [`FedError`] taxonomy.
pub use crate::error::FedError as RoundError;

/// Secure-aggregation transport settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecAggSettings {
    /// Shamir threshold as a fraction of the contacted cohort.
    pub threshold_fraction: f64,
    /// Pairwise-mask graph degree; `None` = complete graph. Cohorts beyond a
    /// few hundred clients need the sparse graph (`O(n·k)` vs `O(n²)`).
    pub neighbors: Option<usize>,
}

impl Default for SecAggSettings {
    fn default() -> Self {
        Self {
            threshold_fraction: 0.5,
            // Bell-et-al-style logarithmic degree: ample mask connectivity
            // for the cohort sizes simulated here.
            neighbors: Some(64),
        }
    }
}

/// Configuration of a federated mean-estimation task.
#[derive(Debug, Clone)]
pub struct FederatedMeanConfig {
    /// The bit-pushing round configuration (codec, sampling, privacy,
    /// squashing).
    pub protocol: BasicConfig,
    /// Client dropout behaviour.
    pub dropout: DropoutModel,
    /// Maximum contact waves (1 = no auto-adjustment).
    pub max_waves: u32,
    /// Auto-adjustment target: bits with a positive sampling probability
    /// should end with at least this many reports.
    pub min_reports_per_bit: u64,
    /// Fraction of the cohort contacted in the first wave (the remainder is
    /// the refill reserve).
    pub wave_fraction: f64,
    /// Transport reports through simulated secure aggregation.
    pub secagg: Option<SecAggSettings>,
    /// Wall-clock model (adds per-wave completion times).
    pub latency: Option<LatencyModel>,
    /// Session seed for the secure-aggregation masks; doubles as the round
    /// identifier for fault injection, report validation, and per-round
    /// privacy metering, so successive metered rounds should use distinct
    /// seeds.
    pub session_seed: u64,
    /// Injected transport/client faults, composed on top of `dropout`.
    pub faults: Option<FaultPlan>,
    /// Recovery policy: inter-wave backoff, secure-aggregation retries,
    /// minimum surviving cohort.
    pub retry: RetryPolicy,
    /// Straggler salvage: park post-deadline report frames in a bounded
    /// buffer and, once the base estimate is tallied, run a follow-up
    /// session that re-validates and re-admits them (exact-count merge into
    /// the published estimate). Implemented by the event-driven transport
    /// coordinator; the legacy synchronous orchestrator ignores it — it has
    /// no wire on which a frame can be late yet present. Requires
    /// `validate` (the naive server accepts stragglers directly, leaving
    /// nothing to salvage).
    pub salvage: Option<SalvagePolicy>,
    /// Server-side report validation (duplicate/replay/stale/deadline
    /// enforcement). Disabled by the "naive" baseline orchestrator.
    pub validate: bool,
    /// Compress the configure downlink: one broadcast `RoundConfig` header
    /// per wave plus a 1-byte per-client assigned-bit delta, instead of a
    /// full `RoundConfig` frame per client. Purely a wire-path codec choice
    /// — estimates are unaffected; byte savings are credited to
    /// `TrafficStats::config_bytes_saved`. The legacy synchronous
    /// orchestrator ignores it (nothing crosses a wire there).
    pub compress_config: bool,
}

impl FederatedMeanConfig {
    /// Single-wave defaults: no dropout handling beyond thinning, direct
    /// transport, no latency model, validation and recovery enabled.
    #[must_use]
    pub fn new(protocol: BasicConfig) -> Self {
        Self {
            protocol,
            dropout: DropoutModel::None,
            max_waves: 1,
            min_reports_per_bit: 1,
            wave_fraction: 1.0,
            secagg: None,
            latency: None,
            session_seed: 0xF3D5,
            faults: None,
            retry: RetryPolicy::default(),
            salvage: None,
            validate: true,
            compress_config: false,
        }
    }

    /// Sets the dropout model.
    #[must_use]
    pub fn with_dropout(mut self, dropout: DropoutModel) -> Self {
        self.dropout = dropout;
        self
    }

    /// Enables auto-adjustment: up to `max_waves` waves, refilling bits
    /// below `min_reports_per_bit`, holding back `1 - wave_fraction` of the
    /// cohort as reserve.
    ///
    /// # Errors
    /// [`FedError::InvalidConfig`] unless `max_waves >= 1` and
    /// `0 < wave_fraction <= 1`.
    pub fn try_with_auto_adjust(
        mut self,
        max_waves: u32,
        min_reports_per_bit: u64,
        wave_fraction: f64,
    ) -> Result<Self, FedError> {
        if max_waves < 1 {
            return Err(FedError::InvalidConfig("need at least one wave".into()));
        }
        if !(wave_fraction > 0.0 && wave_fraction <= 1.0) {
            return Err(FedError::InvalidConfig(format!(
                "wave_fraction in (0, 1], got {wave_fraction}"
            )));
        }
        self.max_waves = max_waves;
        self.min_reports_per_bit = min_reports_per_bit;
        self.wave_fraction = wave_fraction;
        Ok(self)
    }

    /// Enables auto-adjustment; see
    /// [`FederatedMeanConfig::try_with_auto_adjust`] for the non-panicking
    /// variant.
    ///
    /// # Panics
    /// Panics unless `max_waves >= 1` and `0 < wave_fraction <= 1`.
    #[must_use]
    pub fn with_auto_adjust(
        self,
        max_waves: u32,
        min_reports_per_bit: u64,
        wave_fraction: f64,
    ) -> Self {
        self.try_with_auto_adjust(max_waves, min_reports_per_bit, wave_fraction)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Enables secure-aggregation transport.
    #[must_use]
    pub fn with_secagg(mut self, settings: SecAggSettings) -> Self {
        self.secagg = Some(settings);
        self
    }

    /// Enables the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Injects the given fault plan on top of the dropout model.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Sets the recovery policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables straggler salvage under the given policy. See
    /// [`FederatedMeanConfig::salvage`].
    #[must_use]
    pub fn with_salvage(mut self, policy: SalvagePolicy) -> Self {
        self.salvage = Some(policy);
        self
    }

    /// Compresses the configure downlink (broadcast header + per-client bit
    /// delta). See [`FederatedMeanConfig::compress_config`].
    #[must_use]
    pub fn with_config_compression(mut self) -> Self {
        self.compress_config = true;
        self
    }

    /// The naive baseline orchestrator: no report validation, no deadline
    /// enforcement, no retries, no backoff. Duplicates are double-counted,
    /// replays and stale reports accepted — the comparison point for the
    /// `deploy-faults` panel.
    #[must_use]
    pub fn naive(mut self) -> Self {
        self.validate = false;
        self.retry = RetryPolicy::none();
        self
    }
}

/// Summary of the secure-aggregation transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecAggSummary {
    /// Clients whose reports entered the sum.
    pub contributors: usize,
    /// Dropped clients whose pairwise masks were reconstructed.
    pub recovered_pairwise: usize,
}

/// How degraded the path to a round's estimate was. Ordered from best to
/// worst; a round reports the worst mode it hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradedMode {
    /// Single wave, no retries, nothing rejected or starved.
    #[default]
    Clean,
    /// Refill waves re-sampled starved bits.
    Refilled,
    /// Secure aggregation was retried over the surviving cohort.
    Retried,
    /// The estimate stands on incomplete coverage (starved bits remain).
    Partial,
    /// Never produced by a successful round: callers mapping a [`FedError`]
    /// into outcome telemetry use this slot.
    Aborted,
}

/// Outcome of a straggler-salvage session, as typed telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalvageOutcome {
    /// The follow-up session re-admitted this many parked reports into the
    /// published estimate.
    Salvaged {
        /// Re-admitted report count.
        reports: u64,
    },
    /// The policy never fired: nothing parked, or fewer parked reports than
    /// `min_parked`.
    SalvageSkipped,
    /// The salvage session ran but could not complete (re-validation left a
    /// cohort too small for a private aggregate, or every re-masked attempt
    /// failed); the round published the base estimate — exactly the discard
    /// behaviour.
    SalvageAborted,
}

/// Robustness telemetry for one federated round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RobustnessReport {
    /// The degraded mode that produced the estimate.
    pub degraded: DegradedMode,
    /// Per-class rejected-report tally (validation + deadline enforcement).
    pub rejections: RejectionCounts,
    /// Report frames that arrived after their wave deadline, counted
    /// identically whether or not the server validates. The validated
    /// server also rejects them, so `rejections.straggler == late_frames`
    /// exactly when `validate` is set; the naive server accepts them and
    /// leaves `rejections.straggler` at zero.
    pub late_frames: u64,
    /// Straggler-salvage telemetry; `None` when salvage is not configured
    /// or the path (legacy synchronous) does not implement it.
    pub salvage: Option<SalvageOutcome>,
    /// Re-masked secure-aggregation retries performed.
    pub secagg_retries: u32,
    /// Faults the plan injected into contacted clients.
    pub faults_injected: u64,
    /// Wall-clock spent backing off between waves and retries.
    pub backoff_time: f64,
    /// Per-phase, per-direction message traffic. All-zero on the legacy
    /// synchronous path (nothing crosses a wire there); filled in by the
    /// `fednum-transport` coordinator.
    pub traffic: TrafficStats,
}

/// The old name of [`RobustnessReport`], freed up so the unified
/// [`RoundBuilder`](https://docs.rs/fednum) result could take it.
#[deprecated(
    since = "0.2.0",
    note = "renamed to `RobustnessReport`; `RoundOutcome` now names the \
            unified result of `fednum::transport::RoundBuilder`"
)]
pub type RoundOutcome = RobustnessReport;

/// Result of a federated mean-estimation task.
#[derive(Debug, Clone)]
pub struct FederatedOutcome {
    /// The protocol outcome (estimate, bit means, predicted error).
    pub outcome: Outcome,
    /// Clients contacted across all waves.
    pub contacted: usize,
    /// Reports actually received.
    pub reports: u64,
    /// Waves used.
    pub waves_used: u32,
    /// Total wall-clock time (0 without a latency model).
    pub completion_time: f64,
    /// Bits with positive sampling probability that still ended below the
    /// report target.
    pub starved_bits: Vec<u32>,
    /// Secure-aggregation diagnostics, when enabled.
    pub secagg: Option<SecAggSummary>,
    /// Robustness telemetry: degraded mode, rejections, retries.
    pub robustness: RobustnessReport,
}

/// One contacted client's record, as the server saw it after validation.
#[derive(Clone)]
struct Contact {
    client: usize,
    bit: u32,
    report: Option<bool>, // None = nothing (valid) delivered
    fate: Fate,
    copies: u64, // > 1 only for unvalidated duplicate deliveries
}

/// The synchronous round engine behind the `RoundBuilder` facade: a
/// complete federated mean-estimation task over one private value per
/// client, optionally metering every client's disclosure through a
/// [`PrivacyLedger`] (one bit, and the randomized-response ε if configured,
/// per client per round, idempotently across secure-aggregation retry
/// waves; the round identifier is `config.session_seed`). Not part of the
/// public API surface — call it through
/// `fednum::transport::RoundBuilder::new(config)` (plus `.metered(ledger)`
/// for the billed flavor).
#[doc(hidden)]
#[allow(clippy::too_many_lines)]
pub fn run_round_impl(
    values: &[f64],
    config: &FederatedMeanConfig,
    mut ledger: Option<&mut PrivacyLedger>,
    rng: &mut dyn Rng,
) -> Result<FederatedOutcome, FedError> {
    if values.is_empty() {
        return Err(FedError::PopulationTooSmall { got: 0, need: 1 });
    }
    let codec = config.protocol.codec;
    let bits = codec.bits();
    let (codes, clip_fraction) = codec.encode_all(values);
    let round_id = config.session_seed;
    let epsilon = config
        .protocol
        .privacy
        .as_ref()
        .map_or(0.0, fednum_core::privacy::RandomizedResponse::epsilon);

    // Uncontacted-client pool, randomly ordered.
    let mut pool: Vec<usize> = (0..codes.len()).collect();
    pool.shuffle(rng);

    let base_probs = config.protocol.sampling.probs().to_vec();
    let mut counts = vec![0u64; bits as usize];
    let mut contacts: Vec<Contact> = Vec::new();
    let mut completion_time = 0.0;
    let mut backoff_time = 0.0;
    let mut waves_used = 0;
    let mut rejections = RejectionCounts::default();
    let mut faults_injected: u64 = 0;
    let mut late_frames: u64 = 0;

    for wave in 0..config.max_waves {
        if pool.is_empty() {
            break;
        }
        // Sampling distribution for this wave.
        let sampling = if wave == 0 {
            config.protocol.sampling.clone()
        } else {
            // Deficit-weighted refill over bits the base distribution cares
            // about.
            let deficits: Vec<f64> = base_probs
                .iter()
                .zip(&counts)
                .map(|(&p, &c)| {
                    if p > 0.0 && c < config.min_reports_per_bit {
                        (config.min_reports_per_bit - c) as f64
                    } else {
                        0.0
                    }
                })
                .collect();
            if deficits.iter().all(|&d| d == 0.0) {
                break; // every bit satisfied
            }
            BitSampling::custom(deficits)
        };

        // Wave size: first wave takes the configured fraction; refill waves
        // contact just enough clients to cover the remaining deficit at the
        // expected response rate.
        let wave_size = if wave == 0 {
            ((config.wave_fraction * pool.len() as f64).ceil() as usize).clamp(1, pool.len())
        } else {
            let deficit_total: u64 = base_probs
                .iter()
                .zip(&counts)
                .filter(|(&p, &c)| p > 0.0 && c < config.min_reports_per_bit)
                .map(|(_, &c)| config.min_reports_per_bit - c)
                .sum();
            let needed =
                (deficit_total as f64 / config.dropout.response_rate().max(0.01)).ceil() as usize;
            needed.clamp(1, pool.len())
        };
        if wave > 0 {
            // Capped exponential backoff before each refill wave.
            let pause = config.retry.backoff(wave - 1);
            backoff_time += pause;
            completion_time += pause;
        }
        waves_used = wave + 1;

        let batch: Vec<usize> = pool.drain(..wave_size).collect();
        let assignment = sampling.assign(config.protocol.assignment, batch.len(), rng);
        let mut wave_time = match &config.latency {
            Some(lat) => lat.simulate_round(batch.len(), 0.9, rng).completion_time,
            None => 0.0,
        };
        // The validator only engages under fault injection: without faults
        // every delivery is trivially valid and the identical tallies come
        // out of the fast path below.
        let mut validator = if config.validate && config.faults.is_some() {
            let assigned: Vec<(u64, u32)> = batch
                .iter()
                .zip(&assignment)
                .map(|(&c, &j)| (c as u64, j))
                .collect();
            Some(ReportValidator::for_round(bits, &assigned, round_id))
        } else {
            None
        };
        let mut wave_stragglers = 0u64;
        // The most recent delivery, for replay faults: (bit, value, nonce).
        let mut last_delivered: Option<(u32, bool, u64)> = None;

        for (slot, &client) in batch.iter().enumerate() {
            let j = assignment[slot];
            let mut fate = config.dropout.sample(rng);
            let fault = config
                .faults
                .as_ref()
                .and_then(|p| p.fault_for(round_id, client as u64));
            faults_injected += u64::from(fault.is_some());
            if fault == Some(FaultKind::DropBeforeReport) {
                fate = Fate::DropsBeforeReport;
            }
            if fate == Fate::DropsBeforeReport {
                contacts.push(Contact {
                    client,
                    bit: j,
                    report: None,
                    fate,
                    copies: 0,
                });
                continue;
            }

            // The client computes and sends its randomized bit. This is the
            // privacy disclosure: it is metered here, once per round, no
            // matter what the transport then does to the report. A
            // stale-round fault sends an *old* report instead, so nothing
            // new is disclosed.
            let raw = bit(codes[client], j);
            let sent = match &config.protocol.privacy {
                Some(rr) => rr.flip(raw, rng),
                None => raw,
            };
            if fault != Some(FaultKind::StaleRound) {
                if let Some(ledger) = ledger.as_deref_mut() {
                    ledger.charge_round(client as u64, round_id, 1, epsilon)?;
                }
            }
            if fault == Some(FaultKind::DropBeforeUnmask) && fate == Fate::Responds {
                fate = Fate::DropsAfterReport;
            }

            // What arrives at the server: (bit, value, round tag, nonce,
            // delivered copies).
            let nonce = client as u64;
            let delivery = match fault {
                Some(FaultKind::Straggle) => {
                    wave_stragglers += 1;
                    if config.validate {
                        // Past the wave deadline: the report is discarded
                        // and the client misses the masking round.
                        rejections.straggler += 1;
                        contacts.push(Contact {
                            client,
                            bit: j,
                            report: None,
                            fate: Fate::DropsBeforeReport,
                            copies: 0,
                        });
                        continue;
                    }
                    // The naive server waits past the deadline and accepts.
                    (j, sent, round_id, nonce, 1)
                }
                Some(FaultKind::CorruptBit) => (j, !sent, round_id, nonce, 1),
                Some(FaultKind::DuplicateReport) => (j, sent, round_id, nonce, 2),
                Some(FaultKind::ReplayReport) => match last_delivered {
                    // The fresh report is replaced by a verbatim copy of an
                    // earlier one — same nonce, so validation catches it.
                    Some((pb, pv, pn)) => (pb, pv, round_id, pn, 1),
                    // Nothing to replay yet: the report is simply lost.
                    None => {
                        contacts.push(Contact {
                            client,
                            bit: j,
                            report: None,
                            fate: Fate::DropsBeforeReport,
                            copies: 0,
                        });
                        continue;
                    }
                },
                Some(FaultKind::StaleRound) => {
                    // A report from a previous collection: wrong round tag,
                    // payload uncorrelated with this round's assignment.
                    let stale = config
                        .faults
                        .as_ref()
                        .expect("fault implies plan")
                        .payload_bit(round_id, client as u64);
                    (j, stale, round_id.wrapping_sub(1), nonce, 1)
                }
                _ => (j, sent, round_id, nonce, 1),
            };
            let (d_bit, d_value, d_round, d_nonce, d_copies) = delivery;
            // Secure aggregation carries one masked vector per client, so
            // duplicate deliveries collapse by construction.
            let d_copies = if config.secagg.is_some() {
                d_copies.min(1)
            } else {
                d_copies
            };

            let accepted = match &mut validator {
                Some(v) => {
                    let mut ok = 0u64;
                    for copy in 0..d_copies {
                        // A transport-level re-send gets a fresh envelope
                        // nonce; the payload is what repeats.
                        let copy_nonce = if copy == 0 {
                            d_nonce
                        } else {
                            d_nonce | (1 << 63)
                        };
                        if v.submit_tagged(
                            client as u64,
                            d_bit,
                            f64::from(u8::from(d_value)),
                            d_round,
                            copy_nonce,
                        )
                        .is_ok()
                        {
                            ok += 1;
                        }
                    }
                    ok
                }
                None => d_copies,
            };
            if accepted == 0 {
                // Everything this client's transport produced was rejected;
                // for secure aggregation it contributes no masked input.
                contacts.push(Contact {
                    client,
                    bit: j,
                    report: None,
                    fate: Fate::DropsBeforeReport,
                    copies: 0,
                });
                continue;
            }
            last_delivered = Some((d_bit, d_value, d_nonce));
            counts[d_bit as usize] += accepted;
            contacts.push(Contact {
                client,
                bit: d_bit,
                report: Some(d_value),
                fate,
                copies: accepted,
            });
        }

        if let Some(v) = validator {
            rejections.absorb(&v.rejection_counts());
        }
        if let Some(lat) = &config.latency {
            if wave_stragglers > 0 {
                // Stragglers hold the wave open to its deadline.
                wave_time = wave_time.max(lat.timeout);
            }
        }
        late_frames += wave_stragglers;
        completion_time += wave_time;
    }

    let total_reports: u64 = counts.iter().sum();
    if total_reports == 0 {
        return Err(FedError::NoReports);
    }
    let reporters = contacts.iter().filter(|c| c.report.is_some()).count();
    if reporters < config.retry.min_cohort {
        return Err(FedError::CohortTooSmall {
            survivors: reporters,
            minimum: config.retry.min_cohort,
        });
    }

    // Transport: aggregate per-bit (ones, counts).
    let mut secagg_retries = 0u32;
    let (ones, eff_counts, secagg_summary) = match &config.secagg {
        Some(settings) => {
            let vector_len = 2 * bits as usize;
            // First attempt runs over every contact (reporting or not);
            // retries re-mask over the verified survivors only.
            let mut cohort: Vec<usize> = (0..contacts.len()).collect();
            loop {
                let n = cohort.len();
                let threshold =
                    ((settings.threshold_fraction * n as f64).ceil() as usize).clamp(1, n);
                let mut inputs = Vec::with_capacity(n);
                let mut plan = DropoutPlan::none();
                let mut eff = vec![0u64; bits as usize];
                for (i, &ci) in cohort.iter().enumerate() {
                    let c = &contacts[ci];
                    let mut v = vec![0u64; vector_len];
                    match c.report {
                        Some(sent) => {
                            v[c.bit as usize] = u64::from(sent);
                            v[bits as usize + c.bit as usize] = 1;
                            eff[c.bit as usize] += 1;
                            if c.fate == Fate::DropsAfterReport {
                                plan.after_masking.insert(i);
                            }
                        }
                        None => {
                            plan.before_masking.insert(i);
                        }
                    }
                    inputs.push(v);
                }
                // Fresh masks per attempt, deterministically derived.
                let session = config.session_seed
                    ^ u64::from(secagg_retries).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut sa_config = SecAggConfig::new(n, threshold, vector_len, session);
                if let Some(k) = settings.neighbors {
                    sa_config = sa_config.with_neighbors(k);
                }
                match run_secure_aggregation(&sa_config, &inputs, &plan, rng) {
                    Ok(out) => {
                        // Sanity: the securely aggregated counts match the
                        // tally over this attempt's cohort.
                        debug_assert_eq!(&out.sum[bits as usize..], eff.as_slice());
                        let ones: Vec<u64> = out.sum[..bits as usize].to_vec();
                        break (
                            ones,
                            eff,
                            Some(SecAggSummary {
                                contributors: out.contributors.len(),
                                recovered_pairwise: out.pairwise_masks_reconstructed,
                            }),
                        );
                    }
                    Err(e @ SecAggError::TooFewSurvivors { .. }) => {
                        if secagg_retries >= config.retry.max_secagg_retries {
                            return Err(e.into());
                        }
                        let pause = config.retry.backoff(secagg_retries);
                        secagg_retries += 1;
                        backoff_time += pause;
                        completion_time += pause;
                        // The unmask failed: the late droppers' inputs are
                        // unrecoverable, so the survivors re-send re-masked
                        // reports. That re-send discloses nothing new, which
                        // the idempotent per-round charge reflects.
                        cohort.retain(|&ci| {
                            contacts[ci].fate == Fate::Responds && contacts[ci].report.is_some()
                        });
                        if cohort.len() < config.retry.min_cohort {
                            return Err(FedError::CohortTooSmall {
                                survivors: cohort.len(),
                                minimum: config.retry.min_cohort,
                            });
                        }
                        if cohort.is_empty() {
                            return Err(FedError::NoReports);
                        }
                        if let Some(ledger) = ledger.as_deref_mut() {
                            for &ci in &cohort {
                                ledger.charge_round(
                                    contacts[ci].client as u64,
                                    round_id,
                                    1,
                                    epsilon,
                                )?;
                            }
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        None => {
            let mut ones = vec![0u64; bits as usize];
            for c in &contacts {
                if let Some(true) = c.report {
                    ones[c.bit as usize] += c.copies;
                }
            }
            (ones, counts.clone(), None)
        }
    };

    // Debias the per-bit sums (randomized response is affine, so debiasing
    // the sum equals debiasing every report) and finish through the core
    // protocol: squashing, reconstruction, decoding, predicted error.
    let sums: Vec<f64> = ones
        .iter()
        .zip(&eff_counts)
        .map(|(&o, &c)| match (&config.protocol.privacy, c) {
            (_, 0) => 0.0,
            (Some(rr), c) => c as f64 * rr.debias_mean(o as f64 / c as f64),
            (None, _) => o as f64,
        })
        .collect();
    let acc = BitAccumulator::from_parts(sums, eff_counts.clone());
    let outcome = BasicBitPushing::new(config.protocol.clone()).finish(acc, clip_fraction);

    let starved_bits: Vec<u32> = base_probs
        .iter()
        .zip(&eff_counts)
        .enumerate()
        .filter(|(_, (&p, &c))| p > 0.0 && c < config.min_reports_per_bit)
        .map(|(j, _)| j as u32)
        .collect();

    let degraded = if !starved_bits.is_empty() {
        DegradedMode::Partial
    } else if secagg_retries > 0 {
        DegradedMode::Retried
    } else if waves_used > 1 {
        DegradedMode::Refilled
    } else {
        DegradedMode::Clean
    };

    Ok(FederatedOutcome {
        outcome,
        contacted: contacts.len(),
        reports: total_reports,
        waves_used,
        completion_time,
        starved_bits,
        secagg: secagg_summary,
        robustness: RobustnessReport {
            degraded,
            rejections,
            late_frames,
            salvage: None,
            secagg_retries,
            faults_injected,
            backoff_time,
            traffic: TrafficStats::default(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultRates;
    use fednum_core::encoding::FixedPointCodec;
    use fednum_core::privacy::{PrivacyBudget, PrivacyLedger};
    use fednum_core::sampling::BitSampling;
    use rand::rngs::StdRng;

    use rand::SeedableRng;

    fn base_config(bits: u32) -> FederatedMeanConfig {
        FederatedMeanConfig::new(BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, 1.0),
        ))
    }

    fn values(n: usize, hi: u64) -> Vec<f64> {
        (0..n).map(|i| (i as u64 % hi) as f64).collect()
    }

    #[test]
    fn plain_round_estimates_mean() {
        let vs = values(20_000, 200);
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_round_impl(&vs, &base_config(8), None, &mut rng).unwrap();
        assert!((out.outcome.estimate - truth).abs() / truth < 0.05);
        assert_eq!(out.contacted, 20_000);
        assert_eq!(out.reports, 20_000);
        assert_eq!(out.waves_used, 1);
        assert!(out.secagg.is_none());
        assert_eq!(out.robustness.degraded, DegradedMode::Clean);
        assert_eq!(out.robustness.rejections.total(), 0);
        assert_eq!(out.robustness.faults_injected, 0);
    }

    #[test]
    fn dropout_thins_reports_but_keeps_estimate_unbiased() {
        let vs = values(30_000, 200);
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let cfg = base_config(8).with_dropout(DropoutModel::bernoulli(0.4));
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_round_impl(&vs, &cfg, None, &mut rng).unwrap();
        let rate = out.reports as f64 / out.contacted as f64;
        assert!((rate - 0.6).abs() < 0.02, "response rate {rate}");
        assert!((out.outcome.estimate - truth).abs() / truth < 0.06);
    }

    #[test]
    fn auto_adjust_refills_starved_bits() {
        // Heavy dropout plus a small first wave: without refills, low-order
        // bits (tiny p_j) are starved.
        let vs = values(20_000, 200);
        let single = base_config(8)
            .with_dropout(DropoutModel::bernoulli(0.5))
            .with_auto_adjust(1, 30, 0.6);
        let multi = base_config(8)
            .with_dropout(DropoutModel::bernoulli(0.5))
            .with_auto_adjust(4, 30, 0.6);
        let mut starved_single = 0;
        let mut starved_multi = 0;
        for s in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(s);
            starved_single += run_round_impl(&vs, &single, None, &mut rng)
                .unwrap()
                .starved_bits
                .len();
            let mut rng = StdRng::seed_from_u64(s);
            let out = run_round_impl(&vs, &multi, None, &mut rng).unwrap();
            starved_multi += out.starved_bits.len();
            assert!(out.waves_used >= 1);
        }
        assert!(
            starved_multi < starved_single,
            "refill waves should reduce starvation: {starved_multi} vs {starved_single}"
        );
    }

    #[test]
    fn secagg_transport_matches_direct() {
        let vs = values(500, 100);
        let mut cfg_direct = base_config(7);
        cfg_direct.session_seed = 42;
        let cfg_secagg = {
            let mut c = base_config(7).with_secagg(SecAggSettings::default());
            c.session_seed = 42;
            c
        };
        // Same seed → same assignment and reports → identical estimates.
        let direct = run_round_impl(&vs, &cfg_direct, None, &mut StdRng::seed_from_u64(3)).unwrap();
        let secure = run_round_impl(&vs, &cfg_secagg, None, &mut StdRng::seed_from_u64(3)).unwrap();
        assert!((direct.outcome.estimate - secure.outcome.estimate).abs() < 1e-9);
        let summary = secure.secagg.unwrap();
        assert_eq!(summary.contributors, 500);
    }

    #[test]
    fn secagg_with_dropouts_recovers_masks() {
        let vs = values(400, 100);
        let cfg = base_config(7)
            .with_dropout(DropoutModel::phased(0.1, 0.05))
            .with_secagg(SecAggSettings {
                threshold_fraction: 0.5,
                ..SecAggSettings::default()
            });
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_round_impl(&vs, &cfg, None, &mut rng).unwrap();
        let summary = out.secagg.unwrap();
        assert!(summary.recovered_pairwise > 10, "expected dropout recovery");
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        assert!((out.outcome.estimate - truth).abs() / truth < 0.4);
    }

    #[test]
    fn privacy_composes_with_transport() {
        let vs = values(60_000, 200);
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let mut cfg = base_config(8);
        cfg.protocol = cfg
            .protocol
            .with_privacy(fednum_core::privacy::RandomizedResponse::from_epsilon(2.0));
        let mut rng = StdRng::seed_from_u64(5);
        let out = run_round_impl(&vs, &cfg, None, &mut rng).unwrap();
        assert!(
            (out.outcome.estimate - truth).abs() / truth < 0.25,
            "est {} truth {truth}",
            out.outcome.estimate
        );
    }

    #[test]
    fn latency_model_accumulates_time() {
        let vs = values(1000, 100);
        let cfg = base_config(7).with_latency(LatencyModel::typical_fleet());
        let mut rng = StdRng::seed_from_u64(6);
        let out = run_round_impl(&vs, &cfg, None, &mut rng).unwrap();
        assert!(out.completion_time > 0.0);
    }

    #[test]
    fn total_dropout_fails_closed() {
        let vs = values(50, 10);
        let cfg = base_config(4).with_dropout(DropoutModel::bernoulli(0.999));
        // With rate .999 on 50 clients, most seeds yield zero reports.
        let mut failures = 0;
        for s in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(s);
            if matches!(
                run_round_impl(&vs, &cfg, None, &mut rng),
                Err(RoundError::NoReports)
            ) {
                failures += 1;
            }
        }
        assert!(failures > 10, "expected frequent NoReports, got {failures}");
    }

    #[test]
    fn error_display() {
        assert_eq!(
            RoundError::NoReports.to_string(),
            "no reports were received"
        );
    }

    #[test]
    fn empty_population_is_a_typed_error() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            run_round_impl(&[], &base_config(4), None, &mut rng),
            Err(FedError::PopulationTooSmall { got: 0, need: 1 })
        ));
    }

    #[test]
    fn try_with_auto_adjust_rejects_bad_config() {
        assert!(matches!(
            base_config(4).try_with_auto_adjust(0, 1, 1.0),
            Err(FedError::InvalidConfig(_))
        ));
        assert!(matches!(
            base_config(4).try_with_auto_adjust(2, 1, 0.0),
            Err(FedError::InvalidConfig(_))
        ));
        assert!(base_config(4).try_with_auto_adjust(2, 10, 0.5).is_ok());
    }

    #[test]
    fn fault_injection_is_counted_and_survived() {
        let vs = values(5_000, 100);
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let plan = FaultPlan::new(FaultRates::uniform(0.02), 99).unwrap();
        let cfg = base_config(7).with_faults(plan);
        let mut rng = StdRng::seed_from_u64(7);
        let out = run_round_impl(&vs, &cfg, None, &mut rng).unwrap();
        assert!(out.robustness.faults_injected > 300, "~14% of 5000 faulted");
        // Validation rejected the duplicates, replays and stale reports.
        let rej = out.robustness.rejections;
        assert!(rej.duplicate > 0 && rej.replayed > 0 && rej.stale_round > 0);
        assert!(
            (out.outcome.estimate - truth).abs() / truth < 0.1,
            "estimate {} vs {truth} should survive 2% faults per class",
            out.outcome.estimate
        );
    }

    #[test]
    fn naive_orchestrator_double_counts_duplicates() {
        let vs = values(2_000, 100);
        let rates = FaultRates {
            duplicate: 0.3,
            ..FaultRates::none()
        };
        let plan = FaultPlan::new(rates, 5).unwrap();
        let validated = base_config(7).with_faults(plan);
        let naive = base_config(7).with_faults(plan).naive();
        let v_out = run_round_impl(&vs, &validated, None, &mut StdRng::seed_from_u64(8)).unwrap();
        let n_out = run_round_impl(&vs, &naive, None, &mut StdRng::seed_from_u64(8)).unwrap();
        // Validated: one report per client, duplicates rejected and tallied.
        assert_eq!(v_out.reports, 2_000);
        assert!(v_out.robustness.rejections.duplicate > 400);
        // Naive: second deliveries counted again.
        assert_eq!(
            n_out.reports,
            2_000 + n_out.robustness.faults_injected,
            "every duplicate fault adds one extra counted report"
        );
        assert_eq!(n_out.robustness.rejections.total(), 0);
    }

    #[test]
    fn stragglers_are_discarded_at_the_wave_deadline() {
        let vs = values(3_000, 100);
        let rates = FaultRates {
            straggle: 0.1,
            ..FaultRates::none()
        };
        let cfg = base_config(7)
            .with_faults(FaultPlan::new(rates, 11).unwrap())
            .with_latency(LatencyModel::typical_fleet());
        let mut rng = StdRng::seed_from_u64(9);
        let out = run_round_impl(&vs, &cfg, None, &mut rng).unwrap();
        assert!(out.robustness.rejections.straggler > 200);
        assert_eq!(
            u64::from(out.contacted as u32) - out.reports,
            out.robustness.rejections.straggler,
            "every missing report is an enforced deadline"
        );
        // Stragglers hold the wave open to its timeout.
        assert!(out.completion_time >= LatencyModel::typical_fleet().timeout);
    }

    #[test]
    fn secagg_unmask_failure_recovers_by_retry_over_survivors() {
        let vs = values(300, 100);
        let cfg = base_config(7)
            .with_dropout(DropoutModel::phased(0.05, 0.35))
            .with_secagg(SecAggSettings {
                threshold_fraction: 0.75,
                neighbors: None,
            })
            .with_retry(RetryPolicy {
                max_secagg_retries: 2,
                base_backoff: 1.0,
                max_backoff: 8.0,
                min_cohort: 10,
            });
        // ~40% of the cohort is gone by the unmask round, under a 75%
        // threshold: the first attempt fails, the re-masked retry over the
        // survivors succeeds.
        let mut recovered = 0;
        for s in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(s);
            let out = run_round_impl(&vs, &cfg, None, &mut rng).unwrap();
            if out.robustness.secagg_retries > 0 {
                recovered += 1;
                // At least Retried; a retry that also starves a bit reports
                // the more severe Partial.
                assert!(out.robustness.degraded >= DegradedMode::Retried);
                assert!(out.robustness.backoff_time > 0.0);
                let truth = vs.iter().sum::<f64>() / vs.len() as f64;
                assert!(
                    (out.outcome.estimate - truth).abs() / truth < 0.6,
                    "retried estimate {} is usable",
                    out.outcome.estimate
                );
            }
        }
        assert!(recovered >= 8, "retry path should fire, got {recovered}/10");
    }

    #[test]
    fn naive_policy_surfaces_the_unmask_failure() {
        let vs = values(300, 100);
        let cfg = base_config(7)
            .with_dropout(DropoutModel::phased(0.05, 0.35))
            .with_secagg(SecAggSettings {
                threshold_fraction: 0.75,
                neighbors: None,
            })
            .with_retry(RetryPolicy::none());
        let mut failures = 0;
        for s in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(s);
            if matches!(
                run_round_impl(&vs, &cfg, None, &mut rng),
                Err(FedError::SecAgg(SecAggError::TooFewSurvivors { .. }))
            ) {
                failures += 1;
            }
        }
        assert!(failures >= 8, "no-retry policy should fail, got {failures}");
    }

    #[test]
    fn min_cohort_aborts_small_rounds() {
        let vs = values(30, 10);
        let cfg = base_config(4)
            .with_dropout(DropoutModel::bernoulli(0.8))
            .with_retry(RetryPolicy {
                min_cohort: 25,
                ..RetryPolicy::default()
            });
        let mut rng = StdRng::seed_from_u64(10);
        match run_round_impl(&vs, &cfg, None, &mut rng) {
            Err(FedError::CohortTooSmall { survivors, minimum }) => {
                assert_eq!(minimum, 25);
                assert!(survivors < 25);
            }
            other => panic!("expected CohortTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn metered_rounds_never_double_charge_across_retries() {
        let vs = values(300, 100);
        let mut cfg = base_config(7)
            .with_dropout(DropoutModel::phased(0.05, 0.35))
            .with_secagg(SecAggSettings {
                threshold_fraction: 0.75,
                neighbors: None,
            })
            .with_retry(RetryPolicy {
                max_secagg_retries: 2,
                base_backoff: 0.5,
                max_backoff: 4.0,
                min_cohort: 10,
            });
        // The paper's headline budget: one bit per client per task.
        let mut ledger = PrivacyLedger::with_budget(PrivacyBudget::bits(1));
        let mut retried = false;
        for s in 0..10u64 {
            cfg.session_seed = 1000 + s; // fresh round id per attempt set
            let mut ledger = ledger.clone();
            let mut rng = StdRng::seed_from_u64(s);
            let out = run_round_impl(&vs, &cfg, Some(&mut ledger), &mut rng).unwrap();
            retried |= out.robustness.secagg_retries > 0;
            assert!(ledger.max_bits_per_client() <= 1);
        }
        assert!(retried, "the retry path must be exercised");
        // Across two *distinct* rounds the second charge trips the budget.
        cfg.session_seed = 1;
        run_round_impl(&vs, &cfg, Some(&mut ledger), &mut StdRng::seed_from_u64(0)).unwrap();
        cfg.session_seed = 2;
        let second = run_round_impl(&vs, &cfg, Some(&mut ledger), &mut StdRng::seed_from_u64(1));
        assert!(matches!(second, Err(FedError::Budget(_))));
    }

    #[test]
    fn degraded_mode_ordering_reflects_severity() {
        assert!(DegradedMode::Clean < DegradedMode::Refilled);
        assert!(DegradedMode::Refilled < DegradedMode::Retried);
        assert!(DegradedMode::Retried < DegradedMode::Partial);
        assert!(DegradedMode::Partial < DegradedMode::Aborted);
    }
}
