//! Crate-wide typed errors for the federated orchestration path.
//!
//! Section 4.3 frames the deployment reality: "Client devices can drop out
//! at any point of the federated protocol". The orchestrator therefore must
//! fail *closed* and *typed* — a misbehaving cohort is an expected outcome,
//! not a programming error, so nothing on the round/adaptive/streaming path
//! is allowed to panic on runtime conditions. [`FedError`] is the single
//! taxonomy those paths return.

use fednum_core::privacy::{AmplificationError, BudgetExceeded, InvalidEpsilon};
use fednum_secagg::protocol::SecAggError;

/// Failure modes of the federated pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FedError {
    /// No client produced any report (e.g., total dropout).
    NoReports,
    /// The secure-aggregation protocol failed after exhausting the
    /// configured retries.
    SecAgg(SecAggError),
    /// Fewer clients than the task fundamentally requires.
    PopulationTooSmall {
        /// Clients available.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The surviving cohort fell below the configured privacy minimum, so
    /// the round aborted rather than aggregate over too few clients.
    CohortTooSmall {
        /// Clients still alive when the check fired.
        survivors: usize,
        /// Configured minimum cohort size.
        minimum: usize,
    },
    /// A report addressed a bit index outside the codec depth.
    BitOutOfRange {
        /// The offending bit index.
        bit: u32,
        /// The codec depth.
        bits: u32,
    },
    /// A client's privacy budget would be exceeded by participating.
    Budget(BudgetExceeded),
    /// A configuration parameter was rejected.
    InvalidConfig(String),
    /// The wire transport failed underneath the protocol: connection setup,
    /// socket I/O, or an idle/read timeout enforced by the coordinator
    /// daemon. The round cannot tell whether in-flight frames were
    /// delivered, so it aborts rather than publish over a partial cohort.
    Transport {
        /// The transport operation that failed (`"connect"`, `"read"`, ...).
        op: &'static str,
        /// Human-readable failure detail (the underlying I/O error).
        detail: String,
    },
}

impl std::fmt::Display for FedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FedError::NoReports => write!(f, "no reports were received"),
            FedError::SecAgg(e) => write!(f, "secure aggregation failed: {e}"),
            FedError::PopulationTooSmall { got, need } => {
                write!(f, "population of {got} below the required {need}")
            }
            FedError::CohortTooSmall { survivors, minimum } => write!(
                f,
                "surviving cohort of {survivors} below the minimum of {minimum}"
            ),
            FedError::BitOutOfRange { bit, bits } => {
                write!(f, "bit index out of range: {bit} >= depth {bits}")
            }
            FedError::Budget(e) => write!(f, "{e}"),
            FedError::InvalidConfig(msg) => write!(f, "{msg}"),
            FedError::Transport { op, detail } => {
                write!(f, "transport {op} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for FedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FedError::SecAgg(e) => Some(e),
            FedError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SecAggError> for FedError {
    fn from(e: SecAggError) -> Self {
        FedError::SecAgg(e)
    }
}

impl From<BudgetExceeded> for FedError {
    fn from(e: BudgetExceeded) -> Self {
        FedError::Budget(e)
    }
}

impl From<InvalidEpsilon> for FedError {
    fn from(e: InvalidEpsilon) -> Self {
        FedError::InvalidConfig(e.to_string())
    }
}

impl From<AmplificationError> for FedError {
    fn from(e: AmplificationError) -> Self {
        FedError::InvalidConfig(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        assert_eq!(FedError::NoReports.to_string(), "no reports were received");
        let e = FedError::SecAgg(SecAggError::TooFewSurvivors {
            survivors: 3,
            threshold: 5,
        });
        assert!(e.to_string().contains("secure aggregation failed"));
        assert!(e.to_string().contains("3"));
        assert!(FedError::PopulationTooSmall { got: 1, need: 2 }
            .to_string()
            .contains("population of 1"));
        assert!(FedError::CohortTooSmall {
            survivors: 4,
            minimum: 10
        }
        .to_string()
        .contains("minimum of 10"));
        assert!(FedError::BitOutOfRange { bit: 9, bits: 8 }
            .to_string()
            .contains("bit index out of range"));
        assert_eq!(FedError::InvalidConfig("bad".into()).to_string(), "bad");
        let t = FedError::Transport {
            op: "read",
            detail: "timed out after 2s".into(),
        };
        assert_eq!(t.to_string(), "transport read failed: timed out after 2s");
    }

    #[test]
    fn privacy_parameter_errors_convert_to_invalid_config() {
        let e: FedError = InvalidEpsilon { epsilon: -1.0 }.into();
        assert!(matches!(&e, FedError::InvalidConfig(m) if m.contains("positive and finite")));
        let e: FedError = AmplificationError::InvalidDelta(2.0).into();
        assert!(matches!(&e, FedError::InvalidConfig(m) if m.contains("delta")));
    }

    #[test]
    fn secagg_errors_convert_and_chain() {
        let inner = SecAggError::InputTooLarge { client: 7 };
        let e: FedError = inner.clone().into();
        assert_eq!(e, FedError::SecAgg(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
