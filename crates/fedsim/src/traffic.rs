//! Per-round traffic accounting.
//!
//! The paper's conclusions argue the real cost comparison is end-to-end
//! message/byte traffic — "both can be easily communicated within a single
//! (encrypted) network packet" — and secure aggregation's overhead is part
//! of that bill. [`TrafficStats`] makes the bill itemized: message and byte
//! counts per protocol phase and direction, filled in by the
//! `fednum-transport` coordinator (the legacy synchronous orchestrator
//! reports all-zero traffic, since nothing crosses a wire there) and
//! surfaced on [`crate::round::RobustnessReport`].

/// Protocol phase a message belongs to, in session order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrafficPhase {
    /// Client check-in before the round starts.
    Rendezvous,
    /// Round-configuration downlink (assigned bit, round id, transport).
    Configure,
    /// Bit-pushing report uplink.
    Collect,
    /// Secure-aggregation key advertisement and share distribution.
    KeyExchange,
    /// Secure-aggregation masked-input uplink.
    Masking,
    /// Secure-aggregation unmask-share uplink.
    Unmask,
    /// Result broadcast.
    Publish,
    /// Straggler-salvage follow-up session: every frame a salvage round
    /// adds on top of the base round (fresh secure-aggregation material,
    /// the re-opened window's control traffic). Re-admitted report frames
    /// are *not* re-billed here — they were metered at original arrival,
    /// and the traffic ledger stays idempotent across sessions.
    Salvage,
    /// Shuffle-tier frames: per-client one-bit submissions to the shuffler
    /// and the anonymized batch the shuffler forwards to the coordinator.
    /// Both legs are booked here (not under `Collect`) so the bill shows
    /// what the trust tier itself costs.
    Shuffle,
}

impl TrafficPhase {
    /// Every phase, in session order.
    pub const ALL: [TrafficPhase; 9] = [
        TrafficPhase::Rendezvous,
        TrafficPhase::Configure,
        TrafficPhase::Collect,
        TrafficPhase::KeyExchange,
        TrafficPhase::Masking,
        TrafficPhase::Unmask,
        TrafficPhase::Publish,
        TrafficPhase::Salvage,
        TrafficPhase::Shuffle,
    ];

    fn index(self) -> usize {
        match self {
            TrafficPhase::Rendezvous => 0,
            TrafficPhase::Configure => 1,
            TrafficPhase::Collect => 2,
            TrafficPhase::KeyExchange => 3,
            TrafficPhase::Masking => 4,
            TrafficPhase::Unmask => 5,
            TrafficPhase::Publish => 6,
            TrafficPhase::Salvage => 7,
            TrafficPhase::Shuffle => 8,
        }
    }
}

/// Message direction relative to the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → coordinator.
    Uplink,
    /// Coordinator → client.
    Downlink,
}

/// A message/byte pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Messages counted.
    pub messages: u64,
    /// Total payload bytes across those messages.
    pub bytes: u64,
}

impl Counter {
    fn add(&mut self, bytes: u64) {
        self.messages += 1;
        self.bytes += bytes;
    }

    fn merge(&mut self, other: &Counter) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// Per-phase, per-direction traffic tally for one round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    up: [Counter; 9],
    down: [Counter; 9],
    /// Downlink bytes avoided by config compression (broadcast header +
    /// per-client bit delta instead of one full `RoundConfig` each).
    config_saved: u64,
}

impl TrafficStats {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `bytes`-byte message.
    pub fn record(&mut self, phase: TrafficPhase, direction: Direction, bytes: u64) {
        let i = phase.index();
        match direction {
            Direction::Uplink => self.up[i].add(bytes),
            Direction::Downlink => self.down[i].add(bytes),
        }
    }

    /// Folds another tally into this one (e.g. per-shard tallies at publish).
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..TrafficPhase::ALL.len() {
            self.up[i].merge(&other.up[i]);
            self.down[i].merge(&other.down[i]);
        }
        self.config_saved += other.config_saved;
    }

    /// Folds another tally into this one with every message re-attributed
    /// to `phase` — how a salvage session's secure-aggregation traffic is
    /// booked: the bytes are real, but they belong to the salvage line of
    /// the bill, not the base round's key-exchange/masking/unmask rows.
    pub fn absorb_as(&mut self, other: &TrafficStats, phase: TrafficPhase) {
        let i = phase.index();
        self.up[i].merge(&other.direction_total(Direction::Uplink));
        self.down[i].merge(&other.direction_total(Direction::Downlink));
        self.config_saved += other.config_saved;
    }

    /// Credits downlink bytes the compressed config codec avoided sending
    /// (relative to one full `RoundConfig` frame per contacted client).
    pub fn credit_config_savings(&mut self, bytes: u64) {
        self.config_saved += bytes;
    }

    /// Downlink bytes avoided by config compression; zero on the
    /// uncompressed path.
    #[must_use]
    pub fn config_bytes_saved(&self) -> u64 {
        self.config_saved
    }

    /// The tally for one phase/direction cell.
    #[must_use]
    pub fn get(&self, phase: TrafficPhase, direction: Direction) -> Counter {
        let i = phase.index();
        match direction {
            Direction::Uplink => self.up[i],
            Direction::Downlink => self.down[i],
        }
    }

    /// Total traffic in one direction across all phases.
    #[must_use]
    pub fn direction_total(&self, direction: Direction) -> Counter {
        let mut total = Counter::default();
        for phase in TrafficPhase::ALL {
            total.merge(&self.get(phase, direction));
        }
        total
    }

    /// Total messages, both directions.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.direction_total(Direction::Uplink).messages
            + self.direction_total(Direction::Downlink).messages
    }

    /// Total bytes, both directions.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.direction_total(Direction::Uplink).bytes
            + self.direction_total(Direction::Downlink).bytes
    }

    /// Mean uplink bytes per client over `clients` contacted clients — the
    /// number the paper's "single encrypted packet" statement is about.
    #[must_use]
    pub fn uplink_bytes_per_client(&self, clients: usize) -> f64 {
        if clients == 0 {
            return 0.0;
        }
        self.direction_total(Direction::Uplink).bytes as f64 / clients as f64
    }

    /// True when nothing was recorded (the legacy synchronous path).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_messages() == 0
    }
}

impl std::fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<12} {:>10} {:>12} {:>10} {:>12}",
            "phase", "up msgs", "up bytes", "dn msgs", "dn bytes"
        )?;
        for phase in TrafficPhase::ALL {
            let up = self.get(phase, Direction::Uplink);
            let down = self.get(phase, Direction::Downlink);
            if up.messages == 0 && down.messages == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<12} {:>10} {:>12} {:>10} {:>12}",
                format!("{phase:?}"),
                up.messages,
                up.bytes,
                down.messages,
                down.bytes
            )?;
        }
        let up = self.direction_total(Direction::Uplink);
        let down = self.direction_total(Direction::Downlink);
        write!(
            f,
            "{:<12} {:>10} {:>12} {:>10} {:>12}",
            "total", up.messages, up.bytes, down.messages, down.bytes
        )?;
        if self.config_saved > 0 {
            write!(
                f,
                "\nconfig compression saved {} downlink bytes",
                self.config_saved
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_phase_and_direction() {
        let mut t = TrafficStats::new();
        t.record(TrafficPhase::Collect, Direction::Uplink, 5);
        t.record(TrafficPhase::Collect, Direction::Uplink, 7);
        t.record(TrafficPhase::Configure, Direction::Downlink, 11);
        let up = t.get(TrafficPhase::Collect, Direction::Uplink);
        assert_eq!((up.messages, up.bytes), (2, 12));
        let down = t.get(TrafficPhase::Configure, Direction::Downlink);
        assert_eq!((down.messages, down.bytes), (1, 11));
        assert_eq!(
            t.get(TrafficPhase::Collect, Direction::Downlink).messages,
            0
        );
        assert_eq!(t.total_messages(), 3);
        assert_eq!(t.total_bytes(), 23);
    }

    #[test]
    fn merge_sums_cells() {
        let mut a = TrafficStats::new();
        a.record(TrafficPhase::Masking, Direction::Uplink, 100);
        let mut b = TrafficStats::new();
        b.record(TrafficPhase::Masking, Direction::Uplink, 50);
        b.record(TrafficPhase::Publish, Direction::Downlink, 9);
        a.merge(&b);
        assert_eq!(a.get(TrafficPhase::Masking, Direction::Uplink).bytes, 150);
        assert_eq!(a.get(TrafficPhase::Masking, Direction::Uplink).messages, 2);
        assert_eq!(a.get(TrafficPhase::Publish, Direction::Downlink).bytes, 9);
    }

    #[test]
    fn per_client_average_and_empty() {
        let mut t = TrafficStats::new();
        assert!(t.is_empty());
        assert_eq!(t.uplink_bytes_per_client(10), 0.0);
        assert_eq!(t.uplink_bytes_per_client(0), 0.0);
        for _ in 0..10 {
            t.record(TrafficPhase::Collect, Direction::Uplink, 4);
        }
        assert!(!t.is_empty());
        assert!((t.uplink_bytes_per_client(10) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn config_savings_are_credited_and_merged() {
        let mut a = TrafficStats::new();
        assert_eq!(a.config_bytes_saved(), 0);
        a.credit_config_savings(120);
        let mut b = TrafficStats::new();
        b.credit_config_savings(30);
        a.merge(&b);
        assert_eq!(a.config_bytes_saved(), 150);
        assert!(a.to_string().contains("saved 150 downlink bytes"));
    }

    #[test]
    fn absorb_as_reattributes_every_cell_to_the_target_phase() {
        let mut session = TrafficStats::new();
        session.record(TrafficPhase::KeyExchange, Direction::Downlink, 40);
        session.record(TrafficPhase::Masking, Direction::Uplink, 100);
        session.record(TrafficPhase::Unmask, Direction::Uplink, 25);
        let mut round = TrafficStats::new();
        round.record(TrafficPhase::Collect, Direction::Uplink, 8);
        round.absorb_as(&session, TrafficPhase::Salvage);
        let up = round.get(TrafficPhase::Salvage, Direction::Uplink);
        assert_eq!((up.messages, up.bytes), (2, 125));
        let down = round.get(TrafficPhase::Salvage, Direction::Downlink);
        assert_eq!((down.messages, down.bytes), (1, 40));
        assert_eq!(round.get(TrafficPhase::Masking, Direction::Uplink).bytes, 0);
        assert_eq!(round.total_bytes(), 173);
    }

    #[test]
    fn display_renders_nonempty_rows() {
        let mut t = TrafficStats::new();
        t.record(TrafficPhase::Collect, Direction::Uplink, 4);
        let s = t.to_string();
        assert!(s.contains("Collect"));
        assert!(!s.contains("Masking"));
        assert!(s.contains("total"));
    }
}
