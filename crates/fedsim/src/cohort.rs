//! Cohort selection: eligibility and minimum-size enforcement.
//!
//! "When applied to more selective queries, e.g., restricting eligibility to
//! clients in a particular geography, it can take longer for a sufficient
//! number of eligible clients to make themselves available. Here, it is
//! pertinent... to enforce a minimum cohort size for privacy" (Section 4.3).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::population::{Client, Population};

/// Cohort selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortPolicy {
    /// Desired cohort size.
    pub target_size: usize,
    /// Privacy floor: selection fails rather than run with fewer eligible
    /// clients than this.
    pub min_size: usize,
}

/// Selection failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortError {
    /// Eligible clients found.
    pub eligible: usize,
    /// The privacy floor that was not met.
    pub min_size: usize,
}

impl std::fmt::Display for CohortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "only {} eligible clients, below the privacy floor of {}",
            self.eligible, self.min_size
        )
    }
}

impl std::error::Error for CohortError {}

impl CohortPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    /// Panics unless `1 <= min_size <= target_size`.
    #[must_use]
    pub fn new(target_size: usize, min_size: usize) -> Self {
        assert!(
            min_size >= 1 && min_size <= target_size,
            "need 1 <= min_size <= target_size"
        );
        Self {
            target_size,
            min_size,
        }
    }

    /// Selects up to `target_size` eligible clients uniformly at random.
    /// Returns indices into the population.
    ///
    /// # Errors
    /// [`CohortError`] when fewer than `min_size` clients are eligible.
    pub fn select<F>(
        &self,
        population: &Population,
        eligible: F,
        rng: &mut dyn Rng,
    ) -> Result<Vec<usize>, CohortError>
    where
        F: Fn(&Client) -> bool,
    {
        let mut candidates: Vec<usize> = population
            .clients()
            .iter()
            .enumerate()
            .filter(|(_, c)| eligible(c))
            .map(|(i, _)| i)
            .collect();
        if candidates.len() < self.min_size {
            return Err(CohortError {
                eligible: candidates.len(),
                min_size: self.min_size,
            });
        }
        candidates.shuffle(rng);
        candidates.truncate(self.target_size);
        Ok(candidates)
    }

    /// Convenience: select by region tag.
    ///
    /// # Errors
    /// [`CohortError`] when too few clients match the region.
    pub fn select_region(
        &self,
        population: &Population,
        region: u32,
        rng: &mut dyn Rng,
    ) -> Result<Vec<usize>, CohortError> {
        self.select(population, |c| c.region == region, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_population() -> Population {
        let clients = (0..100)
            .map(|i| Client::new(i, u32::from(i % 4 == 0), vec![i as f64]))
            .collect();
        Population::new(clients)
    }

    #[test]
    fn selects_target_size() {
        let p = mixed_population();
        let policy = CohortPolicy::new(10, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let cohort = policy.select(&p, |_| true, &mut rng).unwrap();
        assert_eq!(cohort.len(), 10);
        // Indices are distinct.
        let set: std::collections::HashSet<_> = cohort.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn region_filter_applies() {
        let p = mixed_population();
        let policy = CohortPolicy::new(100, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let cohort = policy.select_region(&p, 1, &mut rng).unwrap();
        // Region 1 = every 4th client: 25 of them.
        assert_eq!(cohort.len(), 25);
        assert!(cohort.iter().all(|&i| p.clients()[i].region == 1));
    }

    #[test]
    fn privacy_floor_fails_closed() {
        let p = mixed_population();
        let policy = CohortPolicy::new(50, 30);
        let mut rng = StdRng::seed_from_u64(3);
        let err = policy.select_region(&p, 1, &mut rng).unwrap_err();
        assert_eq!(err.eligible, 25);
        assert_eq!(err.min_size, 30);
        assert!(err.to_string().contains("privacy floor"));
    }

    #[test]
    fn selection_varies_with_seed() {
        let p = mixed_population();
        let policy = CohortPolicy::new(10, 1);
        let a = policy
            .select(&p, |_| true, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let b = policy
            .select(&p, |_| true, &mut StdRng::seed_from_u64(2))
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn fewer_eligible_than_target_is_fine_above_floor() {
        let p = mixed_population();
        let policy = CohortPolicy::new(50, 10);
        let mut rng = StdRng::seed_from_u64(4);
        let cohort = policy.select_region(&p, 1, &mut rng).unwrap();
        assert_eq!(cohort.len(), 25); // all the eligible ones
    }

    #[test]
    #[should_panic(expected = "min_size <= target_size")]
    fn rejects_inverted_sizes() {
        let _ = CohortPolicy::new(5, 10);
    }
}
