//! Federated environment simulator.
//!
//! The paper's Section 4.3 reports deployment behaviour that lives outside
//! the core protocol math: clients with multiple local values, unreliable
//! connectivity, eligibility-restricted cohorts, round latency, and
//! secure-aggregation transport. This crate models that environment so those
//! findings are reproducible:
//!
//! * [`population`] — clients owning one or many private values, with the
//!   two elicitation semantics the paper discusses (sampling vs. local
//!   aggregation);
//! * [`dropout`] — Bernoulli and phase-dependent dropout models;
//! * [`cohort`] — eligibility predicates and minimum-cohort-size
//!   enforcement ("enforce a minimum cohort size for privacy");
//! * [`latency`] — log-normal client latency and round-completion times;
//! * [`round`] — the orchestrator: contact clients in waves, apply dropout,
//!   auto-adjust bit sampling to refill starved bits ("the bit sampling
//!   probabilities were auto-adjusted based on the dropout rate"), deliver
//!   reports directly or through the `fednum-secagg` protocol, and hand the
//!   per-bit histograms to `fednum-core` for estimation.

pub mod adaptive_round;
pub mod cohort;
pub mod dropout;
pub mod error;
pub mod faults;
pub mod fedlearn;
pub mod latency;
pub mod population;
pub mod retry;
pub mod round;
pub mod streaming;
pub mod traffic;
pub mod validation;

pub use adaptive_round::{FederatedAdaptiveConfig, FederatedAdaptiveOutcome};
pub use cohort::{CohortError, CohortPolicy};
pub use dropout::DropoutModel;
pub use error::FedError;
pub use faults::{FaultKind, FaultPlan, FaultRates, FaultSchedule};
pub use fedlearn::{train_linear, FedLearnConfig, LinearModel, TrainingTrace};
pub use latency::LatencyModel;
pub use population::{Client, ElicitStrategy, Population};
pub use retry::{RetryPolicy, SalvagePolicy};
pub use round::{
    DegradedMode, FederatedMeanConfig, FederatedOutcome, RobustnessReport, RoundError,
    SalvageOutcome, SecAggSettings,
};
pub use streaming::StreamingMean;
pub use traffic::{Direction, TrafficPhase, TrafficStats};
pub use validation::{RejectionCounts, ReportValidator, Violation};
