//! Asynchronous / streaming aggregation.
//!
//! Section 1.1: "Our approach naturally accommodates asynchronous updates,
//! whereas secure aggregation can require batching a sufficient number of
//! updates to provide privacy." Reports arrive one at a time as devices come
//! online; the estimate is available at any moment and tightens as reports
//! accumulate. An exponential decay lets the same aggregator track
//! non-stationary metrics.

use fednum_core::accumulator::BitAccumulator;
use fednum_core::bits::{bit_f64, weight};
use fednum_core::encoding::FixedPointCodec;
use fednum_core::privacy::RandomizedResponse;
use fednum_core::sampling::BitSampling;
use rand::Rng;

use crate::error::FedError;

/// A continuously updatable bit-pushing mean estimator.
#[derive(Debug, Clone)]
pub struct StreamingMean {
    codec: FixedPointCodec,
    sampling: BitSampling,
    privacy: Option<RandomizedResponse>,
    sums: Vec<f64>,
    counts: Vec<f64>, // fractional after decay
    reports: u64,
}

impl StreamingMean {
    /// Creates an empty streaming aggregator.
    ///
    /// # Panics
    /// Panics if the sampling depth differs from the codec's.
    #[must_use]
    pub fn new(
        codec: FixedPointCodec,
        sampling: BitSampling,
        privacy: Option<RandomizedResponse>,
    ) -> Self {
        assert_eq!(codec.bits(), sampling.bits(), "bit-depth mismatch");
        let bits = codec.bits() as usize;
        Self {
            codec,
            sampling,
            privacy,
            sums: vec![0.0; bits],
            counts: vec![0.0; bits],
            reports: 0,
        }
    }

    /// Ingests one client's value as it arrives: the client samples its bit
    /// index locally from the configured distribution, extracts (and
    /// optionally randomizes) the bit, and the server folds it in.
    pub fn ingest(&mut self, value: f64, rng: &mut dyn Rng) {
        let code = self.codec.encode(value);
        let j = self.sampling.assign_local(1, rng)[0];
        let raw = fednum_core::bits::bit(code, j);
        let contribution = match &self.privacy {
            Some(rr) => rr.debias(rr.flip(raw, rng)),
            None => bit_f64(code, j),
        };
        self.sums[j as usize] += contribution;
        self.counts[j as usize] += 1.0;
        self.reports += 1;
    }

    /// Ingests a pre-assigned report (server-side central assignment over an
    /// asynchronous transport).
    ///
    /// # Errors
    /// [`FedError::BitOutOfRange`] if `bit_index` exceeds the codec depth;
    /// the aggregator is unchanged.
    pub fn try_ingest_report(
        &mut self,
        bit_index: u32,
        debiased_value: f64,
    ) -> Result<(), FedError> {
        let j = bit_index as usize;
        if j >= self.sums.len() {
            return Err(FedError::BitOutOfRange {
                bit: bit_index,
                bits: self.codec.bits(),
            });
        }
        self.sums[j] += debiased_value;
        self.counts[j] += 1.0;
        self.reports += 1;
        Ok(())
    }

    /// Ingests a pre-assigned report (server-side central assignment over an
    /// asynchronous transport).
    ///
    /// # Panics
    /// Panics if `bit_index` is out of range; see
    /// [`StreamingMean::try_ingest_report`] for the non-panicking variant.
    pub fn ingest_report(&mut self, bit_index: u32, debiased_value: f64) {
        self.try_ingest_report(bit_index, debiased_value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// The current mean estimate; `None` until at least one report arrived.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.reports == 0 {
            return None;
        }
        let encoded: f64 = self
            .sums
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(|(j, (&s, &c))| {
                if c <= 0.0 {
                    0.0
                } else {
                    weight(j as u32) * (s / c)
                }
            })
            .sum();
        Some(self.codec.decode_float(encoded))
    }

    /// Predicted standard deviation of the current estimate (value domain),
    /// from the Lemma 3.1 formula at the live per-bit means/counts.
    #[must_use]
    pub fn predicted_std(&self) -> f64 {
        let var: f64 = self
            .sums
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(|(j, (&s, &c))| {
                if c <= 0.0 {
                    return 0.0;
                }
                let m = (s / c).clamp(0.0, 1.0);
                let per_report = match &self.privacy {
                    Some(rr) => rr.report_variance(m),
                    None => m * (1.0 - m),
                };
                let w = weight(j as u32);
                w * w * per_report / c
            })
            .sum();
        let scale = self.codec.decode_float(1.0) - self.codec.decode_float(0.0);
        var.sqrt() * scale
    }

    /// Total reports ingested (undiscounted).
    #[must_use]
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Applies exponential forgetting: scales all sums and counts by
    /// `factor`, so the estimator tracks non-stationary metrics. Call once
    /// per epoch with e.g. `factor = 0.9`.
    ///
    /// # Errors
    /// [`FedError::InvalidConfig`] unless `0 < factor <= 1`; the aggregator
    /// is unchanged.
    pub fn try_decay(&mut self, factor: f64) -> Result<(), FedError> {
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(FedError::InvalidConfig(format!(
                "decay factor must be in (0, 1], got {factor}"
            )));
        }
        for s in &mut self.sums {
            *s *= factor;
        }
        for c in &mut self.counts {
            *c *= factor;
        }
        Ok(())
    }

    /// Applies exponential forgetting; see [`StreamingMean::try_decay`] for
    /// the non-panicking variant.
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn decay(&mut self, factor: f64) {
        self.try_decay(factor).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Snapshot of the internal histogram (rounded counts), e.g. for
    /// handing off to distributed-DP post-processing.
    #[must_use]
    pub fn snapshot(&self) -> BitAccumulator {
        BitAccumulator::from_parts(
            self.sums.clone(),
            self.counts
                .iter()
                .map(|&c| c.round().max(0.0) as u64)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn aggregator() -> StreamingMean {
        StreamingMean::new(
            FixedPointCodec::integer(10),
            BitSampling::geometric(10, 1.0),
            None,
        )
    }

    #[test]
    fn empty_aggregator_has_no_estimate() {
        let agg = aggregator();
        assert_eq!(agg.estimate(), None);
        assert_eq!(agg.reports(), 0);
    }

    #[test]
    fn estimate_converges_as_reports_stream_in() {
        let mut agg = aggregator();
        let mut rng = StdRng::seed_from_u64(1);
        let truth = 499.5;
        let mut early_err = None;
        for i in 0..100_000u64 {
            agg.ingest((i % 1000) as f64, &mut rng);
            if i == 2_000 {
                early_err = Some((agg.estimate().unwrap() - truth).abs());
            }
        }
        let late_err = (agg.estimate().unwrap() - truth).abs();
        assert!(late_err < 10.0, "late error {late_err}");
        assert!(
            late_err < early_err.unwrap(),
            "error should shrink: early {early_err:?} late {late_err}"
        );
        assert_eq!(agg.reports(), 100_000);
    }

    #[test]
    fn predicted_std_shrinks_with_reports() {
        let mut agg = aggregator();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..2_000u64 {
            agg.ingest((i % 1000) as f64, &mut rng);
        }
        let early = agg.predicted_std();
        for i in 0..30_000u64 {
            agg.ingest((i % 1000) as f64, &mut rng);
        }
        assert!(agg.predicted_std() < early / 2.0);
    }

    #[test]
    fn decay_tracks_distribution_shift() {
        let mut agg = aggregator();
        let mut rng = StdRng::seed_from_u64(3);
        // Phase 1: values around 100.
        for i in 0..30_000u64 {
            agg.ingest(100.0 + (i % 10) as f64, &mut rng);
        }
        // Shift: values around 800, with per-epoch decay.
        for epoch in 0..30 {
            agg.decay(0.5);
            for i in 0..2_000u64 {
                agg.ingest(800.0 + ((i + epoch) % 10) as f64, &mut rng);
            }
        }
        let est = agg.estimate().unwrap();
        assert!(
            (est - 804.5).abs() < 40.0,
            "decayed estimate {est} should track the new level"
        );
    }

    #[test]
    fn no_decay_is_sticky_after_shift() {
        let mut agg = aggregator();
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..30_000u64 {
            agg.ingest(100.0 + (i % 10) as f64, &mut rng);
        }
        for i in 0..30_000u64 {
            agg.ingest(800.0 + (i % 10) as f64, &mut rng);
        }
        let est = agg.estimate().unwrap();
        // Without forgetting the estimate sits between the two regimes.
        assert!(est > 300.0 && est < 700.0, "sticky estimate {est}");
    }

    #[test]
    fn privacy_composes_with_streaming() {
        let mut agg = StreamingMean::new(
            FixedPointCodec::integer(8),
            BitSampling::geometric(8, 2.0),
            Some(RandomizedResponse::from_epsilon(2.0)),
        );
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..200_000u64 {
            agg.ingest((i % 200) as f64, &mut rng);
        }
        let est = agg.estimate().unwrap();
        assert!(
            (est - 99.5).abs() < 10.0,
            "private streaming estimate {est}"
        );
    }

    #[test]
    fn ingest_report_matches_local_path_semantics() {
        let mut agg = aggregator();
        agg.ingest_report(3, 1.0);
        agg.ingest_report(3, 0.0);
        // Only bit 3 has data: estimate = 2^3 * 0.5 = 4.
        assert_eq!(agg.estimate(), Some(4.0));
        let snap = agg.snapshot();
        assert_eq!(snap.counts()[3], 2);
    }

    #[test]
    #[should_panic(expected = "factor must be in")]
    fn rejects_bad_decay() {
        aggregator().decay(0.0);
    }

    #[test]
    fn try_variants_return_typed_errors_without_mutating() {
        use crate::error::FedError;
        let mut agg = aggregator();
        assert_eq!(
            agg.try_ingest_report(10, 1.0),
            Err(FedError::BitOutOfRange { bit: 10, bits: 10 })
        );
        assert_eq!(agg.reports(), 0);
        assert!(matches!(
            agg.try_decay(1.5),
            Err(FedError::InvalidConfig(_))
        ));
        agg.try_ingest_report(3, 1.0).unwrap();
        agg.try_decay(0.5).unwrap();
        assert_eq!(agg.estimate(), Some(8.0));
    }
}
