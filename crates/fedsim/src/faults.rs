//! Deterministic fault injection for the federated pipeline.
//!
//! The dropout models in [`crate::dropout`] cover the *statistical* failure
//! mode Section 4.3 describes; real fleets also exhibit adversarial and
//! infrastructure faults: stragglers that blow past the round deadline,
//! bit flips in transit, duplicated deliveries from retrying transports,
//! replayed and stale-round reports. This module injects those faults
//! deterministically — each (seed, round, client) triple maps to the same
//! fault on every run — so chaos scenarios are reproducible and composable
//! with any [`crate::dropout::DropoutModel`]: fault sampling draws nothing
//! from the orchestrator's RNG stream.

use std::collections::HashMap;

use crate::error::FedError;

/// What goes wrong for one contacted client, and at which protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The client vanishes before sending its report.
    DropBeforeReport,
    /// The client reports but is gone for the secure-aggregation unmask
    /// round (stresses mask recovery and the retry path).
    DropBeforeUnmask,
    /// The report arrives after the wave deadline and is discarded.
    Straggle,
    /// The report's bit value is flipped in transit (undetectable).
    CorruptBit,
    /// A retrying transport delivers the same report twice.
    DuplicateReport,
    /// An adversary replays a previously observed report in place of the
    /// client's fresh one.
    ReplayReport,
    /// The report carries a previous round's identifier.
    StaleRound,
}

impl FaultKind {
    /// All kinds, in the order the cumulative-rate walk uses.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::DropBeforeReport,
        FaultKind::DropBeforeUnmask,
        FaultKind::Straggle,
        FaultKind::CorruptBit,
        FaultKind::DuplicateReport,
        FaultKind::ReplayReport,
        FaultKind::StaleRound,
    ];
}

/// Per-kind injection probabilities, applied independently per client.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// P(drop before reporting).
    pub drop_before_report: f64,
    /// P(drop before the unmask round).
    pub drop_before_unmask: f64,
    /// P(straggle past the wave deadline).
    pub straggle: f64,
    /// P(bit corrupted in transit).
    pub corrupt_bit: f64,
    /// P(report delivered twice).
    pub duplicate: f64,
    /// P(report replaced by a replay).
    pub replay: f64,
    /// P(report tagged with a stale round id).
    pub stale_round: f64,
}

impl FaultRates {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The same rate for every fault kind.
    #[must_use]
    pub fn uniform(rate: f64) -> Self {
        Self {
            drop_before_report: rate,
            drop_before_unmask: rate,
            straggle: rate,
            corrupt_bit: rate,
            duplicate: rate,
            replay: rate,
            stale_round: rate,
        }
    }

    fn as_array(&self) -> [f64; 7] {
        [
            self.drop_before_report,
            self.drop_before_unmask,
            self.straggle,
            self.corrupt_bit,
            self.duplicate,
            self.replay,
            self.stale_round,
        ]
    }

    /// Probability that a client suffers *some* fault.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.as_array().iter().sum()
    }
}

/// A seeded, deterministic fault source.
///
/// The plan is a pure function: the fault (if any) assigned to a client
/// depends only on `(plan seed, round, client)`, never on call order, so the
/// same plan replayed over the same cohort injects the same faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    rates: FaultRates,
    seed: u64,
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of the input.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform f64 in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// Creates a plan.
    ///
    /// # Errors
    /// [`FedError::InvalidConfig`] unless every rate is in `[0, 1]` and the
    /// rates sum to at most 1.
    pub fn new(rates: FaultRates, seed: u64) -> Result<Self, FedError> {
        for (kind, &r) in FaultKind::ALL.iter().zip(rates.as_array().iter()) {
            if !(0.0..=1.0).contains(&r) {
                return Err(FedError::InvalidConfig(format!(
                    "fault rate for {kind:?} must be in [0, 1], got {r}"
                )));
            }
        }
        if rates.total() > 1.0 + 1e-12 {
            return Err(FedError::InvalidConfig(format!(
                "fault rates must sum to at most 1, got {}",
                rates.total()
            )));
        }
        Ok(Self { rates, seed })
    }

    /// The configured rates.
    #[must_use]
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// The plan's seed — with [`FaultPlan::rates`], enough to reconstruct
    /// the plan on the far side of a wire (the TCP daemon replays the
    /// driver's fault plan server-side from exactly these two values).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault (if any) this plan injects for `client` in `round`.
    #[must_use]
    pub fn fault_for(&self, round: u64, client: u64) -> Option<FaultKind> {
        let h = mix(self
            .seed
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add(round)
            .rotate_left(17)
            .wrapping_add(client.wrapping_mul(0x9E6C_63D0_876A_68DE)));
        let u = unit(h);
        let mut cum = 0.0;
        for (kind, &r) in FaultKind::ALL.iter().zip(self.rates.as_array().iter()) {
            cum += r;
            if u < cum {
                return Some(*kind);
            }
        }
        None
    }

    /// An auxiliary deterministic coin tied to a client's fault, used for
    /// payload decisions (e.g., the value a stale report carries).
    #[must_use]
    pub fn payload_bit(&self, round: u64, client: u64) -> bool {
        mix(mix(self.seed ^ round).wrapping_add(client)) & 1 == 1
    }

    /// Materializes the plan over a cohort.
    #[must_use]
    pub fn schedule(&self, round: u64, clients: &[u64]) -> FaultSchedule {
        let faults = clients
            .iter()
            .filter_map(|&c| self.fault_for(round, c).map(|k| (c, k)))
            .collect();
        FaultSchedule { round, faults }
    }
}

/// A materialized fault assignment for one round's cohort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    round: u64,
    faults: HashMap<u64, FaultKind>,
}

impl FaultSchedule {
    /// A schedule with no faults.
    #[must_use]
    pub fn empty(round: u64) -> Self {
        Self {
            round,
            faults: HashMap::new(),
        }
    }

    /// The round this schedule was drawn for.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The fault injected for `client`, if any.
    #[must_use]
    pub fn fault(&self, client: u64) -> Option<FaultKind> {
        self.faults.get(&client).copied()
    }

    /// Total faults injected.
    #[must_use]
    pub fn injected(&self) -> usize {
        self.faults.len()
    }

    /// Faults of a specific kind.
    #[must_use]
    pub fn count(&self, kind: FaultKind) -> usize {
        self.faults.values().filter(|&&k| k == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        let plan = FaultPlan::new(FaultRates::uniform(0.05), 42).unwrap();
        for client in 0..1000u64 {
            assert_eq!(plan.fault_for(3, client), plan.fault_for(3, client));
        }
        let a = plan.schedule(3, &(0..1000).collect::<Vec<_>>());
        let b = plan.schedule(3, &(0..1000).collect::<Vec<_>>());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_and_rounds_decorrelate() {
        let p1 = FaultPlan::new(FaultRates::uniform(0.1), 1).unwrap();
        let p2 = FaultPlan::new(FaultRates::uniform(0.1), 2).unwrap();
        let clients: Vec<u64> = (0..5000).collect();
        let s11 = p1.schedule(0, &clients);
        let s12 = p1.schedule(1, &clients);
        let s21 = p2.schedule(0, &clients);
        assert_ne!(s11, s12, "rounds must draw fresh faults");
        assert_ne!(s11, s21, "seeds must draw fresh faults");
    }

    #[test]
    fn rates_are_respected() {
        let rates = FaultRates {
            drop_before_report: 0.1,
            corrupt_bit: 0.05,
            ..FaultRates::none()
        };
        let plan = FaultPlan::new(rates, 7).unwrap();
        let n = 200_000u64;
        let mut drops = 0usize;
        let mut corrupt = 0usize;
        let mut other = 0usize;
        for c in 0..n {
            match plan.fault_for(0, c) {
                Some(FaultKind::DropBeforeReport) => drops += 1,
                Some(FaultKind::CorruptBit) => corrupt += 1,
                Some(_) => other += 1,
                None => {}
            }
        }
        assert_eq!(other, 0, "disabled kinds must never fire");
        assert!((drops as f64 / n as f64 - 0.1).abs() < 0.005);
        assert!((corrupt as f64 / n as f64 - 0.05).abs() < 0.005);
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(matches!(
            FaultPlan::new(FaultRates::uniform(0.2), 0),
            Err(FedError::InvalidConfig(_))
        ));
        let mut rates = FaultRates::none();
        rates.corrupt_bit = -0.1;
        assert!(FaultPlan::new(rates, 0).is_err());
        rates.corrupt_bit = 1.5;
        assert!(FaultPlan::new(rates, 0).is_err());
        assert!(FaultPlan::new(FaultRates::uniform(1.0 / 7.0), 0).is_ok());
    }

    #[test]
    fn schedule_counts_by_kind() {
        let rates = FaultRates {
            duplicate: 0.2,
            stale_round: 0.1,
            ..FaultRates::none()
        };
        let plan = FaultPlan::new(rates, 11).unwrap();
        let clients: Vec<u64> = (0..10_000).collect();
        let s = plan.schedule(5, &clients);
        assert_eq!(
            s.injected(),
            s.count(FaultKind::DuplicateReport) + s.count(FaultKind::StaleRound)
        );
        assert!(s.count(FaultKind::DuplicateReport) > 1500);
        assert!(s.count(FaultKind::StaleRound) > 700);
        assert_eq!(s.count(FaultKind::CorruptBit), 0);
        assert_eq!(s.round(), 5);
    }
}
