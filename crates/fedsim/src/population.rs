//! Client populations and value elicitation.
//!
//! "For many features of interest, most clients hold several values (e.g.,
//! device parameter readings at different times), while a small subset may
//! hold up to millions of observations... we could choose to elicit a single
//! value from each client by sampling *or* local aggregation" (Section 4.3).
//! The paper aggregates a single value per client and defines ground truth
//! via the same elicitation semantics; both semantics are implemented here
//! so the discrepancy the paper warns about is measurable.

use rand::{Rng, RngExt};

/// One client: an id, a region tag (for eligibility filtering), and one or
/// more private values.
#[derive(Debug, Clone, PartialEq)]
pub struct Client {
    /// Stable client identifier.
    pub id: u64,
    /// Coarse region/eligibility tag.
    pub region: u32,
    /// The client's local observations (never empty).
    pub values: Vec<f64>,
}

impl Client {
    /// Creates a client.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains non-finite entries.
    #[must_use]
    pub fn new(id: u64, region: u32, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "client must hold at least one value");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "client values must be finite"
        );
        Self { id, region, values }
    }

    /// The mean of this client's local values.
    #[must_use]
    pub fn local_mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }
}

/// How a single value is elicited from a multi-value client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElicitStrategy {
    /// Sample one of the client's values uniformly (the paper's deployment
    /// choice: "we define the ground truth for data collection via
    /// sampling").
    #[default]
    Sample,
    /// Locally aggregate: report the client's own mean.
    LocalAggregate,
}

/// A set of clients.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Population {
    clients: Vec<Client>,
}

impl Population {
    /// One single-value client per entry, region 0.
    ///
    /// # Panics
    /// Panics if `values` is empty or non-finite.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "population must be non-empty");
        Self {
            clients: values
                .iter()
                .enumerate()
                .map(|(i, &v)| Client::new(i as u64, 0, vec![v]))
                .collect(),
        }
    }

    /// Builds a population from explicit clients.
    ///
    /// # Panics
    /// Panics if empty.
    #[must_use]
    pub fn new(clients: Vec<Client>) -> Self {
        assert!(!clients.is_empty(), "population must be non-empty");
        Self { clients }
    }

    /// The clients.
    #[must_use]
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// Number of clients.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Always false by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Elicits one value per client.
    #[must_use]
    pub fn elicit(&self, strategy: ElicitStrategy, rng: &mut dyn Rng) -> Vec<f64> {
        self.clients
            .iter()
            .map(|c| match strategy {
                ElicitStrategy::Sample => {
                    if c.values.len() == 1 {
                        c.values[0]
                    } else {
                        c.values[rng.random_range(0..c.values.len())]
                    }
                }
                ElicitStrategy::LocalAggregate => c.local_mean(),
            })
            .collect()
    }

    /// Ground truth under per-client semantics: the mean of per-client
    /// means. This is the expectation of both elicitation strategies.
    #[must_use]
    pub fn per_client_mean(&self) -> f64 {
        self.clients.iter().map(Client::local_mean).sum::<f64>() / self.clients.len() as f64
    }

    /// Ground truth under pooled semantics: the mean over *all* values of
    /// all clients. Differs from [`Self::per_client_mean`] when value counts
    /// correlate with value magnitudes — the discrepancy Section 4.3 calls
    /// out.
    #[must_use]
    pub fn pooled_mean(&self) -> f64 {
        let (sum, count) = self.clients.iter().fold((0.0, 0usize), |(s, c), cl| {
            (s + cl.values.iter().sum::<f64>(), c + cl.values.len())
        });
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_value_population() {
        let p = Population::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(p.len(), 3);
        assert!((p.per_client_mean() - 2.0).abs() < 1e-12);
        assert!((p.pooled_mean() - 2.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            p.elicit(ElicitStrategy::Sample, &mut rng),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn local_aggregate_reports_client_means() {
        let p = Population::new(vec![
            Client::new(0, 0, vec![2.0, 4.0]),
            Client::new(1, 0, vec![10.0]),
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            p.elicit(ElicitStrategy::LocalAggregate, &mut rng),
            vec![3.0, 10.0]
        );
        assert!((p.per_client_mean() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn pooled_vs_per_client_discrepancy() {
        // One heavy client holds many large values: pooled mean is dominated
        // by it, per-client mean is not — the Section 4.3 semantics gap.
        let p = Population::new(vec![
            Client::new(0, 0, vec![1.0]),
            Client::new(1, 0, vec![1.0]),
            Client::new(2, 0, vec![100.0; 98]),
        ]);
        assert!((p.per_client_mean() - 34.0).abs() < 1e-9);
        assert!((p.pooled_mean() - 98.02).abs() < 0.01);
        assert!(p.pooled_mean() > 2.0 * p.per_client_mean());
    }

    #[test]
    fn sampling_is_unbiased_for_per_client_mean() {
        let p = Population::new(vec![
            Client::new(0, 0, vec![0.0, 10.0]),
            Client::new(1, 0, vec![4.0, 6.0]),
        ]);
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let mut total = 0.0;
        for _ in 0..trials {
            let vals = p.elicit(ElicitStrategy::Sample, &mut rng);
            total += vals.iter().sum::<f64>() / vals.len() as f64;
        }
        let avg = total / f64::from(trials as u32);
        assert!((avg - p.per_client_mean()).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn regions_are_preserved() {
        let p = Population::new(vec![
            Client::new(0, 1, vec![1.0]),
            Client::new(1, 2, vec![2.0]),
        ]);
        assert_eq!(p.clients()[0].region, 1);
        assert_eq!(p.clients()[1].region, 2);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn client_rejects_empty_values() {
        let _ = Client::new(0, 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn population_rejects_empty() {
        let _ = Population::new(vec![]);
    }
}
