//! Federated learning with bit-pushed gradients.
//!
//! "Federated learning computes sample means for gradient updates"
//! (Section 1) and "bit-pushing can be used as a subroutine in many
//! applications including federated learning" (Section 3). This module
//! demonstrates exactly that: linear-model training by gradient descent
//! where each step's mean gradient is estimated with bit-pushing — every
//! client disclosing **one bit of one gradient coordinate per step**.
//!
//! Gradient coordinates are signed, so each coordinate uses a spanning
//! (offset-binary) codec over a clip range, per the paper's winsorization
//! guidance; coordinates are handled by the multi-feature apportionment of
//! [`fednum_core::multifeature`].

use fednum_core::encoding::FixedPointCodec;
use fednum_core::multifeature::{FeatureSpec, MultiFeatureBitPushing};
use fednum_core::privacy::RandomizedResponse;
use fednum_core::protocol::basic::BasicConfig;
use fednum_core::sampling::BitSampling;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A linear model `ŷ = w · x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Weights, one per feature.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl LinearModel {
    /// Zero-initialized model of the given dimension.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn zeros(dim: usize) -> Self {
        assert!(dim >= 1, "need at least one feature");
        Self {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }

    /// Prediction for one example.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(x)
            .map(|(w, xi)| w * xi)
            .sum::<f64>()
            + self.bias
    }

    /// Mean-squared error over a dataset.
    ///
    /// # Panics
    /// Panics on empty data.
    #[must_use]
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert!(!xs.is_empty() && xs.len() == ys.len());
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum::<f64>()
            / xs.len() as f64
    }
}

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedLearnConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Training steps (one federated aggregation per step).
    pub steps: u32,
    /// Per-coordinate gradient clip `[-clip, clip]` (winsorization).
    pub gradient_clip: f64,
    /// Bits per gradient coordinate.
    pub bits: u32,
    /// Optional ε-LDP randomized response on each disclosed gradient bit.
    pub privacy: Option<RandomizedResponse>,
}

impl FedLearnConfig {
    /// Reasonable defaults: lr 0.1, 50 steps, clip 8, 12 bits, no privacy.
    #[must_use]
    pub fn new() -> Self {
        Self {
            learning_rate: 0.1,
            steps: 50,
            gradient_clip: 8.0,
            bits: 12,
            privacy: None,
        }
    }

    /// Sets the learning rate.
    ///
    /// # Panics
    /// Panics unless `lr > 0`.
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be > 0");
        self.learning_rate = lr;
        self
    }

    /// Sets the number of steps.
    #[must_use]
    pub fn with_steps(mut self, steps: u32) -> Self {
        self.steps = steps;
        self
    }

    /// Enables per-bit randomized response.
    #[must_use]
    pub fn with_privacy(mut self, rr: RandomizedResponse) -> Self {
        self.privacy = Some(rr);
        self
    }
}

impl Default for FedLearnConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Training trace: loss after each step (on the training data, computed
/// centrally for evaluation only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingTrace {
    /// The trained model.
    pub model: LinearModel,
    /// MSE after each step.
    pub losses: Vec<f64>,
    /// Total gradient bits disclosed per client over the whole run.
    pub bits_per_client: u64,
}

/// Trains a linear regression federatedly: at each step every client
/// computes its local gradient of the squared loss, and the mean gradient
/// (per coordinate, including the bias) is estimated via multi-feature
/// bit-pushing — one bit of one coordinate per client per step.
///
/// # Panics
/// Panics on empty/ragged data or dimension mismatches.
pub fn train_linear(
    xs: &[Vec<f64>],
    ys: &[f64],
    config: &FedLearnConfig,
    rng: &mut dyn Rng,
) -> TrainingTrace {
    assert!(!xs.is_empty() && xs.len() == ys.len(), "need matched data");
    let dim = xs[0].len();
    assert!(
        dim >= 1 && xs.iter().all(|x| x.len() == dim),
        "ragged features"
    );

    let clip = config.gradient_clip;
    let codec = FixedPointCodec::spanning(config.bits, -clip, clip);
    let coord_config = |_: usize| {
        let mut cfg = BasicConfig::new(codec, BitSampling::geometric(config.bits, 1.0));
        if let Some(rr) = &config.privacy {
            cfg = cfg.with_privacy(*rr);
        }
        cfg
    };
    let features: Vec<FeatureSpec> = (0..=dim)
        .map(|c| {
            let name = if c == dim {
                "bias".to_string()
            } else {
                format!("w{c}")
            };
            FeatureSpec::new(name, coord_config(c))
        })
        .collect();
    let aggregator = MultiFeatureBitPushing::new(features);

    let mut model = LinearModel::zeros(dim);
    let mut losses = Vec::with_capacity(config.steps as usize);
    for _ in 0..config.steps {
        // Each client's local gradient of (ŷ - y)²/2: coordinate c is
        // (ŷ - y)·x_c, bias term (ŷ - y); clipped client-side.
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(xs.len()); dim + 1];
        for (x, &y) in xs.iter().zip(ys) {
            let err = model.predict(x) - y;
            for (c, &xc) in x.iter().enumerate() {
                columns[c].push((err * xc).clamp(-clip, clip));
            }
            columns[dim].push(err.clamp(-clip, clip));
        }
        let outcomes = aggregator.run(&columns, rng);
        for (c, outcome) in outcomes.iter().enumerate() {
            let g = outcome.outcome.estimate;
            if c == dim {
                model.bias -= config.learning_rate * g;
            } else {
                model.weights[c] -= config.learning_rate * g;
            }
        }
        losses.push(model.mse(xs, ys));
    }
    TrainingTrace {
        model,
        losses,
        bits_per_client: u64::from(config.steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// y = 2 x0 − 1.5 x1 + 0.5 + noise over n clients.
    fn synthetic(n: usize, noise: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let x1: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let eps: f64 = (rng.random::<f64>() - 0.5) * 2.0 * noise;
            ys.push(2.0 * x0 - 1.5 * x1 + 0.5 + eps);
            xs.push(vec![x0, x1]);
        }
        (xs, ys)
    }

    #[test]
    fn learns_the_true_weights() {
        let (xs, ys) = synthetic(30_000, 0.05, 1);
        let config = FedLearnConfig::new().with_steps(60).with_learning_rate(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let trace = train_linear(&xs, &ys, &config, &mut rng);
        assert!(
            (trace.model.weights[0] - 2.0).abs() < 0.2,
            "w0 {}",
            trace.model.weights[0]
        );
        assert!(
            (trace.model.weights[1] + 1.5).abs() < 0.2,
            "w1 {}",
            trace.model.weights[1]
        );
        assert!(
            (trace.model.bias - 0.5).abs() < 0.2,
            "b {}",
            trace.model.bias
        );
        assert_eq!(trace.bits_per_client, 60);
    }

    #[test]
    fn loss_decreases_monotonically_at_the_start() {
        let (xs, ys) = synthetic(20_000, 0.05, 3);
        let config = FedLearnConfig::new().with_steps(20).with_learning_rate(0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let trace = train_linear(&xs, &ys, &config, &mut rng);
        assert!(
            trace.losses[5] < trace.losses[0],
            "loss should fall: {:?}",
            &trace.losses[..6]
        );
        assert!(trace.losses.last().unwrap() < &0.1);
    }

    #[test]
    fn private_training_still_converges() {
        let (xs, ys) = synthetic(60_000, 0.05, 5);
        let config = FedLearnConfig::new()
            .with_steps(60)
            .with_learning_rate(0.3)
            .with_privacy(RandomizedResponse::from_epsilon(4.0));
        let mut rng = StdRng::seed_from_u64(6);
        let trace = train_linear(&xs, &ys, &config, &mut rng);
        assert!(
            (trace.model.weights[0] - 2.0).abs() < 0.5,
            "w0 {}",
            trace.model.weights[0]
        );
        assert!(*trace.losses.last().unwrap() < trace.losses[0]);
    }

    #[test]
    fn model_basics() {
        let m = LinearModel {
            weights: vec![1.0, -1.0],
            bias: 2.0,
        };
        assert_eq!(m.predict(&[3.0, 1.0]), 4.0);
        let z = LinearModel::zeros(2);
        assert_eq!(z.predict(&[5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_features() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = train_linear(
            &[vec![1.0, 2.0], vec![1.0]],
            &[0.0, 0.0],
            &FedLearnConfig::new(),
            &mut rng,
        );
    }
}
