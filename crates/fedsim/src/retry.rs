//! Recovery policy for degraded federated rounds.
//!
//! Governs how the orchestrator in [`crate::round`] reacts when a round
//! degrades: how long it backs off between refill waves (capped exponential,
//! the standard fleet-friendly schedule), how many times a failed
//! secure-aggregation unmask is retried over the surviving cohort, and the
//! minimum cohort size below which the round aborts instead of aggregating —
//! the "enforce a minimum cohort size for privacy" rule from the paper's
//! deployment discussion, applied to the recovery path.

use crate::error::FedError;

/// Recovery knobs for a federated round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-masked secure-aggregation retries over the surviving cohort after
    /// a `TooFewSurvivors` unmask failure (0 = fail on first unmask error).
    pub max_secagg_retries: u32,
    /// Backoff before the first retry/refill wave, in the latency model's
    /// time units.
    pub base_backoff: f64,
    /// Backoff ceiling.
    pub max_backoff: f64,
    /// Abort (with [`FedError::CohortTooSmall`]) rather than retry over a
    /// surviving cohort smaller than this.
    pub min_cohort: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_secagg_retries: 2,
            base_backoff: 1.0,
            max_backoff: 60.0,
            min_cohort: 1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never backs off — the "naive"
    /// orchestrator baseline in the fault benchmarks.
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_secagg_retries: 0,
            base_backoff: 0.0,
            max_backoff: 0.0,
            min_cohort: 1,
        }
    }

    /// Creates a policy.
    ///
    /// # Errors
    /// [`FedError::InvalidConfig`] unless `0 <= base_backoff <= max_backoff`
    /// (both finite) and `min_cohort >= 1`.
    pub fn new(
        max_secagg_retries: u32,
        base_backoff: f64,
        max_backoff: f64,
        min_cohort: usize,
    ) -> Result<Self, FedError> {
        if !(base_backoff >= 0.0 && base_backoff.is_finite()) {
            return Err(FedError::InvalidConfig(format!(
                "base_backoff must be finite and >= 0, got {base_backoff}"
            )));
        }
        if !(max_backoff >= base_backoff && max_backoff.is_finite()) {
            return Err(FedError::InvalidConfig(format!(
                "max_backoff must be finite and >= base_backoff, got {max_backoff}"
            )));
        }
        if min_cohort == 0 {
            return Err(FedError::InvalidConfig(
                "min_cohort must be at least 1".into(),
            ));
        }
        Ok(Self {
            max_secagg_retries,
            base_backoff,
            max_backoff,
            min_cohort,
        })
    }

    /// The capped exponential backoff before retry `attempt` (0-based):
    /// `min(base · 2^attempt, max)`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> f64 {
        if self.base_backoff == 0.0 {
            return 0.0;
        }
        let factor = 2.0f64.powi(attempt.min(63) as i32);
        (self.base_backoff * factor).min(self.max_backoff)
    }
}

/// When and how a coordinator runs a straggler-salvage session: reports
/// arriving after the collection deadline are parked in a bounded buffer,
/// and once the base estimate is tallied a follow-up session re-opens a
/// collection window, re-validates the parked reports, and merges the
/// salvaged sum into the published estimate with exact-count weighting.
///
/// Salvage is strictly additive: if the policy never fires, or the salvage
/// session fails, the round publishes exactly what today's discard
/// behaviour would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SalvagePolicy {
    /// Don't bother re-opening a window for fewer parked reports than this.
    pub min_parked: usize,
    /// Ceiling on the extra virtual time the salvage window may add to the
    /// round (the follow-up window is clipped to this length).
    pub max_extra_time: f64,
    /// Secure-aggregation attempts over the salvaged cohort before the
    /// session aborts (each attempt re-masks under a fresh instance seed,
    /// with the round's capped-exponential backoff between attempts).
    pub max_attempts: u32,
    /// Bound on the salvage buffer: late frames beyond this are dropped
    /// exactly as the discard path would drop them.
    pub buffer_cap: usize,
}

impl Default for SalvagePolicy {
    fn default() -> Self {
        Self {
            min_parked: 1,
            max_extra_time: 30.0,
            max_attempts: 2,
            buffer_cap: 4096,
        }
    }
}

impl SalvagePolicy {
    /// Creates a policy.
    ///
    /// # Errors
    /// [`FedError::InvalidConfig`] unless `max_extra_time` is finite and
    /// positive, `min_parked >= 1`, and `buffer_cap >= min_parked`.
    pub fn new(
        min_parked: usize,
        max_extra_time: f64,
        max_attempts: u32,
        buffer_cap: usize,
    ) -> Result<Self, FedError> {
        if min_parked == 0 {
            return Err(FedError::InvalidConfig(
                "salvage min_parked must be at least 1".into(),
            ));
        }
        if !(max_extra_time > 0.0 && max_extra_time.is_finite()) {
            return Err(FedError::InvalidConfig(format!(
                "salvage max_extra_time must be finite and positive, got {max_extra_time}"
            )));
        }
        if buffer_cap < min_parked {
            return Err(FedError::InvalidConfig(format!(
                "salvage buffer_cap {buffer_cap} below min_parked {min_parked}"
            )));
        }
        Ok(Self {
            min_parked,
            max_extra_time,
            max_attempts,
            buffer_cap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::new(3, 2.0, 10.0, 1).unwrap();
        assert_eq!(p.backoff(0), 2.0);
        assert_eq!(p.backoff(1), 4.0);
        assert_eq!(p.backoff(2), 8.0);
        assert_eq!(p.backoff(3), 10.0);
        assert_eq!(p.backoff(30), 10.0);
        assert_eq!(p.backoff(1000), 10.0, "huge attempts must not overflow");
    }

    #[test]
    fn none_policy_is_free() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_secagg_retries, 0);
        assert_eq!(p.backoff(0), 0.0);
        assert_eq!(p.backoff(5), 0.0);
    }

    #[test]
    fn invalid_policies_rejected() {
        assert!(RetryPolicy::new(1, -1.0, 10.0, 1).is_err());
        assert!(RetryPolicy::new(1, 5.0, 2.0, 1).is_err());
        assert!(RetryPolicy::new(1, 0.0, f64::INFINITY, 1).is_err());
        assert!(RetryPolicy::new(1, 0.0, 0.0, 0).is_err());
        assert!(RetryPolicy::new(0, 0.0, 0.0, 1).is_ok());
    }

    #[test]
    fn salvage_policy_validation() {
        assert!(SalvagePolicy::new(0, 1.0, 1, 16).is_err());
        assert!(SalvagePolicy::new(1, 0.0, 1, 16).is_err());
        assert!(SalvagePolicy::new(1, f64::INFINITY, 1, 16).is_err());
        assert!(SalvagePolicy::new(8, 1.0, 1, 4).is_err());
        assert!(SalvagePolicy::new(1, 1.0, 0, 1).is_ok());
        let d = SalvagePolicy::default();
        let rebuilt =
            SalvagePolicy::new(d.min_parked, d.max_extra_time, d.max_attempts, d.buffer_cap)
                .unwrap();
        assert_eq!(d, rebuilt);
    }

    #[test]
    fn default_is_valid() {
        let d = RetryPolicy::default();
        let rebuilt = RetryPolicy::new(
            d.max_secagg_retries,
            d.base_backoff,
            d.max_backoff,
            d.min_cohort,
        )
        .unwrap();
        assert_eq!(d, rebuilt);
    }
}
