//! Server-side report validation.
//!
//! Central randomness only blunts poisoning if the server *enforces* it
//! (Section 3.1 / the conclusions' robustness discussion): a client must
//! report on the bit it was assigned, exactly once. This module is the
//! enforcement layer: it checks incoming reports against the assignment,
//! rejects duplicates, unknown clients, and bit-index mismatches, and
//! surfaces per-client violation counts so repeat offenders can be excluded
//! from future cohorts.

use std::collections::HashMap;

use fednum_core::accumulator::BitAccumulator;

/// Why a report was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Violation {
    /// The client is not part of this round's cohort.
    UnknownClient,
    /// The client already reported this round.
    DuplicateReport,
    /// The report's bit index differs from the assigned one — the classic
    /// "pick the top bit" poisoning move.
    WrongBit,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnknownClient => write!(f, "client not in cohort"),
            Violation::DuplicateReport => write!(f, "duplicate report"),
            Violation::WrongBit => write!(f, "reported bit differs from assignment"),
        }
    }
}

/// Validates reports against a round's central assignment and accumulates
/// the accepted ones.
#[derive(Debug, Clone)]
pub struct ReportValidator {
    assignment: HashMap<u64, u32>,
    reported: HashMap<u64, bool>,
    violations: HashMap<u64, Vec<Violation>>,
    accumulator: BitAccumulator,
}

impl ReportValidator {
    /// Creates a validator for a round: `assignment[i] = (client id, bit)`.
    ///
    /// # Panics
    /// Panics if `bits` is out of range, a client is assigned twice, or an
    /// assigned bit exceeds the depth.
    #[must_use]
    pub fn new(bits: u32, assignment: &[(u64, u32)]) -> Self {
        let mut map = HashMap::with_capacity(assignment.len());
        for &(client, bit) in assignment {
            assert!(bit < bits, "assigned bit {bit} exceeds depth {bits}");
            assert!(
                map.insert(client, bit).is_none(),
                "client {client} assigned twice"
            );
        }
        Self {
            assignment: map,
            reported: HashMap::new(),
            violations: HashMap::new(),
            accumulator: BitAccumulator::new(bits),
        }
    }

    /// Submits one report; accepted reports are accumulated, rejected ones
    /// recorded against the client.
    ///
    /// `debiased_value` is the (possibly randomized-response-debiased) bit
    /// contribution.
    ///
    /// # Errors
    /// The violation, when rejected.
    pub fn submit(&mut self, client: u64, bit: u32, debiased_value: f64) -> Result<(), Violation> {
        let Some(&assigned) = self.assignment.get(&client) else {
            self.violations
                .entry(client)
                .or_default()
                .push(Violation::UnknownClient);
            return Err(Violation::UnknownClient);
        };
        if self.reported.get(&client).copied().unwrap_or(false) {
            self.violations
                .entry(client)
                .or_default()
                .push(Violation::DuplicateReport);
            return Err(Violation::DuplicateReport);
        }
        if bit != assigned {
            self.violations
                .entry(client)
                .or_default()
                .push(Violation::WrongBit);
            return Err(Violation::WrongBit);
        }
        self.reported.insert(client, true);
        self.accumulator.record(bit, debiased_value);
        Ok(())
    }

    /// The accumulated (validated) histogram.
    #[must_use]
    pub fn accumulator(&self) -> &BitAccumulator {
        &self.accumulator
    }

    /// Accepted report count.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accumulator.total_reports()
    }

    /// Total rejected submissions.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.violations.values().map(Vec::len).sum()
    }

    /// Clients with at least one violation, with their violation lists —
    /// the input to cohort-exclusion policy.
    #[must_use]
    pub fn offenders(&self) -> &HashMap<u64, Vec<Violation>> {
        &self.violations
    }

    /// Assigned clients that never (validly) reported — the dropout set the
    /// auto-adjustment logic refills.
    #[must_use]
    pub fn missing(&self) -> Vec<u64> {
        let mut missing: Vec<u64> = self
            .assignment
            .keys()
            .filter(|c| !self.reported.get(c).copied().unwrap_or(false))
            .copied()
            .collect();
        missing.sort_unstable();
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validator() -> ReportValidator {
        ReportValidator::new(8, &[(10, 0), (11, 3), (12, 7)])
    }

    #[test]
    fn valid_reports_accumulate() {
        let mut v = validator();
        v.submit(10, 0, 1.0).unwrap();
        v.submit(11, 3, 0.0).unwrap();
        assert_eq!(v.accepted(), 2);
        assert_eq!(v.rejected(), 0);
        assert_eq!(v.accumulator().counts()[0], 1);
        assert_eq!(v.accumulator().counts()[3], 1);
        assert_eq!(v.missing(), vec![12]);
    }

    #[test]
    fn wrong_bit_rejected_and_logged() {
        let mut v = validator();
        // Poisoner assigned bit 0 asserts the MSB instead.
        assert_eq!(v.submit(10, 7, 1.0), Err(Violation::WrongBit));
        assert_eq!(v.accepted(), 0);
        assert_eq!(v.offenders()[&10], vec![Violation::WrongBit]);
        // The client may still submit correctly afterwards.
        v.submit(10, 0, 1.0).unwrap();
        assert_eq!(v.accepted(), 1);
    }

    #[test]
    fn duplicates_rejected() {
        let mut v = validator();
        v.submit(11, 3, 1.0).unwrap();
        assert_eq!(v.submit(11, 3, 1.0), Err(Violation::DuplicateReport));
        assert_eq!(v.accepted(), 1);
        assert_eq!(v.rejected(), 1);
    }

    #[test]
    fn unknown_clients_rejected() {
        let mut v = validator();
        assert_eq!(v.submit(99, 0, 1.0), Err(Violation::UnknownClient));
        assert!(v.offenders().contains_key(&99));
    }

    #[test]
    fn poisoning_is_neutralized_end_to_end() {
        // 1000 honest clients with bit means 0.5 everywhere, 50 poisoners
        // who try to force the MSB: every poisoned report bounces, so the
        // estimate is unaffected (compare ablate-qmc, where unenforced local
        // choice lets the same attack through).
        let bits = 8u32;
        let assignment: Vec<(u64, u32)> = (0..1050u64).map(|c| (c, (c % 8) as u32)).collect();
        let mut v = ReportValidator::new(bits, &assignment);
        for &(client, bit) in &assignment {
            if client < 50 {
                // Poisoner: claims the MSB with value 1.
                let _ = v.submit(client, bits - 1, 1.0);
            } else {
                // Honest value decorrelated from the assigned bit index.
                let _ = v.submit(client, bit, f64::from(u8::from((client / 8) % 2 == 0)));
            }
        }
        assert_eq!(
            v.rejected(),
            44,
            "only poisoners not assigned the MSB bounce"
        );
        // Accepted = honest 1000 + poisoners that were legitimately
        // assigned the MSB (their report is then indistinguishable).
        assert_eq!(v.accepted(), 1006);
        let means = v.accumulator().bit_means();
        for (j, &m) in means.iter().enumerate().take(7) {
            assert!((m - 0.5).abs() < 0.1, "bit {j} mean {m} is unpoisoned");
        }
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_rejected() {
        let _ = ReportValidator::new(4, &[(1, 0), (1, 1)]);
    }
}
