//! Server-side report validation.
//!
//! Central randomness only blunts poisoning if the server *enforces* it
//! (Section 3.1 / the conclusions' robustness discussion): a client must
//! report on the bit it was assigned, exactly once, in the round it was
//! assigned it. This module is the enforcement layer: it checks incoming
//! reports against the assignment, rejects duplicates, replays, stale-round
//! submissions, unknown clients, and bit-index mismatches, and surfaces
//! per-client violation lists plus per-class rejection counts so repeat
//! offenders can be excluded from future cohorts and round outcomes can
//! report how degraded their input stream was.

use std::collections::{HashMap, HashSet};

use fednum_core::accumulator::BitAccumulator;

/// Why a report was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Violation {
    /// The client is not part of this round's cohort.
    UnknownClient,
    /// The client already reported this round.
    DuplicateReport,
    /// The report's bit index differs from the assigned one — the classic
    /// "pick the top bit" poisoning move.
    WrongBit,
    /// The report's nonce was already consumed — a replay of a previously
    /// observed report.
    ReplayedReport,
    /// The report carries a different round's identifier.
    StaleRound,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnknownClient => write!(f, "client not in cohort"),
            Violation::DuplicateReport => write!(f, "duplicate report"),
            Violation::WrongBit => write!(f, "reported bit differs from assignment"),
            Violation::ReplayedReport => write!(f, "replayed report (nonce already seen)"),
            Violation::StaleRound => write!(f, "report from a different round"),
        }
    }
}

/// Per-class rejection tally for one round, surfaced in round outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectionCounts {
    /// Reports from clients outside the cohort.
    pub unknown_client: u64,
    /// Second (and later) deliveries of an already-accepted report.
    pub duplicate: u64,
    /// Reports on a bit other than the assigned one.
    pub wrong_bit: u64,
    /// Replays of previously observed reports.
    pub replayed: u64,
    /// Reports carrying a stale round identifier.
    pub stale_round: u64,
    /// Reports discarded for arriving after the wave deadline (recorded by
    /// the orchestrator, not the validator).
    pub straggler: u64,
}

impl RejectionCounts {
    /// Total rejected submissions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.unknown_client
            + self.duplicate
            + self.wrong_bit
            + self.replayed
            + self.stale_round
            + self.straggler
    }

    /// Folds another tally into this one (e.g. per-wave validator tallies
    /// into the round total).
    pub fn absorb(&mut self, other: &RejectionCounts) {
        self.unknown_client += other.unknown_client;
        self.duplicate += other.duplicate;
        self.wrong_bit += other.wrong_bit;
        self.replayed += other.replayed;
        self.stale_round += other.stale_round;
        self.straggler += other.straggler;
    }

    /// Tallies one violation.
    pub fn record(&mut self, violation: Violation) {
        match violation {
            Violation::UnknownClient => self.unknown_client += 1,
            Violation::DuplicateReport => self.duplicate += 1,
            Violation::WrongBit => self.wrong_bit += 1,
            Violation::ReplayedReport => self.replayed += 1,
            Violation::StaleRound => self.stale_round += 1,
        }
    }
}

/// Validates reports against a round's central assignment and accumulates
/// the accepted ones.
#[derive(Debug, Clone)]
pub struct ReportValidator {
    assignment: HashMap<u64, u32>,
    reported: HashMap<u64, bool>,
    violations: HashMap<u64, Vec<Violation>>,
    accumulator: BitAccumulator,
    round: u64,
    seen_nonces: HashSet<u64>,
    counts: RejectionCounts,
    next_nonce: u64,
}

impl ReportValidator {
    /// Creates a validator for round 0: `assignment[i] = (client id, bit)`.
    ///
    /// # Panics
    /// Panics if `bits` is out of range, a client is assigned twice, or an
    /// assigned bit exceeds the depth.
    #[must_use]
    pub fn new(bits: u32, assignment: &[(u64, u32)]) -> Self {
        Self::for_round(bits, assignment, 0)
    }

    /// Creates a validator bound to a specific round identifier; tagged
    /// submissions from any other round are rejected as stale.
    ///
    /// # Panics
    /// Panics if `bits` is out of range, a client is assigned twice, or an
    /// assigned bit exceeds the depth.
    #[must_use]
    pub fn for_round(bits: u32, assignment: &[(u64, u32)], round: u64) -> Self {
        let mut map = HashMap::with_capacity(assignment.len());
        for &(client, bit) in assignment {
            assert!(bit < bits, "assigned bit {bit} exceeds depth {bits}");
            assert!(
                map.insert(client, bit).is_none(),
                "client {client} assigned twice"
            );
        }
        Self {
            assignment: map,
            reported: HashMap::new(),
            violations: HashMap::new(),
            accumulator: BitAccumulator::new(bits),
            round,
            seen_nonces: HashSet::new(),
            counts: RejectionCounts::default(),
            next_nonce: 0,
        }
    }

    /// Submits one report over a trusted transport (current round, fresh
    /// nonce); accepted reports are accumulated, rejected ones recorded
    /// against the client.
    ///
    /// `debiased_value` is the (possibly randomized-response-debiased) bit
    /// contribution.
    ///
    /// # Errors
    /// The violation, when rejected.
    pub fn submit(&mut self, client: u64, bit: u32, debiased_value: f64) -> Result<(), Violation> {
        self.next_nonce += 1;
        // Fresh nonces live in a namespace tagged submissions cannot collide
        // with deliberately (the orchestrator derives theirs from client ids).
        let nonce = u64::MAX - self.next_nonce;
        self.submit_tagged(client, bit, debiased_value, self.round, nonce)
    }

    /// Submits one report as received off an untrusted transport, carrying
    /// the round identifier and a per-report nonce. Reports from a different
    /// round are rejected as [`Violation::StaleRound`]; reports whose nonce
    /// was already consumed are rejected as [`Violation::ReplayedReport`].
    ///
    /// # Errors
    /// The violation, when rejected.
    pub fn submit_tagged(
        &mut self,
        client: u64,
        bit: u32,
        debiased_value: f64,
        round: u64,
        nonce: u64,
    ) -> Result<(), Violation> {
        if round != self.round {
            return Err(self.reject(client, Violation::StaleRound));
        }
        if self.seen_nonces.contains(&nonce) {
            return Err(self.reject(client, Violation::ReplayedReport));
        }
        if !self.assignment.contains_key(&client) {
            return Err(self.reject(client, Violation::UnknownClient));
        }
        let assigned = self.assignment[&client];
        if self.reported.get(&client).copied().unwrap_or(false) {
            return Err(self.reject(client, Violation::DuplicateReport));
        }
        if bit != assigned {
            return Err(self.reject(client, Violation::WrongBit));
        }
        self.seen_nonces.insert(nonce);
        self.reported.insert(client, true);
        self.accumulator.record(bit, debiased_value);
        Ok(())
    }

    fn reject(&mut self, client: u64, violation: Violation) -> Violation {
        self.violations.entry(client).or_default().push(violation);
        self.counts.record(violation);
        violation
    }

    /// The accumulated (validated) histogram.
    #[must_use]
    pub fn accumulator(&self) -> &BitAccumulator {
        &self.accumulator
    }

    /// Accepted report count.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accumulator.total_reports()
    }

    /// Total rejected submissions.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.violations.values().map(Vec::len).sum()
    }

    /// Per-class rejection tally (the `straggler` class is orchestrator-side
    /// and stays zero here).
    #[must_use]
    pub fn rejection_counts(&self) -> RejectionCounts {
        self.counts
    }

    /// The round identifier tagged submissions are checked against.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Clients with at least one violation, with their violation lists —
    /// the input to cohort-exclusion policy.
    #[must_use]
    pub fn offenders(&self) -> &HashMap<u64, Vec<Violation>> {
        &self.violations
    }

    /// Assigned clients that never (validly) reported — the dropout set the
    /// auto-adjustment logic refills.
    #[must_use]
    pub fn missing(&self) -> Vec<u64> {
        let mut missing: Vec<u64> = self
            .assignment
            .keys()
            .filter(|c| !self.reported.get(c).copied().unwrap_or(false))
            .copied()
            .collect();
        missing.sort_unstable();
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validator() -> ReportValidator {
        ReportValidator::new(8, &[(10, 0), (11, 3), (12, 7)])
    }

    #[test]
    fn valid_reports_accumulate() {
        let mut v = validator();
        v.submit(10, 0, 1.0).unwrap();
        v.submit(11, 3, 0.0).unwrap();
        assert_eq!(v.accepted(), 2);
        assert_eq!(v.rejected(), 0);
        assert_eq!(v.accumulator().counts()[0], 1);
        assert_eq!(v.accumulator().counts()[3], 1);
        assert_eq!(v.missing(), vec![12]);
    }

    #[test]
    fn wrong_bit_rejected_and_logged() {
        let mut v = validator();
        // Poisoner assigned bit 0 asserts the MSB instead.
        assert_eq!(v.submit(10, 7, 1.0), Err(Violation::WrongBit));
        assert_eq!(v.accepted(), 0);
        assert_eq!(v.offenders()[&10], vec![Violation::WrongBit]);
        // The client may still submit correctly afterwards.
        v.submit(10, 0, 1.0).unwrap();
        assert_eq!(v.accepted(), 1);
    }

    #[test]
    fn duplicates_rejected() {
        let mut v = validator();
        v.submit(11, 3, 1.0).unwrap();
        assert_eq!(v.submit(11, 3, 1.0), Err(Violation::DuplicateReport));
        assert_eq!(v.accepted(), 1);
        assert_eq!(v.rejected(), 1);
    }

    #[test]
    fn unknown_clients_rejected() {
        let mut v = validator();
        assert_eq!(v.submit(99, 0, 1.0), Err(Violation::UnknownClient));
        assert!(v.offenders().contains_key(&99));
    }

    #[test]
    fn poisoning_is_neutralized_end_to_end() {
        // 1000 honest clients with bit means 0.5 everywhere, 50 poisoners
        // who try to force the MSB: every poisoned report bounces, so the
        // estimate is unaffected (compare ablate-qmc, where unenforced local
        // choice lets the same attack through).
        let bits = 8u32;
        let assignment: Vec<(u64, u32)> = (0..1050u64).map(|c| (c, (c % 8) as u32)).collect();
        let mut v = ReportValidator::new(bits, &assignment);
        for &(client, bit) in &assignment {
            if client < 50 {
                // Poisoner: claims the MSB with value 1.
                let _ = v.submit(client, bits - 1, 1.0);
            } else {
                // Honest value decorrelated from the assigned bit index.
                let _ = v.submit(client, bit, f64::from(u8::from((client / 8) % 2 == 0)));
            }
        }
        assert_eq!(
            v.rejected(),
            44,
            "only poisoners not assigned the MSB bounce"
        );
        // Accepted = honest 1000 + poisoners that were legitimately
        // assigned the MSB (their report is then indistinguishable).
        assert_eq!(v.accepted(), 1006);
        let means = v.accumulator().bit_means();
        for (j, &m) in means.iter().enumerate().take(7) {
            assert!((m - 0.5).abs() < 0.1, "bit {j} mean {m} is unpoisoned");
        }
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_rejected() {
        let _ = ReportValidator::new(4, &[(1, 0), (1, 1)]);
    }

    #[test]
    fn stale_round_reports_rejected() {
        let mut v = ReportValidator::for_round(8, &[(10, 0), (11, 3)], 7);
        assert_eq!(v.round(), 7);
        assert_eq!(
            v.submit_tagged(10, 0, 1.0, 6, 100),
            Err(Violation::StaleRound)
        );
        assert_eq!(
            v.submit_tagged(10, 0, 1.0, 8, 101),
            Err(Violation::StaleRound)
        );
        // The same client can still deliver its current-round report.
        v.submit_tagged(10, 0, 1.0, 7, 102).unwrap();
        assert_eq!(v.accepted(), 1);
        let counts = v.rejection_counts();
        assert_eq!(counts.stale_round, 2);
        assert_eq!(counts.total(), 2);
    }

    #[test]
    fn replayed_nonces_rejected() {
        let mut v = ReportValidator::for_round(8, &[(10, 0), (11, 3)], 0);
        v.submit_tagged(10, 0, 1.0, 0, 500).unwrap();
        // Replay of client 10's report, resubmitted verbatim (even under a
        // different client id the nonce gives it away).
        assert_eq!(
            v.submit_tagged(10, 0, 1.0, 0, 500),
            Err(Violation::ReplayedReport)
        );
        assert_eq!(
            v.submit_tagged(11, 3, 1.0, 0, 500),
            Err(Violation::ReplayedReport)
        );
        v.submit_tagged(11, 3, 0.0, 0, 501).unwrap();
        assert_eq!(v.accepted(), 2);
        assert_eq!(v.rejection_counts().replayed, 2);
    }

    #[test]
    fn per_class_counts_are_disjoint() {
        let mut v = ReportValidator::for_round(8, &[(10, 0), (11, 3)], 1);
        let _ = v.submit_tagged(10, 0, 1.0, 0, 1); // stale
        let _ = v.submit_tagged(99, 0, 1.0, 1, 2); // unknown client
        v.submit_tagged(10, 0, 1.0, 1, 3).unwrap();
        let _ = v.submit_tagged(10, 0, 1.0, 1, 4); // duplicate (fresh nonce)
        let _ = v.submit_tagged(11, 7, 1.0, 1, 5); // wrong bit
        let _ = v.submit_tagged(11, 3, 1.0, 1, 3); // replayed nonce
        let counts = v.rejection_counts();
        assert_eq!(counts.stale_round, 1);
        assert_eq!(counts.unknown_client, 1);
        assert_eq!(counts.duplicate, 1);
        assert_eq!(counts.wrong_bit, 1);
        assert_eq!(counts.replayed, 1);
        assert_eq!(counts.straggler, 0);
        assert_eq!(counts.total(), 5);
        assert_eq!(v.rejected(), 5);
        assert_eq!(v.accepted(), 1);
    }

    #[test]
    fn untagged_submissions_never_trip_the_new_classes() {
        let mut v = validator();
        v.submit(10, 0, 1.0).unwrap();
        v.submit(11, 3, 0.0).unwrap();
        v.submit(12, 7, 1.0).unwrap();
        let counts = v.rejection_counts();
        assert_eq!(counts.total(), 0);
        assert_eq!(v.accepted(), 3);
    }
}
