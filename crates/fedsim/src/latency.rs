//! Round latency modeling.
//!
//! "The typical time to complete a round on our FA stack is a matter of
//! minutes, so even adaptive bit-pushing which performs two rounds of data
//! collection is fast" (Section 4.3). Client response times are modeled as
//! log-normal (heavy right tail, as observed on real device fleets) with a
//! hard timeout; a round completes when a quorum fraction of contacted
//! clients has responded.

use rand::{Rng, RngExt};

/// Log-normal client latency with timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Location of the underlying normal (log-minutes).
    pub mu: f64,
    /// Scale of the underlying normal.
    pub sigma: f64,
    /// Clients slower than this never respond (same units as `exp(mu)`).
    pub timeout: f64,
}

/// Timing outcome of one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTiming {
    /// Time at which the quorum was reached (or the timeout, if it never
    /// was).
    pub completion_time: f64,
    /// Per-contacted-client response flag (false = timed out).
    pub responded: Vec<bool>,
}

impl RoundTiming {
    /// Number of clients that responded in time.
    #[must_use]
    pub fn responders(&self) -> usize {
        self.responded.iter().filter(|&&r| r).count()
    }
}

impl LatencyModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics unless `sigma >= 0` and `timeout > 0`.
    #[must_use]
    pub fn new(mu: f64, sigma: f64, timeout: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite());
        assert!(timeout > 0.0 && timeout.is_finite());
        Self { mu, sigma, timeout }
    }

    /// A fleet profile loosely matching the paper's "matter of minutes":
    /// median ≈ 2 minutes, heavy tail, 30-minute timeout.
    #[must_use]
    pub fn typical_fleet() -> Self {
        Self::new(2.0f64.ln(), 0.8, 30.0)
    }

    /// Samples one client's response latency (before the timeout cut).
    pub fn sample_latency(&self, rng: &mut dyn Rng) -> f64 {
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// Simulates one round over `n` contacted clients: the round completes
    /// when `quorum_fraction` of them have responded, or at the timeout.
    ///
    /// # Panics
    /// Panics unless `n > 0` and `0 < quorum_fraction <= 1`.
    pub fn simulate_round(&self, n: usize, quorum_fraction: f64, rng: &mut dyn Rng) -> RoundTiming {
        assert!(n > 0, "need at least one client");
        assert!(
            quorum_fraction > 0.0 && quorum_fraction <= 1.0,
            "quorum_fraction in (0, 1]"
        );
        let latencies: Vec<f64> = (0..n).map(|_| self.sample_latency(rng)).collect();
        let responded: Vec<bool> = latencies.iter().map(|&l| l <= self.timeout).collect();
        let mut in_time: Vec<f64> = latencies
            .iter()
            .copied()
            .filter(|&l| l <= self.timeout)
            .collect();
        in_time.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let quorum = ((quorum_fraction * n as f64).ceil() as usize).max(1);
        let completion_time = if in_time.len() >= quorum {
            in_time[quorum - 1]
        } else {
            self.timeout
        };
        RoundTiming {
            completion_time,
            responded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn latencies_are_positive_with_lognormal_median() {
        let m = LatencyModel::new(2.0f64.ln(), 0.5, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| m.sample_latency(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[n / 2];
        assert!((median / 2.0 - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn round_completes_at_quorum_quantile() {
        let m = LatencyModel::new(0.0, 0.5, 1e9);
        let mut rng = StdRng::seed_from_u64(2);
        let t50 = m.simulate_round(10_000, 0.5, &mut rng).completion_time;
        let t90 = m.simulate_round(10_000, 0.9, &mut rng).completion_time;
        assert!(t90 > t50, "p90 {t90} must exceed p50 {t50}");
        // Median of lognormal(0, .5) is 1.
        assert!((t50 - 1.0).abs() < 0.1, "t50 {t50}");
    }

    #[test]
    fn timeout_caps_completion() {
        let m = LatencyModel::new(5.0, 0.1, 10.0); // median e^5 ≈ 148 ≫ timeout
        let mut rng = StdRng::seed_from_u64(3);
        let timing = m.simulate_round(100, 0.5, &mut rng);
        assert_eq!(timing.completion_time, 10.0);
        assert!(timing.responders() < 10);
    }

    #[test]
    fn responders_counted() {
        let m = LatencyModel::new(0.0, 0.1, 100.0);
        let mut rng = StdRng::seed_from_u64(4);
        let timing = m.simulate_round(500, 0.9, &mut rng);
        assert_eq!(timing.responders(), 500); // nothing near the timeout
        assert_eq!(timing.responded.len(), 500);
    }

    #[test]
    fn two_rounds_cost_roughly_double() {
        // The latency consideration behind "even adaptive bit-pushing which
        // performs two rounds... is fast": wall time scales with rounds.
        let m = LatencyModel::typical_fleet();
        let mut rng = StdRng::seed_from_u64(5);
        let one: f64 = m.simulate_round(5_000, 0.8, &mut rng).completion_time;
        let two: f64 = (0..2)
            .map(|_| m.simulate_round(5_000, 0.8, &mut rng).completion_time)
            .sum();
        assert!(two > 1.5 * one && two < 3.0 * one, "one {one} two {two}");
    }

    #[test]
    #[should_panic(expected = "quorum_fraction")]
    fn rejects_zero_quorum() {
        let m = LatencyModel::typical_fleet();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = m.simulate_round(10, 0.0, &mut rng);
    }
}
