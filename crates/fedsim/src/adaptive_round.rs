//! Two-round adaptive bit-pushing through the federated environment.
//!
//! The deployment runs Algorithm 2 over real fleets: round 1 on a δ cohort
//! (with dropout and transport), re-optimized weights, round 2 on the rest,
//! pooled estimation. This module wires `fednum-core`'s adaptive logic
//! through the same environment model as [`crate::round`], so the Section
//! 4.3 observations ("when many high-order bits do not contain information
//! of value, the adaptive approach reduces the observed error by significant
//! factors") hold under dropout and secure aggregation too.

use fednum_core::accumulator::BitAccumulator;
use fednum_core::protocol::basic::{BasicBitPushing, BasicConfig};
use fednum_core::sampling::BitSampling;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::round::{run_round_impl, FederatedMeanConfig, FederatedOutcome, RoundError};

/// Configuration for a federated adaptive task: the environment settings of
/// [`FederatedMeanConfig`] plus the Algorithm 2 parameters.
#[derive(Debug, Clone)]
pub struct FederatedAdaptiveConfig {
    /// Environment template (dropout, waves, secagg, latency). Its
    /// `protocol.sampling` is ignored — rounds use γ / re-optimized weights.
    pub environment: FederatedMeanConfig,
    /// Round-1 geometric exponent γ (default 0.5).
    pub gamma: f64,
    /// Round-2 weight exponent α (default 0.5).
    pub alpha: f64,
    /// Round-1 cohort fraction δ (default 1/3).
    pub delta: f64,
}

impl FederatedAdaptiveConfig {
    /// Paper defaults over the given environment.
    #[must_use]
    pub fn new(environment: FederatedMeanConfig) -> Self {
        Self {
            environment,
            gamma: 0.5,
            alpha: 0.5,
            delta: 1.0 / 3.0,
        }
    }

    /// Sets α.
    ///
    /// # Panics
    /// Panics unless `alpha > 0`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be > 0");
        self.alpha = alpha;
        self
    }

    /// Sets δ.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        self.delta = delta;
        self
    }
}

/// Result of a federated adaptive task.
#[derive(Debug, Clone)]
pub struct FederatedAdaptiveOutcome {
    /// Final pooled estimate in the value domain.
    pub estimate: f64,
    /// Round-1 environment outcome.
    pub round1: FederatedOutcome,
    /// Round-2 environment outcome.
    pub round2: FederatedOutcome,
    /// The re-optimized round-2 sampling distribution.
    pub round2_sampling: BitSampling,
    /// Total wall-clock across both rounds.
    pub completion_time: f64,
}

/// The synchronous two-round engine behind the `RoundBuilder` facade: two
/// federated rounds with weight re-optimization in between. Not part of the
/// public API surface — call it through
/// `fednum::transport::RoundBuilder::new(config).adaptive()`.
///
/// # Errors
/// [`RoundError::PopulationTooSmall`] unless there are at least two clients;
/// otherwise propagates the error of either round.
#[doc(hidden)]
pub fn run_adaptive_impl(
    values: &[f64],
    config: &FederatedAdaptiveConfig,
    rng: &mut dyn Rng,
) -> Result<FederatedAdaptiveOutcome, RoundError> {
    if values.len() < 2 {
        return Err(RoundError::PopulationTooSmall {
            got: values.len(),
            need: 2,
        });
    }
    let base = &config.environment.protocol;
    let bits = base.codec.bits();

    // δ / (1-δ) split.
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.shuffle(rng);
    let n1 = ((config.delta * values.len() as f64).round() as usize).clamp(1, values.len() - 1);
    let cohort1: Vec<f64> = order[..n1].iter().map(|&i| values[i]).collect();
    let cohort2: Vec<f64> = order[n1..].iter().map(|&i| values[i]).collect();

    let make_env = |protocol: BasicConfig| {
        let mut env = config.environment.clone();
        env.protocol = protocol;
        env
    };

    // Round 1: geometric(γ).
    let round1_protocol = rebuild(base, BitSampling::geometric(bits, config.gamma));
    let round1 = run_round_impl(&cohort1, &make_env(round1_protocol), None, rng)?;

    // Re-optimize from round-1 bit means (already squashed by the protocol
    // if configured); fall back to round-1 weights for degenerate signals.
    let sampling2 = BitSampling::adaptive_weights(&round1.outcome.bit_means, config.alpha)
        .unwrap_or_else(|| BitSampling::geometric(bits, config.gamma));

    // Round 2 on the remaining clients.
    let round2_protocol = rebuild(base, sampling2.clone());
    let round2 = run_round_impl(&cohort2, &make_env(round2_protocol), None, rng)?;

    // Pool both rounds' histograms ("caching"), using round-1 means as the
    // prior for bits round 2 deliberately stopped sampling.
    let mut pooled = round1.outcome.accumulator.clone();
    pooled.merge(&round2.outcome.accumulator);
    let means = pooled.bit_means_with_prior(&round1.outcome.bit_means);
    let means = match &base.squash {
        Some(sq) => sq.apply(&means, pooled.counts(), base.privacy.as_ref()),
        None => means,
    };
    let estimate = base
        .codec
        .decode_float(BitAccumulator::estimate_from_means(&means));

    let completion_time = round1.completion_time + round2.completion_time;
    Ok(FederatedAdaptiveOutcome {
        estimate,
        round1,
        round2,
        round2_sampling: sampling2,
        completion_time,
    })
}

/// Rebuilds a protocol config with a different sampling distribution,
/// preserving codec / privacy / squash / assignment.
fn rebuild(base: &BasicConfig, sampling: BitSampling) -> BasicConfig {
    let mut cfg = BasicConfig::new(base.codec, sampling).with_assignment(base.assignment);
    if let Some(rr) = &base.privacy {
        cfg = cfg.with_privacy(*rr);
    }
    if let Some(sq) = &base.squash {
        cfg = cfg.with_squash(*sq);
    }
    // The basic protocol's one-bit default is kept: b_send stays 1 in the
    // federated path (each client participates in exactly one round).
    let _ = BasicBitPushing::new(cfg.clone()); // validates the combination
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dropout::DropoutModel;
    use crate::latency::LatencyModel;
    use fednum_core::encoding::FixedPointCodec;
    use fednum_core::privacy::RandomizedResponse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env(bits: u32) -> FederatedMeanConfig {
        FederatedMeanConfig::new(BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, 0.5),
        ))
    }

    fn values(n: usize, hi: u64) -> Vec<f64> {
        (0..n).map(|i| (i as u64 % hi) as f64).collect()
    }

    #[test]
    fn adaptive_round_estimates_mean() {
        let vs = values(20_000, 200);
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let cfg = FederatedAdaptiveConfig::new(env(12));
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_adaptive_impl(&vs, &cfg, &mut rng).unwrap();
        assert!(
            (out.estimate - truth).abs() / truth < 0.05,
            "est {} truth {truth}",
            out.estimate
        );
        // δ split respected.
        let r1 = out.round1.contacted;
        let r2 = out.round2.contacted;
        assert!((r1 as f64 / (r1 + r2) as f64 - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn round2_drops_vacuous_bits_under_dropout() {
        // 14-bit codec, 6-bit data, 30% dropout: the adaptive pass must
        // still identify and drop the empty bits.
        let vs = values(30_000, 60);
        let cfg = FederatedAdaptiveConfig::new(env(14).with_dropout(DropoutModel::bernoulli(0.3)));
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_adaptive_impl(&vs, &cfg, &mut rng).unwrap();
        let dropped = out
            .round2_sampling
            .probs()
            .iter()
            .skip(7)
            .filter(|&&p| p == 0.0)
            .count();
        assert!(dropped >= 6, "vacuous high bits should be dropped");
    }

    #[test]
    fn adaptive_beats_single_round_in_the_same_environment() {
        let vs = values(12_000, 60); // 6-bit data in a 14-bit domain
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let dropout = DropoutModel::bernoulli(0.2);
        let rmse = |adaptive: bool| {
            let mut sq = 0.0;
            let trials = 25;
            for s in 0..trials {
                let mut rng = StdRng::seed_from_u64(s);
                let est = if adaptive {
                    let cfg = FederatedAdaptiveConfig::new(env(14).with_dropout(dropout));
                    run_adaptive_impl(&vs, &cfg, &mut rng).unwrap().estimate
                } else {
                    let mut e = env(14).with_dropout(dropout);
                    e.protocol = BasicConfig::new(
                        FixedPointCodec::integer(14),
                        BitSampling::geometric(14, 1.0),
                    );
                    run_round_impl(&vs, &e, None, &mut rng)
                        .unwrap()
                        .outcome
                        .estimate
                };
                sq += (est - truth) * (est - truth);
            }
            (sq / trials as f64).sqrt()
        };
        let r_adaptive = rmse(true);
        let r_single = rmse(false);
        assert!(
            r_adaptive < r_single,
            "adaptive {r_adaptive} should beat single-round {r_single}"
        );
    }

    #[test]
    fn privacy_and_latency_compose() {
        let vs = values(60_000, 200);
        let truth = vs.iter().sum::<f64>() / vs.len() as f64;
        let mut environment = env(8).with_latency(LatencyModel::typical_fleet());
        environment.protocol =
            BasicConfig::new(FixedPointCodec::integer(8), BitSampling::geometric(8, 1.0))
                .with_privacy(RandomizedResponse::from_epsilon(2.0));
        let cfg = FederatedAdaptiveConfig::new(environment);
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_adaptive_impl(&vs, &cfg, &mut rng).unwrap();
        assert!((out.estimate - truth).abs() / truth < 0.25);
        // Two rounds of wall-clock.
        assert!(out.completion_time > out.round1.completion_time);
        assert!(out.completion_time > out.round2.completion_time);
    }

    #[test]
    fn delta_controls_cohorts() {
        let vs = values(1_000, 50);
        let cfg = FederatedAdaptiveConfig::new(env(6)).with_delta(0.25);
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_adaptive_impl(&vs, &cfg, &mut rng).unwrap();
        assert_eq!(out.round1.contacted, 250);
        assert_eq!(out.round2.contacted, 750);
    }

    #[test]
    fn rejects_single_client_with_typed_error() {
        let cfg = FederatedAdaptiveConfig::new(env(4));
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            run_adaptive_impl(&[1.0], &cfg, &mut rng),
            Err(RoundError::PopulationTooSmall { got: 1, need: 2 })
        ));
    }
}
