//! Property tests on the workload samplers.

use fednum_workloads::{
    CensusAges, Dataset, Exponential, LogNormal, Normal, Pareto, Sampler, Uniform, Zipf,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Every sampler produces finite values for any valid parameters.
    #[test]
    fn samples_are_finite(
        mu in -1e6f64..1e6,
        sigma in 0.0f64..1e4,
        lambda in 1e-6f64..1e3,
        alpha in 0.1f64..10.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(Normal::new(mu, sigma).sample(&mut rng).is_finite());
        prop_assert!(Exponential::new(lambda).sample(&mut rng).is_finite());
        prop_assert!(LogNormal::new((mu / 1e5).clamp(-10.0, 10.0), sigma.min(5.0))
            .sample(&mut rng)
            .is_finite());
        prop_assert!(Pareto::new(1.0, alpha).sample(&mut rng).is_finite());
    }

    /// Uniform samples respect their bounds exactly.
    #[test]
    fn uniform_bounds(lo in -1e6f64..1e6, width in 1e-6f64..1e6, seed in any::<u64>()) {
        let d = Uniform::new(lo, lo + width);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x < lo + width);
        }
    }

    /// Zipf samples stay in the declared support, and heavier exponents put
    /// (weakly) more mass on rank 1.
    #[test]
    fn zipf_support_and_monotonicity(n in 2usize..200, seed in any::<u64>()) {
        let flat = Zipf::new(n, 0.5);
        let steep = Zipf::new(n, 2.5);
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 2000;
        let count_ones = |d: &Zipf, rng: &mut StdRng| {
            (0..draws)
                .filter(|_| {
                    let x = d.sample(rng);
                    assert!((1.0..=n as f64).contains(&x));
                    x == 1.0
                })
                .count()
        };
        let flat_ones = count_ones(&flat, &mut rng);
        let steep_ones = count_ones(&steep, &mut rng);
        // Generous slack: steep should rarely lose by much.
        prop_assert!(steep_ones + draws / 20 >= flat_ones);
    }

    /// Dataset ground truths are exchange-invariant: permuting values keeps
    /// mean and variance.
    #[test]
    fn dataset_stats_permutation_invariant(
        mut values in prop::collection::vec(0.0f64..1e4, 2..100),
        seed in any::<u64>(),
    ) {
        let a = Dataset::new(values.clone());
        // Deterministic permutation from the seed.
        let n = values.len();
        for i in 0..n {
            let j = (seed as usize).wrapping_mul(31).wrapping_add(i * 17) % n;
            values.swap(i, j);
        }
        let b = Dataset::new(values);
        prop_assert!((a.mean() - b.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - b.variance()).abs() < 1e-6);
        prop_assert_eq!(a.max(), b.max());
    }

    /// Census samples honor the top-coded integer support for any seed.
    #[test]
    fn census_support(seed in any::<u64>()) {
        let d = CensusAges::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let a = d.sample(&mut rng);
            prop_assert_eq!(a, a.trunc());
            prop_assert!((0.0..=90.0).contains(&a));
        }
    }
}
