//! Synthetic US census age sampler.
//!
//! The paper's "human-generated data" is the distribution of people's ages
//! from the UCI Census-Income (KDD) dataset, of which the experiments use
//! only the age column (Section 4: "We only compute the mean age and the
//! variance of ages"). The dataset is unavailable offline, so this module
//! samples ages from the published US age pyramid (5-year buckets, 2000-era
//! census shares, top-coded at 90), which matches the real column in every
//! property the experiments exercise: integer support `0..=90`, mean in the
//! mid-30s, moderate right skew, and high-order bits of an 8-bit encoding
//! that are informative while bits above 7 are vacuous.

use rand::RngExt;

use crate::distributions::Sampler;

/// Share (percent) of population per 5-year age bucket, ages 0–89, plus a
/// final 90+ bucket collapsed to exactly 90 (top-coding, as in the KDD file).
const BUCKET_SHARES: [f64; 19] = [
    6.8, // 0-4
    7.3, // 5-9
    7.3, // 10-14
    7.2, // 15-19
    6.7, // 20-24
    6.4, // 25-29
    7.2, // 30-34
    8.1, // 35-39
    8.0, // 40-44
    7.2, // 45-49
    6.2, // 50-54
    4.8, // 55-59
    3.8, // 60-64
    3.4, // 65-69
    3.3, // 70-74
    2.6, // 75-79
    1.7, // 80-84
    1.2, // 85-89
    0.8, // 90+ (top-coded to 90)
];

/// Sampler over synthetic census ages (integers in `0..=90`).
///
/// # Examples
///
/// ```
/// use fednum_workloads::{CensusAges, Sampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let ages = CensusAges::new();
/// let mut rng = StdRng::seed_from_u64(1);
/// let xs = ages.sample_n(&mut rng, 10_000);
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!(mean > 30.0 && mean < 40.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CensusAges {
    cdf: [f64; 19],
}

impl CensusAges {
    /// Builds the sampler (precomputes the bucket CDF).
    #[must_use]
    pub fn new() -> Self {
        let total: f64 = BUCKET_SHARES.iter().sum();
        let mut cdf = [0.0; 19];
        let mut acc = 0.0;
        for (i, &s) in BUCKET_SHARES.iter().enumerate() {
            acc += s / total;
            cdf[i] = acc;
        }
        cdf[18] = 1.0;
        Self { cdf }
    }

    /// Exact mean age of the synthetic distribution.
    #[must_use]
    pub fn exact_mean(&self) -> f64 {
        self.mean().expect("closed form exists")
    }

    /// Exact variance of the synthetic distribution.
    #[must_use]
    pub fn exact_variance(&self) -> f64 {
        self.variance().expect("closed form exists")
    }

    /// Probability of each integer age `0..=90`.
    #[must_use]
    pub fn pmf(&self) -> Vec<f64> {
        let total: f64 = BUCKET_SHARES.iter().sum();
        let mut pmf = vec![0.0; 91];
        for (b, &share) in BUCKET_SHARES.iter().enumerate() {
            let p = share / total;
            if b == 18 {
                pmf[90] += p;
            } else {
                for a in 0..5 {
                    pmf[b * 5 + a] += p / 5.0;
                }
            }
        }
        pmf
    }
}

impl Default for CensusAges {
    fn default() -> Self {
        Self::new()
    }
}

impl Sampler for CensusAges {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let bucket = self.cdf.partition_point(|&c| c < u).min(18);
        if bucket == 18 {
            90.0
        } else {
            (bucket * 5 + rng.random_range(0..5usize)) as f64
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(
            self.pmf()
                .iter()
                .enumerate()
                .map(|(a, p)| a as f64 * p)
                .sum(),
        )
    }

    fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        Some(
            self.pmf()
                .iter()
                .enumerate()
                .map(|(a, p)| (a as f64 - mean).powi(2) * p)
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let pmf = CensusAges::new().pmf();
        assert_eq!(pmf.len(), 91);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(pmf.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn mean_is_mid_thirties() {
        let m = CensusAges::new().exact_mean();
        assert!((33.0..38.0).contains(&m), "mean age {m}");
    }

    #[test]
    fn variance_is_positive_and_plausible() {
        let v = CensusAges::new().exact_variance();
        // Std dev of US ages is roughly 22 years.
        assert!((15.0_f64.powi(2)..28.0_f64.powi(2)).contains(&v), "var {v}");
    }

    #[test]
    fn samples_are_integer_ages_in_range() {
        let d = CensusAges::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = d.sample(&mut rng);
            assert_eq!(a, a.trunc());
            assert!((0.0..=90.0).contains(&a));
        }
    }

    #[test]
    fn empirical_moments_match_closed_form() {
        let d = CensusAges::new();
        let mut rng = StdRng::seed_from_u64(4);
        let xs = d.sample_n(&mut rng, 400_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean / d.exact_mean() - 1.0).abs() < 0.01);
        assert!((var / d.exact_variance() - 1.0).abs() < 0.02);
    }

    #[test]
    fn top_coding_produces_exact_ninety() {
        let d = CensusAges::new();
        let mut rng = StdRng::seed_from_u64(5);
        let got_90 = d.sample_n(&mut rng, 50_000).contains(&90.0);
        assert!(got_90, "90+ bucket should appear in 50k samples");
    }

    #[test]
    fn fits_in_seven_bits() {
        // Ages ≤ 90 < 128: bit depth 7 suffices, 8 leaves one vacuous bit.
        let d = CensusAges::new();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(d.sample_n(&mut rng, 10_000).iter().all(|&a| a < 128.0));
    }
}
