//! Deployment-style telemetry distributions (Section 4.3).
//!
//! The paper's deployment experience highlights three corner cases met "in
//! the wild" when aggregating device health and performance metrics:
//!
//! 1. metrics whose typical values are 0 and 1 but where "some rare clients
//!    report values that are orders of magnitude higher"
//!    ([`MostlyBinaryWithOutliers`]),
//! 2. spiky mixtures with extreme outliers where mean estimation is only
//!    meaningful after winsorization/clipping ([`SpikeMixture`]),
//! 3. constant features that make mean and variance estimation moot
//!    ([`ConstantMetric`]).

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::distributions::Sampler;

/// Values are 0 or 1 for almost all clients; a rare fraction reports an
/// extreme magnitude (e.g., a counter that overflowed or a misconfigured
/// unit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MostlyBinaryWithOutliers {
    /// Probability that a typical client reports 1 rather than 0.
    pub p_one: f64,
    /// Probability of being an outlier client.
    pub p_outlier: f64,
    /// Magnitude of the outlier report.
    pub outlier_value: f64,
}

impl MostlyBinaryWithOutliers {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics if probabilities are outside `[0, 1]` or sum above 1, or if the
    /// outlier value is not finite.
    #[must_use]
    pub fn new(p_one: f64, p_outlier: f64, outlier_value: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_one));
        assert!((0.0..=1.0).contains(&p_outlier));
        assert!(p_one + p_outlier <= 1.0, "probabilities exceed 1");
        assert!(outlier_value.is_finite());
        Self {
            p_one,
            p_outlier,
            outlier_value,
        }
    }
}

impl Sampler for MostlyBinaryWithOutliers {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        if u < self.p_outlier {
            self.outlier_value
        } else if u < self.p_outlier + self.p_one {
            1.0
        } else {
            0.0
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(self.p_one + self.p_outlier * self.outlier_value)
    }

    fn variance(&self) -> Option<f64> {
        let m = self.mean()?;
        let e2 = self.p_one + self.p_outlier * self.outlier_value * self.outlier_value;
        Some(e2 - m * m)
    }
}

/// A body distribution (log-normal) contaminated by a heavy Pareto spike —
/// the "extreme outliers" scenario motivating clipping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeMixture {
    /// Log-normal body location.
    pub body_mu: f64,
    /// Log-normal body scale.
    pub body_sigma: f64,
    /// Fraction of clients in the heavy tail.
    pub tail_fraction: f64,
    /// Pareto tail index for the contamination (≤ 1 means no mean exists).
    pub tail_alpha: f64,
    /// Pareto tail scale.
    pub tail_scale: f64,
}

impl SpikeMixture {
    /// Creates the mixture.
    ///
    /// # Panics
    /// Panics on invalid parameters (fractions outside `[0,1]`, nonpositive
    /// scales).
    #[must_use]
    pub fn new(
        body_mu: f64,
        body_sigma: f64,
        tail_fraction: f64,
        tail_alpha: f64,
        tail_scale: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&tail_fraction));
        assert!(body_sigma >= 0.0 && tail_alpha > 0.0 && tail_scale > 0.0);
        Self {
            body_mu,
            body_sigma,
            tail_fraction,
            tail_alpha,
            tail_scale,
        }
    }

    /// True if the mixture's mean exists (tail index above 1 or no tail).
    #[must_use]
    pub fn mean_exists(&self) -> bool {
        self.tail_fraction == 0.0 || self.tail_alpha > 1.0
    }
}

impl Sampler for SpikeMixture {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.random::<f64>() < self.tail_fraction {
            crate::distributions::Pareto::new(self.tail_scale, self.tail_alpha).sample(rng)
        } else {
            crate::distributions::LogNormal::new(self.body_mu, self.body_sigma).sample(rng)
        }
    }

    fn mean(&self) -> Option<f64> {
        let body = crate::distributions::LogNormal::new(self.body_mu, self.body_sigma).mean()?;
        if self.tail_fraction == 0.0 {
            return Some(body);
        }
        let tail = crate::distributions::Pareto::new(self.tail_scale, self.tail_alpha).mean()?;
        Some((1.0 - self.tail_fraction) * body + self.tail_fraction * tail)
    }
}

/// A constant metric (e.g., a hard-coded configuration value). Aggregation
/// pipelines should detect these offline rather than spend privacy budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantMetric {
    /// The constant.
    pub value: f64,
}

impl Sampler for ConstantMetric {
    fn sample<R: RngExt + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.value
    }

    fn mean(&self) -> Option<f64> {
        Some(self.value)
    }

    fn variance(&self) -> Option<f64> {
        Some(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mostly_binary_support() {
        let d = MostlyBinaryWithOutliers::new(0.3, 0.001, 1e6);
        let mut rng = StdRng::seed_from_u64(1);
        let xs = d.sample_n(&mut rng, 100_000);
        assert!(xs.iter().all(|&x| x == 0.0 || x == 1.0 || x == 1e6));
        let outliers = xs.iter().filter(|&&x| x == 1e6).count();
        assert!((20..500).contains(&outliers), "got {outliers} outliers");
    }

    #[test]
    fn mostly_binary_outliers_dominate_mean() {
        // The paper's point: the sample mean is hostage to outlier clients.
        let d = MostlyBinaryWithOutliers::new(0.3, 0.001, 1e6);
        let m = d.mean().unwrap();
        assert!(m > 1000.0, "mean {m} should be outlier-dominated");
        let clipped_mean = 0.3; // if outliers were clipped to ~1
        assert!(m / clipped_mean > 1000.0);
    }

    #[test]
    fn mostly_binary_moments_match_empirical() {
        let d = MostlyBinaryWithOutliers::new(0.4, 0.01, 100.0);
        let mut rng = StdRng::seed_from_u64(2);
        let xs = d.sample_n(&mut rng, 400_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean / d.mean().unwrap() - 1.0).abs() < 0.05);
    }

    #[test]
    fn spike_mixture_mean_existence() {
        assert!(SpikeMixture::new(1.0, 0.5, 0.01, 2.0, 10.0).mean_exists());
        assert!(!SpikeMixture::new(1.0, 0.5, 0.01, 0.8, 10.0).mean_exists());
        assert!(SpikeMixture::new(1.0, 0.5, 0.0, 0.8, 10.0).mean_exists());
    }

    #[test]
    fn spike_mixture_samples_positive() {
        let d = SpikeMixture::new(2.0, 0.7, 0.05, 1.2, 50.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(d.sample_n(&mut rng, 10_000).iter().all(|&x| x > 0.0));
    }

    #[test]
    fn constant_metric_is_degenerate() {
        let d = ConstantMetric { value: 7.0 };
        let mut rng = StdRng::seed_from_u64(4);
        assert!(d.sample_n(&mut rng, 100).iter().all(|&x| x == 7.0));
        assert_eq!(d.variance(), Some(0.0));
    }
}
