//! Seeded synthetic data distributions and datasets for federated
//! aggregation experiments.
//!
//! Section 4 of the paper evaluates on values drawn from Normal, uniform and
//! exponential distributions with varying parameters, plus a human-generated
//! dataset (US census ages). Section 4.3 adds the "wild" distributions met in
//! deployment: heavy tails with extreme outliers, mostly-binary metrics, and
//! constant features. This crate implements all of them from scratch
//! (Box–Muller, inverse CDFs, discrete CDF inversion) with explicit seeding so
//! every experiment is reproducible.
//!
//! The UCI census file is not available offline; [`census`] substitutes a
//! synthetic sampler over the published US age pyramid, which preserves
//! everything the experiments use (see `DESIGN.md` §2).

pub mod census;
pub mod dataset;
pub mod distributions;
pub mod drifting;
pub mod telemetry;

pub use census::CensusAges;
pub use dataset::Dataset;
pub use distributions::{
    Constant, Exponential, LogNormal, Mixture, Normal, Pareto, Sampler, Uniform, Workload, Zipf,
};
pub use drifting::{buggy_rollout, DriftingNormal, RegimeShift, RoundSampler};
pub use telemetry::{ConstantMetric, MostlyBinaryWithOutliers, SpikeMixture};
