//! Non-stationary (round-indexed) workloads.
//!
//! Deployment metrics drift: devices update, usage patterns shift, bugs
//! ship. These samplers produce a *different distribution per round*, for
//! exercising the streaming aggregator's forgetting, the upper-bound
//! tracker's flagging, and the auto-adjustment logic across rounds.

use serde::{Deserialize, Serialize};

use crate::distributions::{Normal, Workload};
use crate::telemetry::MostlyBinaryWithOutliers;

/// A distribution family indexed by round number.
pub trait RoundSampler {
    /// The distribution in effect at `round`.
    fn at_round(&self, round: u64) -> Workload;
}

/// A Normal whose mean drifts linearly per round (gradual shift).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftingNormal {
    /// Mean at round 0.
    pub mu0: f64,
    /// Additive mean drift per round.
    pub drift_per_round: f64,
    /// Fixed standard deviation.
    pub sigma: f64,
}

impl DriftingNormal {
    /// Creates the family.
    ///
    /// # Panics
    /// Panics if `sigma < 0` or parameters are not finite.
    #[must_use]
    pub fn new(mu0: f64, drift_per_round: f64, sigma: f64) -> Self {
        assert!(mu0.is_finite() && drift_per_round.is_finite());
        assert!(sigma >= 0.0 && sigma.is_finite());
        Self {
            mu0,
            drift_per_round,
            sigma,
        }
    }
}

impl RoundSampler for DriftingNormal {
    fn at_round(&self, round: u64) -> Workload {
        Workload::Normal(Normal::new(
            self.mu0 + self.drift_per_round * round as f64,
            self.sigma,
        ))
    }
}

/// An abrupt regime shift at a known round (a release rollout, a
/// misconfiguration): `before` up to `shift_round − 1`, `after` from then
/// on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeShift {
    /// Distribution before the shift.
    pub before: Workload,
    /// Distribution after the shift.
    pub after: Workload,
    /// First round of the new regime.
    pub shift_round: u64,
}

impl RoundSampler for RegimeShift {
    fn at_round(&self, round: u64) -> Workload {
        if round < self.shift_round {
            self.before.clone()
        } else {
            self.after.clone()
        }
    }
}

/// The canonical "buggy build ships" scenario used by the examples: a
/// healthy mostly-binary metric that grows a huge-outlier tail at
/// `shift_round`.
#[must_use]
pub fn buggy_rollout(p_one: f64, outlier_value: f64, shift_round: u64) -> RegimeShift {
    RegimeShift {
        before: Workload::Mixture(Box::new(crate::distributions::Mixture::new(vec![(
            1.0,
            mostly_binary(p_one, 0.0, 1.0),
        )]))),
        after: Workload::Mixture(Box::new(crate::distributions::Mixture::new(vec![(
            1.0,
            mostly_binary(p_one, 0.001, outlier_value),
        )]))),
        shift_round,
    }
}

fn mostly_binary(p_one: f64, p_outlier: f64, outlier_value: f64) -> Workload {
    // Express MostlyBinaryWithOutliers as a three-point mixture so it fits
    // the serializable Workload enum.
    let d = MostlyBinaryWithOutliers::new(p_one, p_outlier, outlier_value);
    let mut components = vec![
        (
            1.0 - d.p_one - d.p_outlier,
            Workload::Constant(crate::distributions::Constant { value: 0.0 }),
        ),
        (
            d.p_one,
            Workload::Constant(crate::distributions::Constant { value: 1.0 }),
        ),
    ];
    if d.p_outlier > 0.0 {
        components.push((
            d.p_outlier,
            Workload::Constant(crate::distributions::Constant {
                value: d.outlier_value,
            }),
        ));
    }
    Workload::Mixture(Box::new(crate::distributions::Mixture::new(components)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::Sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drifting_normal_moves_linearly() {
        let d = DriftingNormal::new(100.0, 5.0, 1.0);
        assert_eq!(d.at_round(0).mean(), Some(100.0));
        assert_eq!(d.at_round(10).mean(), Some(150.0));
        assert_eq!(d.at_round(10).variance(), Some(1.0));
    }

    #[test]
    fn regime_shift_switches_at_the_round() {
        let shift = RegimeShift {
            before: Workload::Constant(crate::distributions::Constant { value: 1.0 }),
            after: Workload::Constant(crate::distributions::Constant { value: 9.0 }),
            shift_round: 3,
        };
        assert_eq!(shift.at_round(0).mean(), Some(1.0));
        assert_eq!(shift.at_round(2).mean(), Some(1.0));
        assert_eq!(shift.at_round(3).mean(), Some(9.0));
        assert_eq!(shift.at_round(100).mean(), Some(9.0));
    }

    #[test]
    fn buggy_rollout_grows_a_tail() {
        let scenario = buggy_rollout(0.3, 1e6, 5);
        let before = scenario.at_round(4);
        let after = scenario.at_round(5);
        assert!((before.mean().unwrap() - 0.3).abs() < 1e-9);
        assert!(after.mean().unwrap() > 500.0, "outlier-dominated mean");
        // Sampling the post-shift regime produces the outlier value.
        let mut rng = StdRng::seed_from_u64(1);
        let xs = after.sample_n(&mut rng, 50_000);
        assert!(xs.contains(&1e6));
        assert!(xs.iter().all(|&x| x == 0.0 || x == 1.0 || x == 1e6));
    }

    #[test]
    fn drifting_samples_track_the_mean() {
        let d = DriftingNormal::new(50.0, 10.0, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let late = d.at_round(20).sample_n(&mut rng, 20_000);
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!((mean - 250.0).abs() < 1.0, "mean {mean}");
    }
}
