//! Continuous and discrete value distributions, implemented from scratch.
//!
//! All samplers draw through [`rand::RngExt`] so any seeded RNG works; the
//! workspace standardizes on `StdRng::seed_from_u64`.

use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A distribution over client values.
///
/// Implementors must be deterministic functions of the RNG stream so that
/// seeded experiments reproduce exactly.
pub trait Sampler {
    /// Draws one value.
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `n` values.
    fn sample_n<R: RngExt + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Exact mean of the distribution, if known in closed form.
    fn mean(&self) -> Option<f64> {
        None
    }

    /// Exact variance of the distribution, if known in closed form.
    fn variance(&self) -> Option<f64> {
        None
    }
}

/// Normal distribution `N(mu, sigma^2)`, sampled by the Box–Muller transform.
///
/// The paper's synthetic experiments (Figures 1) use `sigma = 100` with
/// varying `mu`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation (must be ≥ 0).
    pub sigma: f64,
}

impl Normal {
    /// Creates a Normal distribution.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or not finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        assert!(mu.is_finite(), "mu must be finite");
        Self { mu, sigma }
    }
}

impl Sampler for Normal {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller. u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mu + self.sigma * z
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }

    fn variance(&self) -> Option<f64> {
        Some(self.sigma * self.sigma)
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or bounds are not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "need lo < hi");
        Self { lo, hi }
    }
}

impl Sampler for Uniform {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.lo + self.hi) / 2.0)
    }

    fn variance(&self) -> Option<f64> {
        let w = self.hi - self.lo;
        Some(w * w / 12.0)
    }
}

/// Exponential distribution with rate `lambda`, sampled by inverse CDF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    /// Rate parameter (mean is `1/lambda`).
    pub lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    /// Panics unless `lambda > 0` and finite.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be > 0");
        Self { lambda }
    }
}

impl Sampler for Exponential {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>(); // in (0,1]
        -u.ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }

    fn variance(&self) -> Option<f64> {
        Some(1.0 / (self.lambda * self.lambda))
    }
}

/// Log-normal distribution: `exp(N(mu, sigma^2))`. Used for client latency
/// modeling and moderately skewed metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or parameters are not finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite() && mu.is_finite());
        Self { mu, sigma }
    }
}

impl Sampler for LogNormal {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal::new(self.mu, self.sigma).sample(rng).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }

    fn variance(&self) -> Option<f64> {
        let s2 = self.sigma * self.sigma;
        Some((s2.exp() - 1.0) * (2.0 * self.mu + s2).exp())
    }
}

/// Pareto (power-law) distribution with scale `x_m` and shape `alpha` —
/// the canonical heavy tail from the deployment discussion (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    /// Minimum value (scale).
    pub x_m: f64,
    /// Tail index; smaller is heavier. Mean exists only for `alpha > 1`.
    pub alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    /// Panics unless `x_m > 0` and `alpha > 0`.
    #[must_use]
    pub fn new(x_m: f64, alpha: f64) -> Self {
        assert!(x_m > 0.0 && alpha > 0.0, "need x_m > 0, alpha > 0");
        Self { x_m, alpha }
    }
}

impl Sampler for Pareto {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>(); // (0,1]
        self.x_m / u.powf(1.0 / self.alpha)
    }

    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_m / (self.alpha - 1.0))
    }

    fn variance(&self) -> Option<f64> {
        (self.alpha > 2.0).then(|| {
            let a = self.alpha;
            self.x_m * self.x_m * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        })
    }
}

/// Zipf distribution over `{1, ..., n}` with exponent `s`, sampled by binary
/// search over the precomputed CDF. Models skewed discrete metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    /// Support size.
    pub n: usize,
    /// Exponent (`s >= 0`); larger is more skewed.
    pub s: f64,
    #[serde(skip)]
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution and precomputes its CDF.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative / not finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "s must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { n, s, cdf }
    }

    fn ensure_cdf(&self) -> &[f64] {
        // serde(skip) leaves an empty CDF after deserialization; Zipf values
        // deserialized from JSON must be rebuilt via `Zipf::new`.
        assert!(
            !self.cdf.is_empty(),
            "Zipf CDF missing: rebuild with Zipf::new after deserialization"
        );
        &self.cdf
    }
}

impl Sampler for Zipf {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let cdf = self.ensure_cdf();
        let u: f64 = rng.random();
        let idx = cdf.partition_point(|&c| c < u);
        (idx.min(self.n - 1) + 1) as f64
    }

    fn mean(&self) -> Option<f64> {
        let cdf = self.ensure_cdf();
        let mut prev = 0.0;
        let mut m = 0.0;
        for (i, &c) in cdf.iter().enumerate() {
            m += (i + 1) as f64 * (c - prev);
            prev = c;
        }
        Some(m)
    }

    fn variance(&self) -> Option<f64> {
        let cdf = self.ensure_cdf();
        let mean = self.mean()?;
        let mut prev = 0.0;
        let mut m2 = 0.0;
        for (i, &c) in cdf.iter().enumerate() {
            let v = (i + 1) as f64;
            m2 += v * v * (c - prev);
            prev = c;
        }
        Some(m2 - mean * mean)
    }
}

/// Degenerate point mass — the "constant feature" corner case from the
/// deployment experience (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant {
    /// The single value every client holds.
    pub value: f64,
}

impl Sampler for Constant {
    fn sample<R: RngExt + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.value
    }

    fn mean(&self) -> Option<f64> {
        Some(self.value)
    }

    fn variance(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Finite mixture of workloads with given weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mixture {
    /// `(weight, component)` pairs; weights need not be normalized.
    pub components: Vec<(f64, Workload)>,
}

impl Mixture {
    /// Creates a mixture.
    ///
    /// # Panics
    /// Panics if empty or any weight is negative / all weights are zero.
    #[must_use]
    pub fn new(components: Vec<(f64, Workload)>) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            components.iter().all(|(w, _)| *w >= 0.0) && total > 0.0,
            "weights must be nonnegative with positive sum"
        );
        Self { components }
    }

    fn total_weight(&self) -> f64 {
        self.components.iter().map(|(w, _)| *w).sum()
    }
}

impl Sampler for Mixture {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut u = rng.random::<f64>() * self.total_weight();
        for (w, c) in &self.components {
            if u < *w {
                return c.sample(rng);
            }
            u -= w;
        }
        // Floating-point slack: fall back to the last component.
        self.components
            .last()
            .expect("mixture is non-empty")
            .1
            .sample(rng)
    }

    fn mean(&self) -> Option<f64> {
        let total = self.total_weight();
        let mut m = 0.0;
        for (w, c) in &self.components {
            m += w / total * c.mean()?;
        }
        Some(m)
    }

    fn variance(&self) -> Option<f64> {
        // Law of total variance.
        let total = self.total_weight();
        let mean = self.mean()?;
        let mut v = 0.0;
        for (w, c) in &self.components {
            let cm = c.mean()?;
            v += w / total * (c.variance()? + (cm - mean) * (cm - mean));
        }
        Some(v)
    }
}

/// A closed enum over every workload in the crate, for serializable
/// experiment configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Workload {
    Normal(Normal),
    Uniform(Uniform),
    Exponential(Exponential),
    LogNormal(LogNormal),
    Pareto(Pareto),
    Zipf(Zipf),
    Constant(Constant),
    Mixture(Box<Mixture>),
}

impl Sampler for Workload {
    fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Workload::Normal(d) => d.sample(rng),
            Workload::Uniform(d) => d.sample(rng),
            Workload::Exponential(d) => d.sample(rng),
            Workload::LogNormal(d) => d.sample(rng),
            Workload::Pareto(d) => d.sample(rng),
            Workload::Zipf(d) => d.sample(rng),
            Workload::Constant(d) => d.sample(rng),
            Workload::Mixture(d) => d.sample(rng),
        }
    }

    fn mean(&self) -> Option<f64> {
        match self {
            Workload::Normal(d) => d.mean(),
            Workload::Uniform(d) => d.mean(),
            Workload::Exponential(d) => d.mean(),
            Workload::LogNormal(d) => d.mean(),
            Workload::Pareto(d) => d.mean(),
            Workload::Zipf(d) => d.mean(),
            Workload::Constant(d) => d.mean(),
            Workload::Mixture(d) => d.mean(),
        }
    }

    fn variance(&self) -> Option<f64> {
        match self {
            Workload::Normal(d) => d.variance(),
            Workload::Uniform(d) => d.variance(),
            Workload::Exponential(d) => d.variance(),
            Workload::LogNormal(d) => d.variance(),
            Workload::Pareto(d) => d.variance(),
            Workload::Zipf(d) => d.variance(),
            Workload::Constant(d) => d.variance(),
            Workload::Mixture(d) => d.variance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(dist: &impl Sampler, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs = dist.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(500.0, 100.0);
        let (m, v) = empirical(&d, 200_000, 1);
        assert!((m - 500.0).abs() < 1.5, "mean {m}");
        assert!((v / 10_000.0 - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn uniform_moments_match() {
        let d = Uniform::new(10.0, 20.0);
        let (m, v) = empirical(&d, 200_000, 2);
        assert!((m - 15.0).abs() < 0.05);
        assert!((v / d.variance().unwrap() - 1.0).abs() < 0.03);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((10.0..20.0).contains(&x));
        }
    }

    #[test]
    fn exponential_moments_match() {
        let d = Exponential::new(0.25);
        let (m, v) = empirical(&d, 200_000, 4);
        assert!((m - 4.0).abs() < 0.05);
        assert!((v / 16.0 - 1.0).abs() < 0.05);
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let d = LogNormal::new(1.0, 0.5);
        let (m, _) = empirical(&d, 400_000, 5);
        assert!((m / d.mean().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn pareto_bounds_and_mean() {
        let d = Pareto::new(1.0, 3.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        let (m, _) = empirical(&d, 400_000, 7);
        assert!((m / 1.5 - 1.0).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn pareto_heavy_tail_has_no_mean() {
        assert!(Pareto::new(1.0, 0.9).mean().is_none());
        assert!(Pareto::new(1.0, 1.5).variance().is_none());
    }

    #[test]
    fn zipf_support_and_skew() {
        let d = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(8);
        let mut count_one = 0;
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x));
            assert_eq!(x, x.trunc());
            if x == 1.0 {
                count_one += 1;
            }
        }
        // P(1) for s=1.5, n=100 is ≈ 0.39.
        assert!(count_one > 3000, "rank 1 should dominate, got {count_one}");
    }

    #[test]
    fn zipf_closed_form_moments_match_empirical() {
        let d = Zipf::new(50, 1.1);
        let (m, v) = empirical(&d, 400_000, 9);
        assert!((m / d.mean().unwrap() - 1.0).abs() < 0.02);
        assert!((v / d.variance().unwrap() - 1.0).abs() < 0.05);
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant { value: 42.0 };
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(d.sample(&mut rng), 42.0);
        assert_eq!(d.mean(), Some(42.0));
        assert_eq!(d.variance(), Some(0.0));
    }

    #[test]
    fn mixture_moments_law_of_total_variance() {
        let mix = Mixture::new(vec![
            (0.9, Workload::Normal(Normal::new(10.0, 1.0))),
            (0.1, Workload::Constant(Constant { value: 1000.0 })),
        ]);
        let expected_mean = 0.9 * 10.0 + 0.1 * 1000.0;
        assert!((mix.mean().unwrap() - expected_mean).abs() < 1e-9);
        let (m, v) = empirical(&mix, 400_000, 11);
        assert!((m / expected_mean - 1.0).abs() < 0.02);
        assert!((v / mix.variance().unwrap() - 1.0).abs() < 0.03);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let d = Normal::new(0.0, 1.0);
        let a = d.sample_n(&mut StdRng::seed_from_u64(99), 10);
        let b = d.sample_n(&mut StdRng::seed_from_u64(99), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn workload_enum_dispatch_matches_inner() {
        let inner = Exponential::new(2.0);
        let outer = Workload::Exponential(inner);
        assert_eq!(outer.mean(), inner.mean());
        assert_eq!(outer.variance(), inner.variance());
        let a = inner.sample(&mut StdRng::seed_from_u64(1));
        let b = outer.sample(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn normal_rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_rejects_empty_range() {
        let _ = Uniform::new(5.0, 5.0);
    }
}
