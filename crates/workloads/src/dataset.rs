//! Materialized client populations with exact ground truth.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::distributions::Sampler;

/// A materialized population of client values, with exact (empirical) ground
/// truth.
///
/// Experiments compare the estimate against the *empirical* mean of the drawn
/// population, as the paper does ("we compare the true (empirical) value of
/// the mean μ to the estimate").
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    values: Vec<f64>,
}

impl Dataset {
    /// Wraps existing values.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains non-finite entries.
    #[must_use]
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "dataset must be non-empty");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "dataset values must be finite"
        );
        Self { values }
    }

    /// Draws `n` values from `sampler` with a fixed seed.
    #[must_use]
    pub fn draw<S: Sampler>(sampler: &S, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::new(sampler.sample_n(&mut rng, n))
    }

    /// The raw values (one per client).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of clients.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Empirical mean — the experiments' ground truth.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Empirical (population) variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / self.values.len() as f64
    }

    /// Maximum value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
    }

    /// Minimum value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.values.iter().fold(f64::INFINITY, |a, &b| a.min(b))
    }

    /// Ground-truth mean after clipping every value into `[0, hi]` — the
    /// winsorized target used when evaluating clipped protocols (Section 4.3).
    #[must_use]
    pub fn clipped_mean(&self, hi: f64) -> f64 {
        self.values.iter().map(|v| v.clamp(0.0, hi)).sum::<f64>() / self.values.len() as f64
    }

    /// Ground-truth variance after clipping into `[0, hi]`.
    #[must_use]
    pub fn clipped_variance(&self, hi: f64) -> f64 {
        let n = self.values.len() as f64;
        let m = self.clipped_mean(hi);
        self.values
            .iter()
            .map(|v| (v.clamp(0.0, hi) - m).powi(2))
            .sum::<f64>()
            / n
    }

    /// Returns a new dataset with every value clipped into `[0, hi]`.
    #[must_use]
    pub fn clipped(&self, hi: f64) -> Self {
        Self::new(self.values.iter().map(|v| v.clamp(0.0, hi)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Normal, Uniform};

    #[test]
    fn draw_is_deterministic() {
        let d = Normal::new(10.0, 2.0);
        let a = Dataset::draw(&d, 100, 7);
        let b = Dataset::draw(&d, 100, 7);
        assert_eq!(a, b);
        let c = Dataset::draw(&d, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_and_variance_hand_checked() {
        let ds = Dataset::new(vec![1.0, 2.0, 3.0, 6.0]);
        assert!((ds.mean() - 3.0).abs() < 1e-12);
        // Population variance: ((−2)²+(−1)²+0²+3²)/4 = 14/4.
        assert!((ds.variance() - 3.5).abs() < 1e-12);
        assert_eq!(ds.min(), 1.0);
        assert_eq!(ds.max(), 6.0);
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn clipped_mean_truncates_outliers() {
        let ds = Dataset::new(vec![1.0, 2.0, 1000.0, -5.0]);
        // Clipped to [0, 10]: 1, 2, 10, 0 → mean 13/4.
        assert!((ds.clipped_mean(10.0) - 3.25).abs() < 1e-12);
        let c = ds.clipped(10.0);
        assert_eq!(c.max(), 10.0);
        assert_eq!(c.min(), 0.0);
        assert!((c.mean() - ds.clipped_mean(10.0)).abs() < 1e-12);
        assert!((c.variance() - ds.clipped_variance(10.0)).abs() < 1e-12);
    }

    #[test]
    fn clipping_with_wide_bound_is_identity_for_nonnegative_data() {
        let ds = Dataset::draw(&Uniform::new(0.0, 50.0), 1000, 3);
        assert!((ds.clipped_mean(1e9) - ds.mean()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        let _ = Dataset::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = Dataset::new(vec![1.0, f64::NAN]);
    }
}
