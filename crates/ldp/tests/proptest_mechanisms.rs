//! Property tests on the LDP mechanisms: output ranges, debiasing
//! identities, and scaling invariances.

use fednum_ldp::{
    DuchiOneBit, HybridMechanism, LaplaceMechanism, MeanMechanism, PiecewiseMechanism,
    RandomizedResponse, SubtractiveDithering, ValueRange,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Piecewise outputs always stay inside [-C, C], for any ε and input.
    #[test]
    fn piecewise_output_bounded(eps in 0.05f64..8.0, t in -1.0f64..1.0, seed in any::<u64>()) {
        let m = PiecewiseMechanism::new(ValueRange::new(-1.0, 1.0), eps);
        let c = m.c_bound();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let o = m.randomize_unit(t, &mut rng);
            prop_assert!((-c..=c).contains(&o), "output {o} outside [-{c}, {c}]");
        }
    }

    /// The C bound shrinks monotonically toward 1 as ε grows.
    #[test]
    fn piecewise_c_monotone(e1 in 0.1f64..4.0, gap in 0.1f64..4.0) {
        let range = ValueRange::new(0.0, 1.0);
        let loose = PiecewiseMechanism::new(range, e1);
        let tight = PiecewiseMechanism::new(range, e1 + gap);
        prop_assert!(tight.c_bound() < loose.c_bound());
        prop_assert!(tight.c_bound() > 1.0);
    }

    /// RR: ε round-trips through p and the debias identity holds exactly.
    #[test]
    fn rr_epsilon_and_debias(eps in 0.01f64..10.0) {
        let rr = RandomizedResponse::from_epsilon(eps);
        prop_assert!((rr.epsilon() - eps).abs() < 1e-9);
        // debias(1)·p + debias(0)·(1-p) = 1 (truthful bit 1).
        let e = rr.debias(true) * rr.p() + rr.debias(false) * (1.0 - rr.p());
        prop_assert!((e - 1.0).abs() < 1e-9);
    }

    /// Dithering per-report estimates are bounded: b + h − 1/2 ∈ [−1/2, 3/2].
    #[test]
    fn dithering_estimate_bounded(x in 0.0f64..1000.0, seed in any::<u64>()) {
        let d = SubtractiveDithering::new(ValueRange::new(0.0, 1000.0));
        let mut rng = StdRng::seed_from_u64(seed);
        let r = d.randomize(x, &mut rng);
        let e = SubtractiveDithering::estimate_unit(r);
        prop_assert!((-0.5..=1.5).contains(&e));
    }

    /// Every mechanism's aggregate of constant inputs lands near the
    /// constant (within mechanism noise for a large cohort).
    #[test]
    fn constant_inputs_recovered(v in 10.0f64..240.0, seed in 0u64..50) {
        let range = ValueRange::new(0.0, 255.0);
        let values = vec![v; 30_000];
        let mechanisms: Vec<Box<dyn MeanMechanism>> = vec![
            Box::new(SubtractiveDithering::new(range)),
            Box::new(DuchiOneBit::new(range, 4.0)),
            Box::new(PiecewiseMechanism::new(range, 4.0)),
            Box::new(HybridMechanism::new(range, 4.0)),
            Box::new(LaplaceMechanism::new(range, 4.0)),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        for m in &mechanisms {
            let est = m.estimate_mean(&values, &mut rng);
            prop_assert!(
                (est - v).abs() < 12.0,
                "{}: est {est} for constant {v}",
                m.name()
            );
        }
    }

    /// ValueRange scaling: estimates are equivariant under affine range
    /// shifts for the dithering mechanism (shift data and range together).
    #[test]
    fn dithering_shift_equivariance(shift in -500.0f64..500.0, seed in any::<u64>()) {
        let base = ValueRange::new(0.0, 100.0);
        let shifted = ValueRange::new(shift, shift + 100.0);
        let values: Vec<f64> = (0..5000).map(|i| (i % 100) as f64).collect();
        let shifted_values: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let a = SubtractiveDithering::new(base)
            .estimate_mean(&values, &mut StdRng::seed_from_u64(seed));
        let b = SubtractiveDithering::new(shifted)
            .estimate_mean(&shifted_values, &mut StdRng::seed_from_u64(seed));
        prop_assert!((b - a - shift).abs() < 1e-9, "a {a}, b {b}, shift {shift}");
    }
}
