//! Scaling between the data domain and mechanism-canonical domains.

use serde::{Deserialize, Serialize};

/// A closed value range `[lo, hi]` with `lo < hi`.
///
/// Every baseline mechanism assumes inputs in a canonical range (`[0, 1]` or
/// `[-1, 1]`) and therefore needs a declared bound on the data ("The methods
/// above assume inputs in the range `[0,1]` or, equivalently, in some range
/// `[L,H]`", Section 2). Inputs outside the range are clamped, mirroring the
/// winsorization the paper applies in deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueRange {
    /// Lower bound `L`.
    pub lo: f64,
    /// Upper bound `H`.
    pub hi: f64,
}

impl ValueRange {
    /// Creates a range.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and both are finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "need lo < hi");
        Self { lo, hi }
    }

    /// The range `[0, 2^bits - 1]` matching a `bits`-bit unsigned encoding —
    /// the bound a bit-pushing deployment would hand to a baseline.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 52` (exact in `f64`).
    #[must_use]
    pub fn from_bits(bits: u32) -> Self {
        assert!((1..=52).contains(&bits), "bits must be in 1..=52");
        Self::new(0.0, ((1u64 << bits) - 1) as f64)
    }

    /// Range width `H - L`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Maps `x` to `[0, 1]`, clamping out-of-range inputs.
    #[must_use]
    pub fn to_unit(&self, x: f64) -> f64 {
        ((x - self.lo) / self.width()).clamp(0.0, 1.0)
    }

    /// Maps `t in [0, 1]` back to `[lo, hi]` (no clamping: unbiased
    /// aggregates may legitimately leave `[0, 1]`).
    #[must_use]
    pub fn from_unit(&self, t: f64) -> f64 {
        self.lo + t * self.width()
    }

    /// Maps `x` to `[-1, 1]`, clamping out-of-range inputs.
    #[must_use]
    pub fn to_signed_unit(&self, x: f64) -> f64 {
        2.0 * self.to_unit(x) - 1.0
    }

    /// Maps `t in [-1, 1]` back to `[lo, hi]` (no clamping).
    #[must_use]
    pub fn from_signed_unit(&self, t: f64) -> f64 {
        self.from_unit((t + 1.0) / 2.0)
    }

    /// Clamps a raw value into the range.
    #[must_use]
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_round_trip() {
        let r = ValueRange::new(10.0, 30.0);
        for x in [10.0, 15.0, 22.5, 30.0] {
            assert!((r.from_unit(r.to_unit(x)) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn signed_unit_round_trip() {
        let r = ValueRange::new(-5.0, 5.0);
        for x in [-5.0, -1.0, 0.0, 2.5, 5.0] {
            assert!((r.from_signed_unit(r.to_signed_unit(x)) - x).abs() < 1e-12);
        }
        assert_eq!(r.to_signed_unit(0.0), 0.0);
        assert_eq!(r.to_signed_unit(-5.0), -1.0);
        assert_eq!(r.to_signed_unit(5.0), 1.0);
    }

    #[test]
    fn out_of_range_clamps() {
        let r = ValueRange::new(0.0, 100.0);
        assert_eq!(r.to_unit(-50.0), 0.0);
        assert_eq!(r.to_unit(500.0), 1.0);
        assert_eq!(r.clamp(500.0), 100.0);
    }

    #[test]
    fn from_unit_does_not_clamp() {
        // Debiased aggregates may leave [0,1]; scaling must preserve them.
        let r = ValueRange::new(0.0, 10.0);
        assert_eq!(r.from_unit(1.2), 12.0);
        assert_eq!(r.from_unit(-0.1), -1.0);
    }

    #[test]
    fn from_bits_matches_encoding_bound() {
        let r = ValueRange::from_bits(8);
        assert_eq!(r.lo, 0.0);
        assert_eq!(r.hi, 255.0);
        assert_eq!(ValueRange::from_bits(1).hi, 1.0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rejects_inverted_range() {
        let _ = ValueRange::new(3.0, 2.0);
    }
}
