//! Local differential privacy mechanisms for numeric mean estimation.
//!
//! This crate contains the per-value randomizers that the paper builds on
//! and compares against (Section 2 "Prior work" and Section 4):
//!
//! * [`randomized_response`] — Warner's binary randomized response, the
//!   primitive that gives bit-pushing its ε-LDP guarantee;
//! * [`duchi`] — randomized rounding + randomized response (Duchi et al.),
//!   the classical 1-bit LDP mean estimator;
//! * [`piecewise`] — the piecewise mechanism of Wang et al. (ICDE 2019),
//!   a Figure 3 baseline;
//! * [`dithering`] — subtractive dithering (Ben-Basat et al.), the paper's
//!   main non-DP one-bit baseline, plus its randomized-response-wrapped
//!   ε-LDP variant;
//! * [`laplace`] and [`gaussian`] — classical additive-noise mechanisms,
//!   which the paper reports as uniformly worse and omits from plots; we
//!   include them so that claim is checkable.
//!
//! All mechanisms implement [`MeanMechanism`]: randomize every client value,
//! aggregate the reports, return an (unbiased) estimate of the population
//! mean. Scaling between the data domain and each mechanism's canonical
//! domain is handled by [`ValueRange`].

pub mod dithering;
pub mod duchi;
pub mod gaussian;
pub mod hybrid;
pub mod laplace;
pub mod piecewise;
pub mod randomized_response;
pub mod range;
pub mod traits;

pub use dithering::{DitheringLdp, SubtractiveDithering};
pub use duchi::DuchiOneBit;
pub use gaussian::GaussianMechanism;
pub use hybrid::HybridMechanism;
pub use laplace::LaplaceMechanism;
pub use piecewise::PiecewiseMechanism;
pub use randomized_response::RandomizedResponse;
pub use range::ValueRange;
pub use traits::MeanMechanism;
