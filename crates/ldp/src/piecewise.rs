//! The piecewise mechanism of Wang et al. (ICDE 2019).
//!
//! For an input `t ∈ [-1, 1]` the mechanism outputs a value in `[-C, C]`,
//! `C = (e^{ε/2} + 1)/(e^{ε/2} - 1)`, drawn from a piecewise-constant density
//! that is higher on an interval `[l(t), r(t)]` of width `C - 1` centred
//! around (a scaled image of) `t` and lower elsewhere. The output is an
//! unbiased estimate of `t` with variance lower than Duchi et al.'s method
//! for moderate ε, which is why the paper uses it as a Figure 3 baseline
//! ("piecewise").

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::range::ValueRange;
use crate::traits::MeanMechanism;

/// Piecewise mechanism over a declared input range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseMechanism {
    /// Declared input range (scaled internally to `[-1, 1]`).
    pub range: ValueRange,
    epsilon: f64,
}

impl PiecewiseMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics unless `epsilon > 0` and finite.
    #[must_use]
    pub fn new(range: ValueRange, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite"
        );
        Self { range, epsilon }
    }

    /// The output bound `C = (e^{ε/2} + 1) / (e^{ε/2} - 1)`.
    #[must_use]
    pub fn c_bound(&self) -> f64 {
        let e = (self.epsilon / 2.0).exp();
        (e + 1.0) / (e - 1.0)
    }

    /// Left edge of the high-probability interval for scaled input `t`.
    fn left(&self, t: f64) -> f64 {
        let c = self.c_bound();
        (c + 1.0) / 2.0 * t - (c - 1.0) / 2.0
    }

    /// Client side: randomizes a scaled input `t ∈ [-1, 1]`, returning a
    /// value in `[-C, C]` that is unbiased for `t`.
    pub fn randomize_unit(&self, t: f64, rng: &mut dyn Rng) -> f64 {
        debug_assert!((-1.0..=1.0).contains(&t));
        let c = self.c_bound();
        let l = self.left(t);
        let r = l + c - 1.0;
        let e_half = (self.epsilon / 2.0).exp();
        let p_center = e_half / (e_half + 1.0);
        if rng.random_bool(p_center) {
            // Uniform on the high-probability interval [l, r].
            l + (r - l) * rng.random::<f64>()
        } else {
            // Uniform on [-C, l) ∪ (r, C], picking a side by length.
            let left_len = l - (-c);
            let right_len = c - r;
            let total = left_len + right_len;
            let u = rng.random::<f64>() * total;
            if u < left_len {
                -c + u
            } else {
                r + (u - left_len)
            }
        }
    }

    /// Client side: randomizes a raw value.
    pub fn randomize(&self, x: f64, rng: &mut dyn Rng) -> f64 {
        self.randomize_unit(self.range.to_signed_unit(x), rng)
    }

    /// Server side: averages the (already unbiased) reports and rescales.
    ///
    /// # Panics
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn aggregate(&self, reports: &[f64]) -> f64 {
        assert!(!reports.is_empty(), "need at least one report");
        let mean = reports.iter().sum::<f64>() / reports.len() as f64;
        self.range.from_signed_unit(mean)
    }
}

impl MeanMechanism for PiecewiseMechanism {
    fn name(&self) -> String {
        "piecewise".into()
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        let reports: Vec<f64> = values.iter().map(|&x| self.randomize(x, rng)).collect();
        self.aggregate(&reports)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn c_bound_formula() {
        let m = PiecewiseMechanism::new(ValueRange::new(0.0, 1.0), 2.0);
        let e = 1.0f64.exp();
        assert!((m.c_bound() - (e + 1.0) / (e - 1.0)).abs() < 1e-12);
        // C decreases toward 1 as epsilon grows.
        let tight = PiecewiseMechanism::new(ValueRange::new(0.0, 1.0), 10.0);
        assert!(tight.c_bound() < m.c_bound());
        assert!(tight.c_bound() > 1.0);
    }

    #[test]
    fn outputs_bounded_by_c() {
        let m = PiecewiseMechanism::new(ValueRange::new(0.0, 1.0), 1.0);
        let c = m.c_bound();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..10_000 {
            let t = -1.0 + 2.0 * (i as f64 / 10_000.0);
            let o = m.randomize_unit(t, &mut rng);
            assert!((-c..=c).contains(&o), "output {o} outside [-{c},{c}]");
        }
    }

    #[test]
    fn randomize_unit_is_unbiased() {
        let m = PiecewiseMechanism::new(ValueRange::new(0.0, 1.0), 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for &t in &[-0.9, -0.3, 0.0, 0.5, 1.0] {
            let n = 400_000;
            let mean: f64 = (0..n).map(|_| m.randomize_unit(t, &mut rng)).sum::<f64>() / n as f64;
            assert!((mean - t).abs() < 0.015, "t {t} mean {mean}");
        }
    }

    #[test]
    fn end_to_end_converges() {
        let range = ValueRange::new(0.0, 255.0);
        let m = PiecewiseMechanism::new(range, 2.0);
        let values: Vec<f64> = (0..100_000).map(|i| (i % 120) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(3);
        let est = m.estimate_mean(&values, &mut rng);
        assert!((est - truth).abs() < 2.0, "est {est} truth {truth}");
    }

    #[test]
    fn density_ratio_respects_ldp() {
        // The piecewise density takes two levels with ratio exactly e^eps:
        // high level p = e^{eps/2} (eps-normalized) vs low level p/e^{eps}.
        // Verify empirically that P(output in center band) matches.
        let eps = 2.0;
        let m = PiecewiseMechanism::new(ValueRange::new(0.0, 1.0), eps);
        let e_half = (eps / 2.0).exp();
        let expected_center = e_half / (e_half + 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let t = 0.3;
        let l = m.left(t);
        let r = l + m.c_bound() - 1.0;
        let n = 200_000;
        let hits = (0..n)
            .filter(|_| {
                let o = m.randomize_unit(t, &mut rng);
                (l..=r).contains(&o)
            })
            .count();
        let frac = hits as f64 / n as f64;
        assert!(
            (frac - expected_center).abs() < 0.005,
            "center mass {frac} vs {expected_center}"
        );
    }

    #[test]
    fn higher_epsilon_reduces_variance() {
        let range = ValueRange::new(0.0, 1.0);
        let var_of = |eps: f64| {
            let m = PiecewiseMechanism::new(range, eps);
            let mut rng = StdRng::seed_from_u64(5);
            let n = 100_000;
            let xs: Vec<f64> = (0..n).map(|_| m.randomize_unit(0.2, &mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64
        };
        assert!(var_of(4.0) < var_of(0.5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_epsilon() {
        let _ = PiecewiseMechanism::new(ValueRange::new(0.0, 1.0), 0.0);
    }
}
