//! Warner's binary randomized response (1965) — the LDP primitive.
//!
//! Given a private bit `y`, report `y` with probability `p ≥ 1/2`, else
//! report `1 - y`. With `p = e^ε / (1 + e^ε)` this satisfies ε-LDP
//! (Section 3.3). A reported value `r` is unbiased by
//! `(r - (1 - p)) / (2p - 1)`; the debiased estimate of a single bit has
//! worst-case variance `e^ε / (e^ε - 1)^2`, which is the quantity the
//! paper's DP analysis tracks.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Binary randomized response with truthful-report probability `p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedResponse {
    p: f64,
}

impl RandomizedResponse {
    /// Creates a randomizer with truthful-report probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.5 < p <= 1` (at `p = 0.5` reports carry no signal and
    /// debiasing divides by zero).
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.5 && p <= 1.0, "need 0.5 < p <= 1, got {p}");
        Self { p }
    }

    /// The ε-LDP randomizer: `p = e^ε / (1 + e^ε)`.
    ///
    /// # Panics
    /// Panics unless `ε > 0` and finite.
    #[must_use]
    pub fn from_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite"
        );
        let e = epsilon.exp();
        Self::new(e / (1.0 + e))
    }

    /// Truthful-report probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The ε such that this randomizer is exactly ε-LDP:
    /// `ε = ln(p / (1 - p))` (infinite at `p = 1`).
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        if self.p >= 1.0 {
            f64::INFINITY
        } else {
            (self.p / (1.0 - self.p)).ln()
        }
    }

    /// Randomizes one bit.
    pub fn flip(&self, bit: bool, rng: &mut dyn Rng) -> bool {
        if rng.random_bool(self.p) {
            bit
        } else {
            !bit
        }
    }

    /// Unbiases one reported bit: `(r - (1 - p)) / (2p - 1)`.
    ///
    /// The result is an unbiased estimate of the true bit value and may fall
    /// outside `[0, 1]`.
    #[must_use]
    pub fn debias(&self, report: bool) -> f64 {
        let r = if report { 1.0 } else { 0.0 };
        (r - (1.0 - self.p)) / (2.0 * self.p - 1.0)
    }

    /// Unbiases an observed mean of reports (equivalently, the mean of
    /// per-report debiased values).
    #[must_use]
    pub fn debias_mean(&self, report_mean: f64) -> f64 {
        (report_mean - (1.0 - self.p)) / (2.0 * self.p - 1.0)
    }

    /// Variance of the debiased estimate of a single bit whose true mean is
    /// `m`: `Var = [q(1-q)] / (2p-1)^2` with `q = pm + (1-p)(1-m)` the
    /// report probability.
    #[must_use]
    pub fn report_variance(&self, bit_mean: f64) -> f64 {
        let q = self.p * bit_mean + (1.0 - self.p) * (1.0 - bit_mean);
        q * (1.0 - q) / ((2.0 * self.p - 1.0) * (2.0 * self.p - 1.0))
    }

    /// Variance of the debiased report *conditional on a fixed input bit*:
    /// `p(1-p)/(2p-1)^2`, which for `p = e^ε/(1+e^ε)` equals the paper's
    /// `e^ε / (e^ε - 1)^2` (Section 3.3). This is the pure randomized-response
    /// noise and a lower bound on [`Self::report_variance`] over bit means.
    #[must_use]
    pub fn fixed_bit_variance(&self) -> f64 {
        self.p * (1.0 - self.p) / ((2.0 * self.p - 1.0) * (2.0 * self.p - 1.0))
    }

    /// Maximum of [`Self::report_variance`] over all bit means, attained at
    /// bit mean 1/2: `(1/4) / (2p-1)^2`.
    #[must_use]
    pub fn max_report_variance(&self) -> f64 {
        0.25 / ((2.0 * self.p - 1.0) * (2.0 * self.p - 1.0))
    }

    /// Expected standard deviation of the *noise* on a debiased mean of `n`
    /// reports — the unit the bit-squashing threshold is expressed in
    /// (Figure 4a: "threshold for bit squashing, as a multiple of the
    /// expected amount of DP noise").
    #[must_use]
    pub fn noise_std_for_mean(&self, n: usize) -> f64 {
        if n == 0 {
            f64::INFINITY
        } else {
            (self.fixed_bit_variance() / n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epsilon_round_trips() {
        for eps in [0.1, 0.5, 1.0, 2.0, 5.0] {
            let rr = RandomizedResponse::from_epsilon(eps);
            assert!((rr.epsilon() - eps).abs() < 1e-12, "eps {eps}");
        }
    }

    #[test]
    fn p_one_is_truthful() {
        let rr = RandomizedResponse::new(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(rr.flip(true, &mut rng));
            assert!(!rr.flip(false, &mut rng));
        }
        assert_eq!(rr.epsilon(), f64::INFINITY);
        assert_eq!(rr.debias(true), 1.0);
        assert_eq!(rr.debias(false), 0.0);
    }

    #[test]
    fn debias_is_unbiased() {
        // E[debias(flip(y))] = y for both values of y.
        let rr = RandomizedResponse::from_epsilon(1.0);
        let p = rr.p();
        for y in [0.0, 1.0] {
            let expectation = {
                let q = p * y + (1.0 - p) * (1.0 - y);
                q * rr.debias(true) + (1.0 - q) * rr.debias(false)
            };
            assert!((expectation - y).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_flip_rate_matches_p() {
        let rr = RandomizedResponse::from_epsilon(2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let truthful = (0..n).filter(|_| rr.flip(true, &mut rng)).count();
        let rate = truthful as f64 / n as f64;
        assert!((rate - rr.p()).abs() < 0.005, "rate {rate} vs p {}", rr.p());
    }

    #[test]
    fn debiased_mean_converges() {
        let rr = RandomizedResponse::from_epsilon(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let true_mean = 0.3;
        let n = 400_000;
        let mut sum = 0.0;
        for i in 0..n {
            let bit = (i as f64 / n as f64) < true_mean;
            sum += rr.debias(rr.flip(bit, &mut rng));
        }
        let est = sum / n as f64;
        assert!((est - true_mean).abs() < 0.01, "est {est}");
    }

    #[test]
    fn fixed_bit_variance_matches_paper_formula() {
        for eps in [0.5, 1.0, 2.0] {
            let rr = RandomizedResponse::from_epsilon(eps);
            let expected = eps.exp() / (eps.exp() - 1.0).powi(2);
            assert!(
                (rr.fixed_bit_variance() - expected).abs() < 1e-10,
                "eps {eps}"
            );
        }
    }

    #[test]
    fn report_variance_peaks_at_half_and_is_bracketed() {
        let rr = RandomizedResponse::from_epsilon(1.0);
        assert!(rr.report_variance(0.5) >= rr.report_variance(0.0));
        assert!(rr.report_variance(0.5) >= rr.report_variance(1.0));
        for m in [0.0, 0.25, 0.5, 0.75, 1.0] {
            // Fixed-bit variance is the floor (attained at m ∈ {0, 1}),
            // max_report_variance the ceiling (attained at m = 1/2).
            assert!(rr.report_variance(m) >= rr.fixed_bit_variance() - 1e-12);
            assert!(rr.report_variance(m) <= rr.max_report_variance() + 1e-12);
        }
        assert!((rr.report_variance(0.0) - rr.fixed_bit_variance()).abs() < 1e-12);
        assert!((rr.report_variance(0.5) - rr.max_report_variance()).abs() < 1e-12);
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let rr = RandomizedResponse::from_epsilon(1.5);
        let mut rng = StdRng::seed_from_u64(3);
        let bit = true; // bit mean 1.0
        let n = 400_000;
        let vals: Vec<f64> = (0..n).map(|_| rr.debias(rr.flip(bit, &mut rng))).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var / rr.report_variance(1.0) - 1.0).abs() < 0.02);
    }

    #[test]
    fn noise_std_scales_inverse_sqrt_n() {
        let rr = RandomizedResponse::from_epsilon(2.0);
        let s100 = rr.noise_std_for_mean(100);
        let s10000 = rr.noise_std_for_mean(10_000);
        assert!((s100 / s10000 - 10.0).abs() < 1e-9);
        assert_eq!(rr.noise_std_for_mean(0), f64::INFINITY);
    }

    #[test]
    fn ldp_guarantee_empirical_likelihood_ratio() {
        // For any output o and inputs y, y': P(o|y)/P(o|y') <= e^eps.
        let eps = 1.0;
        let rr = RandomizedResponse::from_epsilon(eps);
        let p_true = rr.p(); // P(report=y | y)
        let ratio = p_true / (1.0 - p_true);
        assert!(ratio <= eps.exp() + 1e-12);
        assert!(ratio >= eps.exp() - 1e-9); // tight
    }

    #[test]
    #[should_panic(expected = "0.5 < p")]
    fn rejects_uninformative_p() {
        let _ = RandomizedResponse::new(0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_epsilon() {
        let _ = RandomizedResponse::from_epsilon(0.0);
    }
}
