//! The common mean-estimation interface implemented by every mechanism.

use rand::Rng;

/// A complete local-privacy mean-estimation pipeline: randomize each client's
/// value independently, then aggregate the randomized reports into an
/// estimate of the population mean.
///
/// Implementations must be unbiased (up to clamping at declared range
/// boundaries), so that `estimate_mean` converges to the population mean as
/// the number of clients grows.
///
/// The trait is dyn-compatible so figure drivers can sweep a heterogeneous
/// list of methods.
pub trait MeanMechanism {
    /// Short label used in tables (e.g. `"piecewise"`, `"dithering"`).
    fn name(&self) -> String;

    /// Runs the full pipeline over one value per client.
    ///
    /// `values` are raw (unscaled) client values; the mechanism applies its
    /// own declared-range scaling and clamping.
    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64;

    /// The ε parameter of the mechanism's LDP guarantee, if it provides one.
    /// `None` means the mechanism is not differentially private on its own
    /// (e.g. plain subtractive dithering).
    fn epsilon(&self) -> Option<f64> {
        None
    }
}

impl MeanMechanism for Box<dyn MeanMechanism> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        self.as_ref().estimate_mean(values, rng)
    }

    fn epsilon(&self) -> Option<f64> {
        self.as_ref().epsilon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Exact;

    impl MeanMechanism for Exact {
        fn name(&self) -> String {
            "exact".into()
        }

        fn estimate_mean(&self, values: &[f64], _rng: &mut dyn Rng) -> f64 {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    #[test]
    fn trait_is_dyn_compatible() {
        let methods: Vec<Box<dyn MeanMechanism>> = vec![Box::new(Exact)];
        let mut rng = StdRng::seed_from_u64(0);
        let est = methods[0].estimate_mean(&[1.0, 3.0], &mut rng);
        assert_eq!(est, 2.0);
        assert_eq!(methods[0].epsilon(), None);
        assert_eq!(methods[0].name(), "exact");
    }
}
