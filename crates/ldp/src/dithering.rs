//! Subtractive dithering (Ben-Basat, Mitzenmacher, Vargaftik 2020).
//!
//! The paper's main one-bit baseline (Section 2): for input `t ∈ [0, 1]`
//! the client samples shared randomness `h ~ U[0, 1]` and sends the single
//! bit `b = [t ≥ h]`; the server, which knows `h`, estimates
//! `t̂ = b + h - 1/2`. The estimate is unbiased with variance bounded by a
//! constant (1/12 ≤ Var ≤ 1/4 scaled), but — crucially for Figure 1 — the
//! variance scales with the *declared* range width, so loose bounds hurt.
//!
//! [`DitheringLdp`] wraps the transmitted bit in randomized response and
//! debiases it, which is how the paper gives the baseline an ε-LDP guarantee
//! for Figure 3 ("we apply randomized response to the input-dependent output
//! b to get an LDP guarantee").

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::randomized_response::RandomizedResponse;
use crate::range::ValueRange;
use crate::traits::MeanMechanism;

/// Plain (non-private) subtractive dithering over a declared range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubtractiveDithering {
    /// Declared input range.
    pub range: ValueRange,
}

/// One dithered report: the transmitted bit and the shared dither `h`.
///
/// `h` is *shared randomness* — the server learns it through the common seed,
/// so only `bit` discloses information about the private value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DitherReport {
    /// The single transmitted bit `[t ≥ h]`.
    pub bit: bool,
    /// The dither level, known to both parties.
    pub h: f64,
}

impl SubtractiveDithering {
    /// Creates the mechanism.
    #[must_use]
    pub fn new(range: ValueRange) -> Self {
        Self { range }
    }

    /// Client side: dithered one-bit report for raw value `x`.
    pub fn randomize(&self, x: f64, rng: &mut dyn Rng) -> DitherReport {
        let t = self.range.to_unit(x);
        let h: f64 = rng.random();
        DitherReport { bit: t >= h, h }
    }

    /// Unbiased per-report estimate in unit scale: `b + h - 1/2`.
    #[must_use]
    pub fn estimate_unit(report: DitherReport) -> f64 {
        f64::from(u8::from(report.bit)) + report.h - 0.5
    }

    /// Server side: mean of per-report estimates, rescaled.
    ///
    /// # Panics
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn aggregate(&self, reports: &[DitherReport]) -> f64 {
        assert!(!reports.is_empty(), "need at least one report");
        let mean =
            reports.iter().map(|&r| Self::estimate_unit(r)).sum::<f64>() / reports.len() as f64;
        self.range.from_unit(mean)
    }
}

impl MeanMechanism for SubtractiveDithering {
    fn name(&self) -> String {
        "dithering".into()
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        let reports: Vec<DitherReport> = values.iter().map(|&x| self.randomize(x, rng)).collect();
        self.aggregate(&reports)
    }
}

/// Subtractive dithering with the transmitted bit passed through
/// ε-randomized response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DitheringLdp {
    /// Declared input range.
    pub range: ValueRange,
    rr: RandomizedResponse,
}

impl DitheringLdp {
    /// Creates the ε-LDP dithering mechanism.
    ///
    /// # Panics
    /// Panics unless `epsilon > 0`.
    #[must_use]
    pub fn new(range: ValueRange, epsilon: f64) -> Self {
        Self {
            range,
            rr: RandomizedResponse::from_epsilon(epsilon),
        }
    }

    /// Client side: dither, then randomize the bit.
    pub fn randomize(&self, x: f64, rng: &mut dyn Rng) -> DitherReport {
        let inner = SubtractiveDithering::new(self.range).randomize(x, rng);
        DitherReport {
            bit: self.rr.flip(inner.bit, rng),
            h: inner.h,
        }
    }

    /// Server side: debias each reported bit, add the (public) dither, and
    /// rescale.
    ///
    /// # Panics
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn aggregate(&self, reports: &[DitherReport]) -> f64 {
        assert!(!reports.is_empty(), "need at least one report");
        let mean = reports
            .iter()
            .map(|&r| self.rr.debias(r.bit) + r.h - 0.5)
            .sum::<f64>()
            / reports.len() as f64;
        self.range.from_unit(mean)
    }
}

impl MeanMechanism for DitheringLdp {
    fn name(&self) -> String {
        "dithering+rr".into()
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        let reports: Vec<DitherReport> = values.iter().map(|&x| self.randomize(x, rng)).collect();
        self.aggregate(&reports)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.rr.epsilon())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn per_report_estimate_is_unbiased() {
        let d = SubtractiveDithering::new(ValueRange::new(0.0, 1.0));
        let mut rng = StdRng::seed_from_u64(1);
        for &t in &[0.0, 0.2, 0.5, 0.9, 1.0] {
            let n = 400_000;
            let mean: f64 = (0..n)
                .map(|_| SubtractiveDithering::estimate_unit(d.randomize(t, &mut rng)))
                .sum::<f64>()
                / n as f64;
            assert!((mean - t).abs() < 0.003, "t {t} mean {mean}");
        }
    }

    #[test]
    fn end_to_end_converges() {
        let d = SubtractiveDithering::new(ValueRange::new(0.0, 1000.0));
        let values: Vec<f64> = (0..100_000).map(|i| 200.0 + (i % 100) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(2);
        let est = d.estimate_mean(&values, &mut rng);
        assert!((est - truth).abs() < 3.0, "est {est} truth {truth}");
    }

    #[test]
    fn loose_bounds_inflate_error() {
        // The Figure 1 phenomenon: dithering's variance scales with the
        // square of the declared width, so an 8x looser bound gives ~8x the
        // RMSE for the same data.
        let values: Vec<f64> = (0..20_000).map(|i| 100.0 + (i % 20) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let rmse_with = |hi: f64| {
            let d = SubtractiveDithering::new(ValueRange::new(0.0, hi));
            let mut sq = 0.0;
            let trials = 30;
            for s in 0..trials {
                let mut rng = StdRng::seed_from_u64(s);
                let e = d.estimate_mean(&values, &mut rng);
                sq += (e - truth) * (e - truth);
            }
            (sq / f64::from(trials as u32)).sqrt()
        };
        let tight = rmse_with(128.0);
        let loose = rmse_with(1024.0);
        assert!(
            loose > 4.0 * tight,
            "loose {loose} should be much worse than tight {tight}"
        );
    }

    #[test]
    fn ldp_variant_converges() {
        let d = DitheringLdp::new(ValueRange::new(0.0, 255.0), 2.0);
        let values: Vec<f64> = (0..200_000).map(|i| 30.0 + (i % 40) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(3);
        let est = d.estimate_mean(&values, &mut rng);
        assert!((est - truth).abs() < 3.0, "est {est} truth {truth}");
    }

    #[test]
    fn ldp_variant_noisier_than_plain() {
        let range = ValueRange::new(0.0, 255.0);
        let values: Vec<f64> = (0..10_000).map(|i| 100.0 + (i % 30) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let rmse = |f: &dyn Fn(u64) -> f64| {
            let mut sq = 0.0;
            for s in 0..30u64 {
                let e = f(s);
                sq += (e - truth) * (e - truth);
            }
            (sq / 30.0).sqrt()
        };
        let plain = SubtractiveDithering::new(range);
        let private = DitheringLdp::new(range, 1.0);
        let r_plain = rmse(&|s| plain.estimate_mean(&values, &mut StdRng::seed_from_u64(s)));
        let r_priv = rmse(&|s| private.estimate_mean(&values, &mut StdRng::seed_from_u64(s)));
        assert!(r_priv > r_plain, "LDP {r_priv} vs plain {r_plain}");
    }

    #[test]
    fn reports_epsilon_only_for_ldp_variant() {
        let range = ValueRange::new(0.0, 1.0);
        assert_eq!(SubtractiveDithering::new(range).epsilon(), None);
        let ldp = DitheringLdp::new(range, 1.0);
        assert!((ldp.epsilon().unwrap() - 1.0).abs() < 1e-12);
    }
}
