//! Duchi et al.'s one-bit LDP mean estimator: randomized rounding followed by
//! randomized response.
//!
//! An input `x` pre-scaled to `[0, 1]` is treated as a probability and
//! rounded to a bit `B ~ Bernoulli(x)`; the bit is then passed through
//! ε-randomized response and debiased at the server (Section 2). The paper
//! reports this method (together with Laplace noise) exhibited "errors 2-3
//! times larger in all cases" than the leading baselines — we keep it so the
//! comparison is reproducible.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::randomized_response::RandomizedResponse;
use crate::range::ValueRange;
use crate::traits::MeanMechanism;

/// Randomized rounding + randomized response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DuchiOneBit {
    /// Declared input range.
    pub range: ValueRange,
    rr: RandomizedResponse,
}

impl DuchiOneBit {
    /// Creates the mechanism with privacy parameter `epsilon` over `range`.
    ///
    /// # Panics
    /// Panics unless `epsilon > 0`.
    #[must_use]
    pub fn new(range: ValueRange, epsilon: f64) -> Self {
        Self {
            range,
            rr: RandomizedResponse::from_epsilon(epsilon),
        }
    }

    /// Client side: one randomized bit for value `x`.
    pub fn randomize(&self, x: f64, rng: &mut dyn Rng) -> bool {
        let t = self.range.to_unit(x);
        let bit = rng.random_bool(t);
        self.rr.flip(bit, rng)
    }

    /// Server side: unbiased mean estimate from the reported bits.
    ///
    /// # Panics
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn aggregate(&self, reports: &[bool]) -> f64 {
        assert!(!reports.is_empty(), "need at least one report");
        let ones = reports.iter().filter(|&&b| b).count() as f64;
        let report_mean = ones / reports.len() as f64;
        self.range.from_unit(self.rr.debias_mean(report_mean))
    }
}

impl MeanMechanism for DuchiOneBit {
    fn name(&self) -> String {
        "duchi".into()
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        let reports: Vec<bool> = values.iter().map(|&x| self.randomize(x, rng)).collect();
        self.aggregate(&reports)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.rr.epsilon())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_to_true_mean() {
        let range = ValueRange::new(0.0, 100.0);
        let mech = DuchiOneBit::new(range, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<f64> = (0..200_000).map(|i| (i % 80) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let est = mech.estimate_mean(&values, &mut rng);
        assert!((est - truth).abs() < 1.0, "est {est} truth {truth}");
    }

    #[test]
    fn extreme_values_estimate_correctly() {
        let range = ValueRange::new(0.0, 10.0);
        let mech = DuchiOneBit::new(range, 3.0);
        let mut rng = StdRng::seed_from_u64(2);
        let zeros = vec![0.0; 100_000];
        let est = mech.estimate_mean(&zeros, &mut rng);
        assert!(est.abs() < 0.2, "all-zero estimate {est}");
        let tens = vec![10.0; 100_000];
        let est = mech.estimate_mean(&tens, &mut rng);
        assert!((est - 10.0).abs() < 0.2, "all-ten estimate {est}");
    }

    #[test]
    fn higher_epsilon_reduces_error() {
        let range = ValueRange::new(0.0, 100.0);
        let values: Vec<f64> = (0..20_000).map(|i| 30.0 + (i % 10) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let trial_err = |eps: f64| {
            let mech = DuchiOneBit::new(range, eps);
            let mut sq = 0.0;
            for s in 0..20 {
                let mut rng = StdRng::seed_from_u64(s);
                let e = mech.estimate_mean(&values, &mut rng);
                sq += (e - truth) * (e - truth);
            }
            (sq / 20.0).sqrt()
        };
        assert!(trial_err(4.0) < trial_err(0.5));
    }

    #[test]
    fn reports_epsilon() {
        let mech = DuchiOneBit::new(ValueRange::new(0.0, 1.0), 1.5);
        assert!((mech.epsilon().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one report")]
    fn aggregate_rejects_empty() {
        let mech = DuchiOneBit::new(ValueRange::new(0.0, 1.0), 1.0);
        let _ = mech.aggregate(&[]);
    }
}
