//! The Gaussian mechanism in the local model ((ε, δ)-LDP).
//!
//! Included as an additional additive-noise ablation alongside
//! [`crate::laplace`]: each client adds `N(0, σ²)` with the classical
//! calibration `σ = Δ √(2 ln(1.25/δ)) / ε` (valid for ε ≤ 1; we use it as the
//! conventional approximation elsewhere, as ablation not as a headline
//! guarantee).

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::range::ValueRange;
use crate::traits::MeanMechanism;

/// Per-client Gaussian noise over a declared range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMechanism {
    /// Declared input range.
    pub range: ValueRange,
    epsilon: f64,
    delta: f64,
}

impl GaussianMechanism {
    /// Creates the mechanism with the classical σ calibration.
    ///
    /// # Panics
    /// Panics unless `epsilon > 0` and `0 < delta < 1`.
    #[must_use]
    pub fn new(range: ValueRange, epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite());
        assert!(delta > 0.0 && delta < 1.0);
        Self {
            range,
            epsilon,
            delta,
        }
    }

    /// Noise standard deviation in unit scale (sensitivity 1).
    #[must_use]
    pub fn sigma(&self) -> f64 {
        (2.0 * (1.25 / self.delta).ln()).sqrt() / self.epsilon
    }

    /// Draws one standard normal variate (Box–Muller).
    pub fn sample_standard_normal(rng: &mut dyn Rng) -> f64 {
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Client side: scaled value plus Gaussian noise.
    pub fn randomize(&self, x: f64, rng: &mut dyn Rng) -> f64 {
        self.range.to_unit(x) + self.sigma() * Self::sample_standard_normal(rng)
    }

    /// Server side: mean of noisy reports, rescaled.
    ///
    /// # Panics
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn aggregate(&self, reports: &[f64]) -> f64 {
        assert!(!reports.is_empty(), "need at least one report");
        let mean = reports.iter().sum::<f64>() / reports.len() as f64;
        self.range.from_unit(mean)
    }
}

impl MeanMechanism for GaussianMechanism {
    fn name(&self) -> String {
        "gaussian".into()
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        let reports: Vec<f64> = values.iter().map(|&x| self.randomize(x, rng)).collect();
        self.aggregate(&reports)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigma_calibration() {
        let m = GaussianMechanism::new(ValueRange::new(0.0, 1.0), 1.0, 1e-6);
        let expected = (2.0 * (1.25e6_f64).ln()).sqrt();
        assert!((m.sigma() - expected).abs() < 1e-12);
    }

    #[test]
    fn noise_is_standard_normal() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 400_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| GaussianMechanism::sample_standard_normal(&mut rng))
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01);
        assert!((var - 1.0).abs() < 0.02);
    }

    #[test]
    fn converges_to_true_mean() {
        let m = GaussianMechanism::new(ValueRange::new(0.0, 100.0), 1.0, 1e-5);
        let values: Vec<f64> = (0..400_000).map(|i| 40.0 + (i % 20) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(2);
        let est = m.estimate_mean(&values, &mut rng);
        assert!((est - truth).abs() < 2.0, "est {est} truth {truth}");
    }
}
