//! The Laplace mechanism in the local model.
//!
//! Each client adds `Lap(Δ/ε)` noise to its own (scaled) value, where the
//! sensitivity Δ equals the declared range width. The paper omits this
//! baseline from its plots because "the observed error was considerably
//! higher than others, as expected" — this module lets that claim be
//! verified (see the `ablate` drivers in `fednum-bench`).

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::range::ValueRange;
use crate::traits::MeanMechanism;

/// Per-client Laplace noise over a declared range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaplaceMechanism {
    /// Declared input range.
    pub range: ValueRange,
    epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics unless `epsilon > 0` and finite.
    #[must_use]
    pub fn new(range: ValueRange, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite"
        );
        Self { range, epsilon }
    }

    /// Draws one `Lap(0, scale)` variate by inverse CDF.
    pub fn sample_laplace(scale: f64, rng: &mut dyn Rng) -> f64 {
        // u uniform in (-1/2, 1/2]; inverse CDF of the Laplace distribution.
        let u: f64 = rng.random::<f64>() - 0.5;
        -scale * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }

    /// Client side: scaled value plus `Lap(1/ε)` (unit-scale sensitivity 1).
    pub fn randomize(&self, x: f64, rng: &mut dyn Rng) -> f64 {
        self.range.to_unit(x) + Self::sample_laplace(1.0 / self.epsilon, rng)
    }

    /// Server side: mean of noisy reports, rescaled.
    ///
    /// # Panics
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn aggregate(&self, reports: &[f64]) -> f64 {
        assert!(!reports.is_empty(), "need at least one report");
        let mean = reports.iter().sum::<f64>() / reports.len() as f64;
        self.range.from_unit(mean)
    }

    /// Per-report noise variance in unit scale: `2 / ε²`.
    #[must_use]
    pub fn noise_variance(&self) -> f64 {
        2.0 / (self.epsilon * self.epsilon)
    }
}

impl MeanMechanism for LaplaceMechanism {
    fn name(&self) -> String {
        "laplace".into()
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        let reports: Vec<f64> = values.iter().map(|&x| self.randomize(x, rng)).collect();
        self.aggregate(&reports)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_noise_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let scale = 2.0;
        let n = 400_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| LaplaceMechanism::sample_laplace(scale, &mut rng))
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        // Var = 2 * scale^2 = 8.
        assert!((var / 8.0 - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn converges_to_true_mean() {
        let m = LaplaceMechanism::new(ValueRange::new(0.0, 100.0), 1.0);
        let values: Vec<f64> = (0..200_000).map(|i| 20.0 + (i % 50) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(2);
        let est = m.estimate_mean(&values, &mut rng);
        assert!((est - truth).abs() < 1.5, "est {est} truth {truth}");
    }

    #[test]
    fn noise_variance_formula() {
        let m = LaplaceMechanism::new(ValueRange::new(0.0, 1.0), 0.5);
        assert!((m.noise_variance() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn laplace_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let pos = (0..n)
            .filter(|_| LaplaceMechanism::sample_laplace(1.0, &mut rng) > 0.0)
            .count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }
}
