//! The hybrid mechanism of Wang et al. (ICDE 2019).
//!
//! Combines the piecewise mechanism with Duchi et al.'s one-bit mechanism:
//! for ε above a small constant, each client uses the piecewise mechanism
//! with probability `β = 1 − e^{−ε/2}` and the Duchi mechanism otherwise;
//! below the constant it reduces to pure Duchi. Wang et al. show the mix
//! never has worse variance than either component. Included as an extra
//! baseline beyond the paper's plotted set, completing the Wang et al.
//! family the "piecewise" baseline comes from.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::duchi::DuchiOneBit;
use crate::piecewise::PiecewiseMechanism;
use crate::range::ValueRange;
use crate::traits::MeanMechanism;

/// ε threshold below which the hybrid degenerates to pure Duchi
/// (Wang et al., Theorem 4 constant ≈ 0.61).
const PURE_DUCHI_EPSILON: f64 = 0.61;

/// The hybrid PM/Duchi mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridMechanism {
    /// Declared input range.
    pub range: ValueRange,
    epsilon: f64,
    piecewise: PiecewiseMechanism,
    duchi: DuchiOneBit,
}

/// One hybrid report: which component randomized the value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HybridReport {
    /// Piecewise output (a real in `[-C, C]`, unit scale).
    Piecewise(f64),
    /// Duchi output (a randomized bit).
    Duchi(bool),
}

impl HybridMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics unless `epsilon > 0` and finite.
    #[must_use]
    pub fn new(range: ValueRange, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive and finite"
        );
        Self {
            range,
            epsilon,
            piecewise: PiecewiseMechanism::new(range, epsilon),
            duchi: DuchiOneBit::new(range, epsilon),
        }
    }

    /// The probability of routing a report through the piecewise component.
    #[must_use]
    pub fn beta(&self) -> f64 {
        if self.epsilon <= PURE_DUCHI_EPSILON {
            0.0
        } else {
            1.0 - (-self.epsilon / 2.0).exp()
        }
    }

    /// Client side: randomizes one value through a coin-selected component.
    pub fn randomize(&self, x: f64, rng: &mut dyn Rng) -> HybridReport {
        let beta = self.beta();
        if beta > 0.0 && rng.random_bool(beta) {
            HybridReport::Piecewise(self.piecewise.randomize(x, rng))
        } else {
            HybridReport::Duchi(self.duchi.randomize(x, rng))
        }
    }

    /// Server side: each component's reports are unbiased for the mean, so
    /// the pooled per-report estimates average directly.
    ///
    /// # Panics
    /// Panics if `reports` is empty.
    #[must_use]
    pub fn aggregate(&self, reports: &[HybridReport]) -> f64 {
        assert!(!reports.is_empty(), "need at least one report");
        // Split by component and aggregate each with its own debiasing, then
        // recombine weighted by report counts.
        let mut pm_reports = Vec::new();
        let mut duchi_reports = Vec::new();
        for r in reports {
            match r {
                HybridReport::Piecewise(v) => pm_reports.push(*v),
                HybridReport::Duchi(b) => duchi_reports.push(*b),
            }
        }
        let total = reports.len() as f64;
        let mut estimate = 0.0;
        if !pm_reports.is_empty() {
            estimate += self.piecewise.aggregate(&pm_reports) * (pm_reports.len() as f64 / total);
        }
        if !duchi_reports.is_empty() {
            estimate += self.duchi.aggregate(&duchi_reports) * (duchi_reports.len() as f64 / total);
        }
        estimate
    }
}

impl MeanMechanism for HybridMechanism {
    fn name(&self) -> String {
        "hybrid".into()
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        let reports: Vec<HybridReport> = values.iter().map(|&x| self.randomize(x, rng)).collect();
        self.aggregate(&reports)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_schedule() {
        let range = ValueRange::new(0.0, 1.0);
        assert_eq!(HybridMechanism::new(range, 0.5).beta(), 0.0);
        let b1 = HybridMechanism::new(range, 1.0).beta();
        assert!((b1 - (1.0 - (-0.5f64).exp())).abs() < 1e-12);
        let b4 = HybridMechanism::new(range, 4.0).beta();
        assert!(b4 > b1);
    }

    #[test]
    fn low_epsilon_is_pure_duchi() {
        let m = HybridMechanism::new(ValueRange::new(0.0, 1.0), 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(matches!(m.randomize(0.5, &mut rng), HybridReport::Duchi(_)));
        }
    }

    #[test]
    fn converges_to_true_mean() {
        let m = HybridMechanism::new(ValueRange::new(0.0, 255.0), 2.0);
        let values: Vec<f64> = (0..200_000).map(|i| 40.0 + (i % 60) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(2);
        let est = m.estimate_mean(&values, &mut rng);
        assert!((est - truth).abs() < 2.0, "est {est} truth {truth}");
    }

    #[test]
    fn hybrid_not_worse_than_duchi_alone() {
        let range = ValueRange::new(0.0, 255.0);
        let values: Vec<f64> = (0..20_000).map(|i| 100.0 + (i % 30) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let rmse = |f: &dyn Fn(u64) -> f64| {
            let mut sq = 0.0;
            for s in 0..30u64 {
                let e = f(s);
                sq += (e - truth) * (e - truth);
            }
            (sq / 30.0).sqrt()
        };
        let eps = 2.0;
        let hybrid = HybridMechanism::new(range, eps);
        let duchi = DuchiOneBit::new(range, eps);
        let r_h = rmse(&|s| hybrid.estimate_mean(&values, &mut StdRng::seed_from_u64(s)));
        let r_d = rmse(&|s| duchi.estimate_mean(&values, &mut StdRng::seed_from_u64(s)));
        assert!(r_h < r_d * 1.1, "hybrid {r_h} vs duchi {r_d}");
    }

    #[test]
    fn component_mix_matches_beta() {
        let m = HybridMechanism::new(ValueRange::new(0.0, 1.0), 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let pm = (0..n)
            .filter(|_| matches!(m.randomize(0.4, &mut rng), HybridReport::Piecewise(_)))
            .count();
        let frac = pm as f64 / f64::from(n);
        assert!((frac - m.beta()).abs() < 0.01, "pm fraction {frac}");
    }
}
