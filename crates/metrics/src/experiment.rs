//! Seeded repetition harness.
//!
//! Every experiment in the workspace is a function `seed -> (estimate, truth)`
//! repeated `R` times with derived seeds. Seeds are derived deterministically
//! from a base seed with splitmix64, so experiments are reproducible, trials
//! are independent, and two methods evaluated under the same base seed see the
//! same per-trial seeds (paired comparisons).

use crate::error::{ErrorCollector, ErrorSummary};

/// Configuration for a repeated trial run.
#[derive(Debug, Clone, Copy)]
pub struct Repetitions {
    /// Number of independent trials (the paper uses 100).
    pub trials: u32,
    /// Base seed; each trial `t` runs with `derive_seed(base_seed, t)`.
    pub base_seed: u64,
}

impl Default for Repetitions {
    fn default() -> Self {
        Self {
            trials: 100,
            base_seed: 0xED87_2024,
        }
    }
}

impl Repetitions {
    /// Creates a configuration with the given trial count and seed.
    #[must_use]
    pub fn new(trials: u32, base_seed: u64) -> Self {
        Self { trials, base_seed }
    }

    /// The derived seed for trial index `t`.
    #[must_use]
    pub fn seed_for(&self, t: u32) -> u64 {
        derive_seed(self.base_seed, u64::from(t))
    }
}

/// Derives a statistically independent child seed from `(base, index)` using
/// the splitmix64 finalizer. Deterministic and collision-resistant for the
/// scales used here.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `trial` for each derived seed and summarizes the error.
///
/// `trial` returns `(estimate, ground_truth)` for a single repetition.
pub fn run_repetitions<F>(reps: Repetitions, mut trial: F) -> ErrorSummary
where
    F: FnMut(u64) -> (f64, f64),
{
    let mut collector = ErrorCollector::new();
    for t in 0..reps.trials {
        let (estimate, truth) = trial(reps.seed_for(t));
        collector.push(estimate, truth);
    }
    collector.summary()
}

/// Like [`run_repetitions`] but also hands the trial its index, for
/// experiments that stratify by repetition.
pub fn run_repetitions_with<F>(reps: Repetitions, mut trial: F) -> ErrorSummary
where
    F: FnMut(u32, u64) -> (f64, f64),
{
    let mut collector = ErrorCollector::new();
    for t in 0..reps.trials {
        let (estimate, truth) = trial(t, reps.seed_for(t));
        collector.push(estimate, truth);
    }
    collector.summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(42, i)), "collision at {i}");
        }
    }

    #[test]
    fn derived_seeds_differ_across_bases() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_ne!(derive_seed(1, 5), derive_seed(2, 5));
    }

    #[test]
    fn repetitions_are_deterministic() {
        let reps = Repetitions::new(50, 7);
        let run = || {
            run_repetitions(reps, |seed| {
                // Pseudo-estimator: deterministic function of the seed.
                let noise = (seed % 1000) as f64 / 1000.0 - 0.5;
                (10.0 + noise, 10.0)
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.rmse, b.rmse);
        assert_eq!(a.trials, 50);
    }

    #[test]
    fn trial_indices_are_sequential() {
        let reps = Repetitions::new(5, 0);
        let mut indices = vec![];
        run_repetitions_with(reps, |t, _| {
            indices.push(t);
            (0.0, 1.0)
        });
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_base_seed_gives_paired_trials() {
        let reps = Repetitions::new(10, 99);
        let mut seeds_a = vec![];
        let mut seeds_b = vec![];
        run_repetitions(reps, |s| {
            seeds_a.push(s);
            (0.0, 1.0)
        });
        run_repetitions(reps, |s| {
            seeds_b.push(s);
            (0.0, 1.0)
        });
        assert_eq!(seeds_a, seeds_b);
    }
}
