//! Series containers and plain-text / CSV / JSON rendering.
//!
//! Each figure driver produces a [`SeriesTable`]: a shared x-axis and one
//! [`Series`] per method, mirroring the lines of the paper's plots. Rendering
//! is deliberately dependency-free (aligned text + CSV) with a JSON export
//! for machine consumption.

use serde::{Deserialize, Serialize};

use crate::error::ErrorSummary;

/// One point of a method's curve: x-coordinate plus the error summary
/// measured there.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// X-axis value (e.g. μ, n, bit depth, ε, threshold).
    pub x: f64,
    /// Error summary at this point.
    pub summary: ErrorSummary,
}

/// A named curve (one method) across the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Method label, e.g. `"adaptive"` or `"dithering"`.
    pub name: String,
    /// Points in sweep order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, summary: ErrorSummary) {
        self.points.push(SeriesPoint { x, summary });
    }
}

/// A complete figure panel: axis metadata plus one series per method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesTable {
    /// Panel identifier, e.g. `"fig1a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Metric name plotted on y, e.g. `"NRMSE"` or `"RMSE"`.
    pub y_metric: Metric,
    /// One series per method.
    pub series: Vec<Series>,
}

/// Which field of [`ErrorSummary`] a table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Normalized RMSE (`rmse / mean_truth`).
    Nrmse,
    /// Absolute RMSE.
    Rmse,
}

impl Metric {
    /// Extracts this metric's value from a summary.
    #[must_use]
    pub fn value(&self, s: &ErrorSummary) -> f64 {
        match self {
            Metric::Nrmse => s.nrmse,
            Metric::Rmse => s.rmse,
        }
    }

    /// Label used in table headers.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Nrmse => "NRMSE",
            Metric::Rmse => "RMSE",
        }
    }
}

impl SeriesTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_metric: Metric,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_metric,
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The sorted union of x values across all series.
    #[must_use]
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x values"));
        xs.dedup();
        xs
    }

    /// Renders an aligned text table: one row per x value, one column per
    /// method, cell = metric value (± standard error in parentheses).
    #[must_use]
    pub fn render_text(&self) -> String {
        let xs = self.x_values();
        let mut header: Vec<String> = vec![self.x_label.clone()];
        for s in &self.series {
            header.push(format!("{} {}", s.name, self.y_metric.label()));
        }
        let mut rows: Vec<Vec<String>> = vec![header];
        for &x in &xs {
            let mut row = vec![format_num(x)];
            for s in &self.series {
                let cell = s
                    .points
                    .iter()
                    .find(|p| p.x == x)
                    .map(|p| {
                        format!(
                            "{} (±{})",
                            format_num(self.y_metric.value(&p.summary)),
                            format_num(p.summary.rmse_std_error / p.summary.mean_truth.max(1e-300))
                        )
                    })
                    .unwrap_or_else(|| "-".to_string());
                row.push(cell);
            }
            rows.push(row);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        out.push_str(&format!("== {} [{}] ==\n", self.title, self.id));
        for (i, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
            if i == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }

    /// Renders CSV with columns `x,<method>...`.
    #[must_use]
    pub fn render_csv(&self) -> String {
        let xs = self.x_values();
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', "_"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name.replace(',', "_"));
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(p) = s.points.iter().find(|p| p.x == x) {
                    out.push_str(&format!("{}", self.y_metric.value(&p.summary)));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the whole panel to pretty JSON.
    ///
    /// # Panics
    /// Never: all fields are serializable.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SeriesTable is serializable")
    }
}

fn format_num(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    let a = v.abs();
    if a == 0.0 {
        "0".to_string()
    } else if !(0.001..1000.0).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 1.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorSummary;

    fn summary(rmse: f64, truth: f64) -> ErrorSummary {
        ErrorSummary::from_pairs([(truth + rmse, truth)])
    }

    fn sample_table() -> SeriesTable {
        let mut t = SeriesTable::new("fig0", "Demo", "n", Metric::Nrmse);
        let mut a = Series::new("adaptive");
        a.push(1000.0, summary(1.0, 100.0));
        a.push(10_000.0, summary(0.3, 100.0));
        let mut d = Series::new("dithering");
        d.push(1000.0, summary(2.0, 100.0));
        d.push(10_000.0, summary(0.9, 100.0));
        t.push_series(a);
        t.push_series(d);
        t
    }

    #[test]
    fn x_values_sorted_dedup() {
        let t = sample_table();
        assert_eq!(t.x_values(), vec![1000.0, 10_000.0]);
    }

    #[test]
    fn text_render_contains_all_methods() {
        let txt = sample_table().render_text();
        assert!(txt.contains("adaptive"));
        assert!(txt.contains("dithering"));
        assert!(txt.contains("Demo"));
        // Two data rows plus header plus separator.
        assert_eq!(txt.lines().count(), 5);
    }

    #[test]
    fn csv_render_round_numbers() {
        let csv = sample_table().render_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "n,adaptive,dithering");
        assert!(lines.next().unwrap().starts_with("1000,"));
    }

    #[test]
    fn json_round_trips() {
        let t = sample_table();
        let j = t.to_json();
        let back: SeriesTable = serde_json::from_str(&j).unwrap();
        assert_eq!(back.series.len(), 2);
        assert_eq!(back.id, "fig0");
    }

    #[test]
    fn metric_selects_field() {
        let s = summary(2.0, 10.0);
        assert!((Metric::Rmse.value(&s) - 2.0).abs() < 1e-12);
        assert!((Metric::Nrmse.value(&s) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn missing_points_render_dash() {
        let mut t = SeriesTable::new("x", "t", "x", Metric::Rmse);
        let mut a = Series::new("a");
        a.push(1.0, summary(1.0, 1.0));
        let mut b = Series::new("b");
        b.push(2.0, summary(1.0, 1.0));
        t.push_series(a);
        t.push_series(b);
        let txt = t.render_text();
        assert!(txt.contains('-'));
    }
}
