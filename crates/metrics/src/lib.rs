//! Error metrics, running statistics, and a seeded experiment harness.
//!
//! This crate is the measurement substrate shared by every experiment in the
//! workspace. It deliberately contains no protocol logic: it knows how to
//!
//! * accumulate streaming moments ([`RunningStats`], Welford's algorithm),
//! * summarize estimator error over repeated seeded trials
//!   ([`ErrorSummary`], [`ErrorCollector`]), matching the paper's
//!   normalized-RMSE methodology (Section 4: "compute the mean of the squared
//!   difference over 100 independent repetitions, then divide by the true
//!   mean"),
//! * run seeded repetition sweeps ([`experiment`]), and
//! * render series as aligned text tables / CSV / JSON ([`table`]).
//!
//! Everything is deterministic given a base seed, so figure drivers and tests
//! reproduce bit-identical numbers.

pub mod error;
pub mod experiment;
pub mod stats;
pub mod table;

pub use error::{ErrorCollector, ErrorSummary};
pub use experiment::{run_repetitions, run_repetitions_with, Repetitions};
pub use stats::RunningStats;
pub use table::{Series, SeriesPoint, SeriesTable};
