//! Streaming (single-pass) moment accumulation.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm), with support for merging partial accumulators.
///
/// Used throughout the workspace wherever an exact ground-truth mean or
/// variance of a population is needed, and to summarize repeated experiment
/// trials.
///
/// # Examples
///
/// ```
/// use fednum_metrics::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice in one pass.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n−1 denominator); 0.0 for fewer than two
    /// observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (n denominator); 0.0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn single_value() {
        let s = RunningStats::from_slice(&[7.5]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 7.5);
        assert_eq!(s.max(), 7.5);
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs = [3.1, -2.7, 0.0, 14.9, 5.5, 5.5, -8.25];
        let s = RunningStats::from_slice(&xs);
        let (mean, var) = naive_mean_var(&xs);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -8.25);
        assert_eq!(s.max(), 14.9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let mut a = RunningStats::from_slice(&xs[..3]);
        let b = RunningStats::from_slice(&xs[3..]);
        a.merge(&b);
        let full = RunningStats::from_slice(&xs);
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-12);
        assert!((a.variance() - full.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 5.0, 9.0];
        let mut a = RunningStats::from_slice(&xs);
        a.merge(&RunningStats::new());
        assert!((a.mean() - 5.0).abs() < 1e-12);
        let mut e = RunningStats::new();
        e.merge(&a);
        assert!((e.mean() - 5.0).abs() < 1e-12);
        assert_eq!(e.count(), 3);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Classic catastrophic-cancellation scenario for naive sum-of-squares.
        let base = 1e9;
        let xs: Vec<f64> = (0..1000).map(|i| base + (i % 10) as f64).collect();
        let s = RunningStats::from_slice(&xs);
        let (_, var) = naive_mean_var(&xs);
        assert!((s.variance() - var).abs() / var < 1e-6);
    }

    #[test]
    fn population_variance_denominator() {
        let s = RunningStats::from_slice(&[0.0, 2.0]);
        assert!((s.variance() - 2.0).abs() < 1e-12);
        assert!((s.population_variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collects_from_iterator() {
        let s: RunningStats = (1..=5).map(f64::from).collect();
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }
}
