//! Estimator-error summaries over repeated trials.

use serde::{Deserialize, Serialize};

use crate::stats::RunningStats;

/// Collects `(estimate, truth)` pairs from repeated trials of an estimator
/// and produces an [`ErrorSummary`].
///
/// The paper's headline metric is normalized RMSE: RMSE of the estimate over
/// 100 repetitions divided by the true value (Section 4). `truth` may vary
/// between trials (e.g., when each trial redraws the population), in which
/// case normalization uses the mean absolute truth.
#[derive(Debug, Clone, Default)]
pub struct ErrorCollector {
    sq_err: RunningStats,
    abs_err: RunningStats,
    err: RunningStats,
    truth: RunningStats,
    estimates: RunningStats,
}

impl ErrorCollector {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial.
    pub fn push(&mut self, estimate: f64, truth: f64) {
        let e = estimate - truth;
        self.sq_err.push(e * e);
        self.abs_err.push(e.abs());
        self.err.push(e);
        self.truth.push(truth.abs());
        self.estimates.push(estimate);
    }

    /// Number of recorded trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.sq_err.count()
    }

    /// Finalizes the summary.
    #[must_use]
    pub fn summary(&self) -> ErrorSummary {
        let mse = self.sq_err.mean();
        let rmse = mse.sqrt();
        let denom = self.truth.mean();
        let nrmse = if denom > 0.0 { rmse / denom } else { f64::NAN };
        // Delta method: se(rmse) ≈ se(mse) / (2 rmse).
        let rmse_se = if rmse > 0.0 {
            self.sq_err.std_error() / (2.0 * rmse)
        } else {
            0.0
        };
        ErrorSummary {
            trials: self.sq_err.count(),
            rmse,
            nrmse,
            rmse_std_error: rmse_se,
            mae: self.abs_err.mean(),
            bias: self.err.mean(),
            mean_truth: self.truth.mean(),
            mean_estimate: self.estimates.mean(),
        }
    }
}

/// Summary statistics of an estimator's error over repeated trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Number of repetitions aggregated.
    pub trials: u64,
    /// Root-mean-squared error.
    pub rmse: f64,
    /// RMSE divided by the (mean absolute) true value — the paper's NRMSE.
    pub nrmse: f64,
    /// Standard error of the RMSE estimate (delta method), used for the
    /// paper's error bars.
    pub rmse_std_error: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Mean signed error; ≈ 0 for unbiased estimators.
    pub bias: f64,
    /// Mean absolute ground-truth value (NRMSE denominator).
    pub mean_truth: f64,
    /// Mean of the estimates.
    pub mean_estimate: f64,
}

impl ErrorSummary {
    /// Collects a summary directly from an iterator of `(estimate, truth)`
    /// pairs.
    pub fn from_pairs<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Self {
        let mut c = ErrorCollector::new();
        for (e, t) in pairs {
            c.push(e, t);
        }
        c.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimates_have_zero_error() {
        let s = ErrorSummary::from_pairs([(5.0, 5.0), (7.0, 7.0)]);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.nrmse, 0.0);
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.bias, 0.0);
        assert_eq!(s.trials, 2);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        // Errors: +1, -1, +2 → MSE = (1+1+4)/3 = 2.
        let s = ErrorSummary::from_pairs([(11.0, 10.0), (9.0, 10.0), (12.0, 10.0)]);
        assert!((s.rmse - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((s.nrmse - 2.0_f64.sqrt() / 10.0).abs() < 1e-12);
        assert!((s.mae - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.bias - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nrmse_uses_mean_absolute_truth() {
        let s = ErrorSummary::from_pairs([(1.0, 2.0), (5.0, 4.0)]);
        assert!((s.mean_truth - 3.0).abs() < 1e-12);
        assert!((s.nrmse - s.rmse / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nrmse_nan_for_zero_truth() {
        let s = ErrorSummary::from_pairs([(0.5, 0.0)]);
        assert!(s.nrmse.is_nan());
        assert!(s.rmse > 0.0);
    }

    #[test]
    fn std_error_shrinks_with_trials() {
        let few = ErrorSummary::from_pairs((0..10).map(|i| (10.0 + (i % 3) as f64, 10.0)));
        let many = ErrorSummary::from_pairs((0..1000).map(|i| (10.0 + (i % 3) as f64, 10.0)));
        assert!(many.rmse_std_error < few.rmse_std_error);
    }

    #[test]
    fn serializes_to_json() {
        let s = ErrorSummary::from_pairs([(1.0, 1.0)]);
        let j = serde_json::to_string(&s).unwrap();
        assert!(j.contains("\"rmse\""));
        let back: ErrorSummary = serde_json::from_str(&j).unwrap();
        assert_eq!(back.trials, 1);
    }
}
