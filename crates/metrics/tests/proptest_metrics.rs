//! Property tests on the measurement substrate.

use fednum_metrics::experiment::derive_seed;
use fednum_metrics::table::{Metric, Series, SeriesTable};
use fednum_metrics::{ErrorSummary, RunningStats};
use proptest::prelude::*;

proptest! {
    /// Welford matches the naive two-pass computation for arbitrary data.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let s = RunningStats::from_slice(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-6 * var.abs().max(1.0));
    }

    /// Merging any split of the data matches a single pass.
    #[test]
    fn welford_merge_split_invariant(
        xs in prop::collection::vec(-1e3f64..1e3, 2..120),
        at in 0usize..120,
    ) {
        let split = at % (xs.len() + 1);
        let mut a = RunningStats::from_slice(&xs[..split]);
        let b = RunningStats::from_slice(&xs[split..]);
        a.merge(&b);
        let whole = RunningStats::from_slice(&xs);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    /// RMSE dominates |bias| and MAE ≤ RMSE (Jensen), for any trial set.
    #[test]
    fn error_summary_inequalities(
        pairs in prop::collection::vec((-1e3f64..1e3, 1.0f64..1e3), 1..100),
    ) {
        let s = ErrorSummary::from_pairs(pairs.iter().copied());
        prop_assert!(s.rmse + 1e-9 >= s.bias.abs());
        prop_assert!(s.rmse + 1e-9 >= s.mae);
        prop_assert!(s.nrmse >= 0.0);
    }

    /// Derived seeds are injective on small index sets.
    #[test]
    fn derive_seed_injective(base in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..512u64 {
            prop_assert!(seen.insert(derive_seed(base, i)));
        }
    }

    /// Tables render every series and x value they were given.
    #[test]
    fn table_render_complete(
        names in prop::collection::hash_set("[a-z]{3,8}", 1..5),
        xs in prop::collection::btree_set(1u32..1000, 1..8),
    ) {
        let mut table = SeriesTable::new("p", "prop", "x", Metric::Rmse);
        for name in &names {
            let mut series = Series::new(name.clone());
            for &x in &xs {
                series.push(f64::from(x), ErrorSummary::from_pairs([(1.5, 1.0)]));
            }
            table.push_series(series);
        }
        let text = table.render_text();
        for name in &names {
            prop_assert!(text.contains(name.as_str()));
        }
        prop_assert_eq!(table.x_values().len(), xs.len());
        // CSV has one header plus one row per x.
        prop_assert_eq!(table.render_csv().lines().count(), xs.len() + 1);
    }
}
