//! Deterministic `std::thread` worker pool for per-shard jobs.
//!
//! The pool hands out job indices through an atomic counter and stores each
//! result in its index slot, so the returned vector is always in job order
//! no matter which worker ran which job or in what interleaving. Combined
//! with index-derived seeds (each job builds its own RNG from its index),
//! pooled execution is bit-identical to sequential execution — the property
//! the parity suite pins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `jobs` invocations of `job(index)` on up to `workers` OS threads
/// and returns the results in index order.
///
/// `workers <= 1` (or a single job) short-circuits to a plain sequential
/// loop on the calling thread — the reference execution the pooled path
/// must match bit-for-bit.
///
/// # Panics
/// Propagates a panic from any job after the scope joins.
pub fn run_indexed<T, F>(workers: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(jobs);
    if workers == 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let job = &job;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("pool finished with an unfilled slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 9] {
            let out = run_indexed(workers, 17, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pooled_matches_sequential_for_seeded_jobs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let job = |i: usize| {
            let mut rng = StdRng::seed_from_u64(0xBEEF ^ i as u64);
            (0..8).map(|_| rng.random::<u64>()).collect::<Vec<_>>()
        };
        let sequential = run_indexed(1, 12, job);
        for workers in [2, 3, 8] {
            assert_eq!(run_indexed(workers, 12, job), sequential);
        }
    }

    #[test]
    fn zero_jobs_and_excess_workers_are_fine() {
        assert!(run_indexed::<u8, _>(4, 0, |_| unreachable!()).is_empty());
        assert_eq!(run_indexed(64, 2, |i| i), vec![0, 1]);
    }
}
