//! Hierarchy configuration and per-instance seed derivation.

use fednum_fedsim::error::FedError;
use fednum_fedsim::round::SecAggSettings;
use fednum_secagg::instance_seed;

/// Tier tag for per-shard secagg instances in [`instance_seed`] derivation.
pub const TIER_SHARD: u32 = 1;
/// Tier tag for the cross-shard merge instance.
pub const TIER_MERGE: u32 = 2;
/// Tier tag for a shard's straggler-salvage instance: the follow-up
/// aggregation over re-admitted late reporters must derive its own key
/// graph, never reusing shares from the shard's base (possibly aborted)
/// instance.
pub const TIER_SALVAGE_SHARD: u32 = 3;
/// Tier tag for the salvage merge instance over recovered shard sums.
pub const TIER_SALVAGE_MERGE: u32 = 4;

/// Parameters of a two-tier secure-aggregation hierarchy: K per-shard
/// instances feeding one merge instance among the K shard aggregators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierSecConfig {
    /// Number of shards K (and of shard-aggregator parties in the merge).
    pub shards: usize,
    /// Shard-tier settings: Shamir threshold as a fraction of each shard's
    /// cohort, and the pairwise-mask graph degree within a shard.
    pub shard: SecAggSettings,
    /// Shamir threshold of the merge instance: how many of the K shard
    /// aggregators must survive unmasking.
    pub merge_threshold: usize,
    /// Parent session seed; every tier/shard instance derives its own
    /// independent seed (and with it key graph) from this.
    pub session_seed: u64,
}

impl HierSecConfig {
    /// Validating constructor.
    ///
    /// # Errors
    /// [`FedError::InvalidConfig`] unless `shards >= 2`,
    /// `1 <= merge_threshold <= shards`, and
    /// `0 < shard.threshold_fraction <= 1` (which guarantees every
    /// per-shard threshold stays within its shard's cohort size).
    pub fn try_new(
        shards: usize,
        shard: SecAggSettings,
        merge_threshold: usize,
        session_seed: u64,
    ) -> Result<Self, FedError> {
        if shards < 2 {
            return Err(FedError::InvalidConfig(format!(
                "hierarchical secagg needs K >= 2 shards, got {shards}"
            )));
        }
        if merge_threshold < 1 || merge_threshold > shards {
            return Err(FedError::InvalidConfig(format!(
                "merge threshold must be in 1..=K={shards}, got {merge_threshold}"
            )));
        }
        if !(shard.threshold_fraction > 0.0 && shard.threshold_fraction <= 1.0) {
            return Err(FedError::InvalidConfig(format!(
                "per-shard threshold fraction must be in (0, 1] so the \
                 threshold cannot exceed the shard cohort, got {}",
                shard.threshold_fraction
            )));
        }
        if shard.neighbors == Some(0) {
            return Err(FedError::InvalidConfig(
                "per-shard mask-graph degree must be >= 1".into(),
            ));
        }
        Ok(Self {
            shards,
            shard,
            merge_threshold,
            session_seed,
        })
    }

    /// The Shamir threshold for a shard of `cohort` clients:
    /// `ceil(threshold_fraction * cohort)`, clamped into `1..=cohort`.
    #[must_use]
    pub fn shard_threshold(&self, cohort: usize) -> usize {
        ((self.shard.threshold_fraction * cohort as f64).ceil() as usize).clamp(1, cohort.max(1))
    }

    /// Checks concrete shard cohort sizes against the hierarchy: exactly K
    /// of them, none empty, and every per-shard threshold within its
    /// cohort.
    ///
    /// # Errors
    /// [`FedError::InvalidConfig`] on any violation.
    pub fn validate_cohorts(&self, sizes: &[usize]) -> Result<(), FedError> {
        if sizes.len() != self.shards {
            return Err(FedError::InvalidConfig(format!(
                "expected {} shard cohorts, got {}",
                self.shards,
                sizes.len()
            )));
        }
        for (s, &n) in sizes.iter().enumerate() {
            if n == 0 {
                return Err(FedError::InvalidConfig(format!("shard {s} has no clients")));
            }
            let threshold = self.shard_threshold(n);
            if threshold > n {
                return Err(FedError::InvalidConfig(format!(
                    "shard {s}: threshold {threshold} exceeds cohort size {n}"
                )));
            }
        }
        Ok(())
    }

    /// Session seed of shard `s`'s secagg instance (its own key graph).
    #[must_use]
    pub fn shard_session(&self, s: usize) -> u64 {
        instance_seed(self.session_seed, TIER_SHARD, s as u64)
    }

    /// Session seed of the merge instance among the shard aggregators.
    #[must_use]
    pub fn merge_session(&self) -> u64 {
        instance_seed(self.session_seed, TIER_MERGE, 0)
    }

    /// Session seed of shard `s`'s straggler-salvage instance — independent
    /// of [`shard_session`](Self::shard_session) so re-admitted clients are
    /// masked under fresh key material.
    #[must_use]
    pub fn salvage_shard_session(&self, s: usize) -> u64 {
        instance_seed(self.session_seed, TIER_SALVAGE_SHARD, s as u64)
    }

    /// Session seed of the second merge instance over late-recovered shard
    /// sums — independent of [`merge_session`](Self::merge_session) for the
    /// same mask-freshness reason.
    #[must_use]
    pub fn salvage_merge_session(&self) -> u64 {
        instance_seed(self.session_seed, TIER_SALVAGE_MERGE, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> SecAggSettings {
        SecAggSettings {
            threshold_fraction: 0.5,
            neighbors: Some(8),
        }
    }

    #[test]
    fn try_new_accepts_sane_hierarchies() {
        let c = HierSecConfig::try_new(4, settings(), 3, 7).unwrap();
        assert_eq!(c.shards, 4);
        assert_eq!(c.merge_threshold, 3);
    }

    #[test]
    fn try_new_rejects_single_shard() {
        assert!(matches!(
            HierSecConfig::try_new(1, settings(), 1, 0),
            Err(FedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn try_new_rejects_merge_threshold_above_k() {
        assert!(matches!(
            HierSecConfig::try_new(4, settings(), 5, 0),
            Err(FedError::InvalidConfig(_))
        ));
        assert!(matches!(
            HierSecConfig::try_new(4, settings(), 0, 0),
            Err(FedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn try_new_rejects_threshold_fraction_above_cohort() {
        let bad = SecAggSettings {
            threshold_fraction: 1.5,
            neighbors: Some(8),
        };
        assert!(matches!(
            HierSecConfig::try_new(4, bad, 2, 0),
            Err(FedError::InvalidConfig(_))
        ));
        let zero = SecAggSettings {
            threshold_fraction: 0.0,
            neighbors: Some(8),
        };
        assert!(matches!(
            HierSecConfig::try_new(4, zero, 2, 0),
            Err(FedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn shard_thresholds_stay_within_cohorts() {
        let c = HierSecConfig::try_new(3, settings(), 2, 1).unwrap();
        for n in 1..200 {
            let t = c.shard_threshold(n);
            assert!(t >= 1 && t <= n, "n={n} t={t}");
        }
        assert_eq!(c.shard_threshold(10), 5);
    }

    #[test]
    fn validate_cohorts_checks_count_and_emptiness() {
        let c = HierSecConfig::try_new(3, settings(), 2, 1).unwrap();
        assert!(c.validate_cohorts(&[5, 7, 9]).is_ok());
        assert!(c.validate_cohorts(&[5, 7]).is_err());
        assert!(c.validate_cohorts(&[5, 0, 9]).is_err());
    }

    #[test]
    fn instance_sessions_are_pairwise_distinct() {
        let c = HierSecConfig::try_new(8, settings(), 4, 99).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in 0..c.shards {
            assert!(seen.insert(c.shard_session(s)));
            assert!(seen.insert(c.salvage_shard_session(s)));
        }
        assert!(seen.insert(c.merge_session()));
        assert!(seen.insert(c.salvage_merge_session()));
        assert!(!seen.contains(&c.session_seed) || c.session_seed == 0);
    }
}
