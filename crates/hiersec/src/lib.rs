//! Two-tier hierarchical secure aggregation.
//!
//! The flat secure-aggregation protocol (`fednum-secagg`) cancels pairwise
//! masks only within one unmask domain, so a masked cohort cannot be split
//! across coordinator shards — which is exactly what the scaled transport
//! path does. This crate resolves that tension the way scalable
//! shuffled/hierarchical aggregation systems do (Ghazi et al.): run one
//! *independent* Bonawitz-style instance per shard, then treat the K
//! shard aggregators as the cohort of a second instance and securely
//! aggregate the per-shard sums.
//!
//! * [`config`] — [`HierSecConfig`]: shard count K, per-shard threshold
//!   settings, merge threshold, and per-instance session-seed derivation
//!   (every tier/shard gets its own key graph via
//!   `fednum_secagg::instance_seed`);
//! * [`pool`] — a deterministic `std::thread` worker pool: jobs carry
//!   index-derived seeds and results are returned in index order, so the
//!   pooled execution is bit-identical to sequential whatever the thread
//!   interleaving;
//! * [`tiers`] — the two-tier protocol core: per-shard instances whose
//!   `TooFewSurvivors` failures *degrade* (exclude) that shard, and the
//!   merge instance over shard sums, whose failure aborts the round.
//!
//! Trust model in one line: each shard aggregator learns only its own
//! shard's sum; the top-level coordinator learns only the masked per-shard
//! sums and their total — no individual shard sum, and no individual
//! client value anywhere.

pub mod config;
pub mod pool;
pub mod tiers;

pub use config::HierSecConfig;
pub use pool::run_indexed;
pub use tiers::{
    merge_salvaged_shard_sums, merge_shard_sums, run_two_tier, MergeOutcome, ShardCohort,
    TwoTierOutcome,
};
