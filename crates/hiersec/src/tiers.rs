//! The two-tier protocol core: per-shard secagg instances plus the merge
//! instance over shard aggregators.
//!
//! Failure semantics follow the hierarchy's trust boundaries. A shard whose
//! own instance cannot meet its Shamir threshold is *degraded*: its clients
//! are excluded from the round (never silently zero-filled — the shard
//! enters the merge tier as a `before_masking` dropout, so its placeholder
//! input is provably absent from the merged sum). The merge instance has no
//! such fallback: if fewer than `merge_threshold` shard aggregators
//! survive, the whole round aborts, because publishing a partial merge
//! would reveal which shards it covered.

use fednum_fedsim::error::FedError;
use fednum_secagg::{run_secure_aggregation, DropoutPlan, SecAggConfig, SecAggError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

use crate::config::HierSecConfig;
use crate::pool::run_indexed;

/// One shard's tier-1 workload: its clients' field vectors and the dropout
/// pattern its instance must survive.
#[derive(Debug, Clone, Default)]
pub struct ShardCohort {
    /// Per-client input vectors (all `vector_len` long, entries < MODULUS).
    pub inputs: Vec<Vec<u64>>,
    /// Which of those clients drop before/after masking.
    pub plan: DropoutPlan,
}

/// Result of the merge instance over per-shard sums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Component-wise sum over the included shards' sums.
    pub sum: Vec<u64>,
    /// Shards whose sums are included in `sum`.
    pub included_shards: Vec<usize>,
    /// Shards excluded because their tier-1 instance degraded.
    pub degraded_shards: Vec<usize>,
    /// Shard aggregators that survived the merge unmask round.
    pub survivors: usize,
}

/// Result of a full two-tier round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoTierOutcome {
    /// The merged sum over all included shards.
    pub sum: Vec<u64>,
    /// Shards whose cohort sums made it through both tiers.
    pub included_shards: Vec<usize>,
    /// Shards degraded at tier 1 (below their Shamir threshold).
    pub degraded_shards: Vec<usize>,
    /// Total clients contributing across the included shards.
    pub contributors: usize,
}

fn shard_secagg_config(
    config: &HierSecConfig,
    s: usize,
    n: usize,
    vector_len: usize,
) -> SecAggConfig {
    let sa = SecAggConfig::new(
        n,
        config.shard_threshold(n),
        vector_len,
        config.shard_session(s),
    );
    match config.shard.neighbors {
        // `None` keeps the original Bonawitz complete graph (per-client
        // share threshold = the global threshold); `Some(k)` opts into the
        // Bell et al. sparse graph with its majority-of-neighborhood rule.
        None => sa,
        Some(k) => sa.with_neighbors(k.clamp(1, n.max(2) - 1)),
    }
}

/// Runs the K per-shard instances on a deterministic `workers`-thread pool,
/// then merges the surviving shard sums through the second-tier instance.
///
/// Each shard draws protocol randomness from its own index-derived RNG, so
/// the outcome is bit-identical for every worker count.
///
/// # Errors
/// [`FedError::InvalidConfig`] for malformed cohorts; [`FedError::SecAgg`]
/// when a shard instance fails for any reason *other* than
/// `TooFewSurvivors` (which degrades the shard instead), or when the merge
/// instance fails for any reason at all.
pub fn run_two_tier(
    config: &HierSecConfig,
    vector_len: usize,
    cohorts: &[ShardCohort],
    workers: usize,
    seed: u64,
) -> Result<TwoTierOutcome, FedError> {
    let sizes: Vec<usize> = cohorts.iter().map(|c| c.inputs.len()).collect();
    config.validate_cohorts(&sizes)?;

    // A shard either produces (masked-then-unmasked sum, contributor count),
    // degrades to `None` on TooFewSurvivors, or fails the whole round.
    type ShardResult = Result<Option<(Vec<u64>, usize)>, SecAggError>;
    let shard_results: Vec<ShardResult> = run_indexed(workers, config.shards, |s| {
        let cohort = &cohorts[s];
        let n = cohort.inputs.len();
        let sa = shard_secagg_config(config, s, n, vector_len);
        let mut rng = StdRng::seed_from_u64(fednum_secagg::instance_seed(seed, 0x8001, s as u64));
        match run_secure_aggregation(&sa, &cohort.inputs, &cohort.plan, &mut rng) {
            Ok(out) => Ok(Some((out.sum, out.contributors.len()))),
            Err(SecAggError::TooFewSurvivors { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    });

    let mut shard_sums: Vec<Option<Vec<u64>>> = Vec::with_capacity(config.shards);
    let mut shard_contributors: Vec<usize> = Vec::with_capacity(config.shards);
    for r in shard_results {
        match r? {
            Some((sum, contributors)) => {
                shard_sums.push(Some(sum));
                shard_contributors.push(contributors);
            }
            None => {
                shard_sums.push(None);
                shard_contributors.push(0);
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(fednum_secagg::instance_seed(seed, 0x8002, 0));
    let merge = merge_shard_sums(config, &shard_sums, vector_len, &mut rng)?;
    let contributors = merge
        .included_shards
        .iter()
        .map(|&s| shard_contributors[s])
        .sum();
    Ok(TwoTierOutcome {
        sum: merge.sum,
        included_shards: merge.included_shards,
        degraded_shards: merge.degraded_shards,
        contributors,
    })
}

/// Runs the merge instance: the K shard aggregators (one per shard) submit
/// their shard's sum; degraded shards (`None`) enter as `before_masking`
/// dropouts so their zero placeholders never reach the sum.
///
/// # Errors
/// [`FedError::InvalidConfig`] when `shard_sums.len() != K`;
/// [`FedError::SecAgg`] when the merge instance fails — including
/// `TooFewSurvivors`, which at this tier aborts the round rather than
/// degrading.
pub fn merge_shard_sums(
    config: &HierSecConfig,
    shard_sums: &[Option<Vec<u64>>],
    vector_len: usize,
    rng: &mut dyn Rng,
) -> Result<MergeOutcome, FedError> {
    if shard_sums.len() != config.shards {
        return Err(FedError::InvalidConfig(format!(
            "expected {} shard sums, got {}",
            config.shards,
            shard_sums.len()
        )));
    }
    let mut inputs = Vec::with_capacity(config.shards);
    let mut degraded_shards = Vec::new();
    let mut before_masking = BTreeSet::new();
    for (s, sum) in shard_sums.iter().enumerate() {
        match sum {
            Some(v) => inputs.push(v.clone()),
            None => {
                inputs.push(vec![0u64; vector_len]);
                degraded_shards.push(s);
                before_masking.insert(s);
            }
        }
    }
    let plan = DropoutPlan {
        before_masking,
        after_masking: BTreeSet::new(),
    };
    let sa = SecAggConfig::new(
        config.shards,
        config.merge_threshold,
        vector_len,
        config.merge_session(),
    );
    let out = run_secure_aggregation(&sa, &inputs, &plan, rng)?;
    let survivors = out.contributors.len();
    Ok(MergeOutcome {
        sum: out.sum,
        included_shards: out.contributors,
        degraded_shards,
        survivors,
    })
}

/// Runs the *salvage* merge instance: a fresh K'-party aggregation over the
/// sums of shards that missed the base merge cut but recovered late. Every
/// party is a coordinator-side shard aggregator holding a sum it just
/// produced, so the instance models no dropout and sets its Shamir
/// threshold to K' — either every recovered shard unmasks or the salvage
/// aborts (worst case: the base estimate stands, exactly as discard).
///
/// Mask freshness: the instance seed is
/// [`salvage_merge_session`](HierSecConfig::salvage_merge_session), derived
/// under its own tier tag, so its key graph is independent of the base
/// merge instance *and* of every aborted shard instance — no share or mask
/// from a failed base attempt is ever reused.
///
/// # Errors
/// [`FedError::InvalidConfig`] for fewer than two recovered shards (a
/// one-party "aggregate" would publish that shard's sum in the clear, which
/// the base merge's degradation semantics deliberately never do) or for
/// mismatched sum lengths; [`FedError::SecAgg`] when the instance fails.
pub fn merge_salvaged_shard_sums(
    config: &HierSecConfig,
    late: &[(usize, Vec<u64>)],
    vector_len: usize,
    rng: &mut dyn Rng,
) -> Result<MergeOutcome, FedError> {
    if late.len() < 2 {
        return Err(FedError::InvalidConfig(format!(
            "salvage merge needs >= 2 recovered shards, got {}",
            late.len()
        )));
    }
    if late.iter().any(|(_, v)| v.len() != vector_len) {
        return Err(FedError::InvalidConfig(
            "salvaged shard sum length mismatch".into(),
        ));
    }
    let inputs: Vec<Vec<u64>> = late.iter().map(|(_, v)| v.clone()).collect();
    let sa = SecAggConfig::new(
        late.len(),
        late.len(),
        vector_len,
        config.salvage_merge_session(),
    );
    let out = run_secure_aggregation(&sa, &inputs, &DropoutPlan::none(), rng)?;
    let survivors = out.contributors.len();
    Ok(MergeOutcome {
        sum: out.sum,
        included_shards: late.iter().map(|&(s, _)| s).collect(),
        degraded_shards: Vec::new(),
        survivors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fednum_fedsim::round::SecAggSettings;
    use rand::RngExt;

    fn settings() -> SecAggSettings {
        SecAggSettings {
            threshold_fraction: 0.5,
            neighbors: Some(4),
        }
    }

    fn cohorts_for(sizes: &[usize], vector_len: usize, seed: u64) -> Vec<ShardCohort> {
        let mut rng = StdRng::seed_from_u64(seed);
        sizes
            .iter()
            .map(|&n| ShardCohort {
                inputs: (0..n)
                    .map(|_| {
                        (0..vector_len)
                            .map(|_| rng.random_range(0..1000u64))
                            .collect()
                    })
                    .collect(),
                plan: DropoutPlan::none(),
            })
            .collect()
    }

    fn plaintext_sum(cohorts: &[ShardCohort], vector_len: usize) -> Vec<u64> {
        let mut sum = vec![0u64; vector_len];
        for c in cohorts {
            for input in &c.inputs {
                for (acc, v) in sum.iter_mut().zip(input) {
                    *acc += v;
                }
            }
        }
        sum
    }

    #[test]
    fn two_tier_sum_matches_plaintext_without_dropouts() {
        let config = HierSecConfig::try_new(4, settings(), 3, 0xA11CE).unwrap();
        let cohorts = cohorts_for(&[7, 5, 9, 6], 8, 42);
        let out = run_two_tier(&config, 8, &cohorts, 1, 7).unwrap();
        assert_eq!(out.sum, plaintext_sum(&cohorts, 8));
        assert_eq!(out.included_shards, vec![0, 1, 2, 3]);
        assert!(out.degraded_shards.is_empty());
        assert_eq!(out.contributors, 27);
    }

    #[test]
    fn pooled_execution_is_bit_identical_to_sequential() {
        let config = HierSecConfig::try_new(6, settings(), 4, 0xBEE).unwrap();
        let mut cohorts = cohorts_for(&[8, 6, 7, 9, 5, 8], 12, 99);
        // Knock one shard below threshold and give another partial dropout.
        cohorts[2].plan.before_masking = (0..6).collect();
        cohorts[4].plan.after_masking = [1, 3].into_iter().collect();
        let sequential = run_two_tier(&config, 12, &cohorts, 1, 13).unwrap();
        for workers in [2, 3, 8] {
            let pooled = run_two_tier(&config, 12, &cohorts, workers, 13).unwrap();
            assert_eq!(pooled, sequential, "workers={workers}");
        }
    }

    #[test]
    fn below_threshold_shard_is_excluded_not_zero_filled() {
        let config = HierSecConfig::try_new(3, settings(), 2, 0xD00D).unwrap();
        let cohorts = cohorts_for(&[6, 6, 6], 4, 5);
        // Shard 1 loses 4 of 6 before masking: 2 survivors < threshold 3.
        let mut broken = cohorts.clone();
        broken[1].plan.before_masking = (0..4).collect();
        let out = run_two_tier(&config, 4, &broken, 1, 3).unwrap();
        assert_eq!(out.degraded_shards, vec![1]);
        assert_eq!(out.included_shards, vec![0, 2]);
        let mut expected = vec![0u64; 4];
        for s in [0usize, 2] {
            for input in &cohorts[s].inputs {
                for (acc, v) in expected.iter_mut().zip(input) {
                    *acc += v;
                }
            }
        }
        assert_eq!(out.sum, expected);
        assert_eq!(out.contributors, 12);
    }

    #[test]
    fn merge_below_threshold_aborts_the_round() {
        let config = HierSecConfig::try_new(4, settings(), 3, 0xFAB).unwrap();
        let mut cohorts = cohorts_for(&[6, 6, 6, 6], 4, 8);
        // Degrade two shards: only 2 survive < merge threshold 3.
        cohorts[0].plan.before_masking = (0..5).collect();
        cohorts[3].plan.before_masking = (0..5).collect();
        let err = run_two_tier(&config, 4, &cohorts, 2, 11).unwrap_err();
        assert!(matches!(
            err,
            FedError::SecAgg(SecAggError::TooFewSurvivors {
                survivors: 2,
                threshold: 3
            })
        ));
    }

    #[test]
    fn merge_rejects_wrong_shard_count() {
        let config = HierSecConfig::try_new(3, settings(), 2, 0).unwrap();
        let sums = vec![Some(vec![1u64; 2]); 2];
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            merge_shard_sums(&config, &sums, 2, &mut rng),
            Err(FedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn salvage_merge_recovers_the_plaintext_sum_of_late_shards() {
        let config = HierSecConfig::try_new(4, settings(), 3, 0xCAFE).unwrap();
        let late = vec![(1usize, vec![5u64, 7, 11]), (3usize, vec![2u64, 0, 9])];
        let mut rng = StdRng::seed_from_u64(21);
        let out = merge_salvaged_shard_sums(&config, &late, 3, &mut rng).unwrap();
        assert_eq!(out.sum, vec![7, 7, 20]);
        assert_eq!(out.included_shards, vec![1, 3]);
        assert!(out.degraded_shards.is_empty());
        assert_eq!(out.survivors, 2);
    }

    #[test]
    fn salvage_merge_rejects_a_single_shard_and_bad_lengths() {
        let config = HierSecConfig::try_new(3, settings(), 2, 0xF00).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            merge_salvaged_shard_sums(&config, &[(0, vec![1, 2])], 2, &mut rng),
            Err(FedError::InvalidConfig(_))
        ));
        let bad = vec![(0usize, vec![1u64, 2]), (1usize, vec![3u64])];
        assert!(matches!(
            merge_salvaged_shard_sums(&config, &bad, 2, &mut rng),
            Err(FedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn salvage_merge_session_is_independent_of_the_base_merge() {
        let config = HierSecConfig::try_new(2, settings(), 2, 0x5EED).unwrap();
        assert_ne!(config.salvage_merge_session(), config.merge_session());
        for s in 0..config.shards {
            assert_ne!(config.salvage_shard_session(s), config.shard_session(s));
        }
    }

    #[test]
    fn single_client_shards_work() {
        let config = HierSecConfig::try_new(2, settings(), 2, 0x51).unwrap();
        let cohorts = vec![
            ShardCohort {
                inputs: vec![vec![10, 20]],
                plan: DropoutPlan::none(),
            },
            ShardCohort {
                inputs: vec![vec![1, 2]],
                plan: DropoutPlan::none(),
            },
        ];
        let out = run_two_tier(&config, 2, &cohorts, 2, 1).unwrap();
        assert_eq!(out.sum, vec![11, 22]);
    }
}
