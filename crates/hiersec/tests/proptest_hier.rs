//! Property tests for the two-tier hierarchy (ISSUE satellite: random shard
//! counts and dropout patterns).
//!
//! Invariants pinned here:
//! * whenever both tiers meet their thresholds, the merged masked sum is
//!   *exactly* the plaintext sum of the surviving contributors;
//! * a shard below its own threshold is excluded from the merge — its
//!   clients' values never appear in the sum and its placeholder is never
//!   silently zero-filled into the contributor count;
//! * the merge tier below threshold aborts with a typed error rather than
//!   publishing a partial sum.

use fednum_fedsim::error::FedError;
use fednum_fedsim::round::SecAggSettings;
use fednum_hiersec::{run_two_tier, HierSecConfig, ShardCohort};
use fednum_secagg::{DropoutPlan, SecAggError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

const VECTOR_LEN: usize = 6;

/// Builds K cohorts with deterministic pseudo-random inputs and per-shard
/// before/after-masking dropouts drawn from the given fractions.
fn build_cohorts(
    sizes: &[usize],
    drop_before: &[usize],
    drop_after: &[usize],
    seed: u64,
) -> Vec<ShardCohort> {
    let mut rng = StdRng::seed_from_u64(seed);
    sizes
        .iter()
        .zip(drop_before.iter().zip(drop_after))
        .map(|(&n, (&db, &da))| {
            let inputs: Vec<Vec<u64>> = (0..n)
                .map(|_| {
                    (0..VECTOR_LEN)
                        .map(|_| rng.random_range(0..10_000u64))
                        .collect()
                })
                .collect();
            // Dropouts target a prefix of clients: `db` drop before masking,
            // the next `da` drop after (disjoint, both capped at n).
            let db = db.min(n);
            let da = da.min(n - db);
            let before_masking: BTreeSet<usize> = (0..db).collect();
            let after_masking: BTreeSet<usize> = (db..db + da).collect();
            ShardCohort {
                inputs,
                plan: DropoutPlan {
                    before_masking,
                    after_masking,
                },
            }
        })
        .collect()
}

/// Plaintext sum over the clients that actually contribute: everyone except
/// before-masking dropouts, in the given shards only.
fn contributor_sum(cohorts: &[ShardCohort], shards: &[usize]) -> Vec<u64> {
    let mut sum = vec![0u64; VECTOR_LEN];
    for &s in shards {
        let c = &cohorts[s];
        for (i, input) in c.inputs.iter().enumerate() {
            if c.plan.before_masking.contains(&i) {
                continue;
            }
            for (acc, v) in sum.iter_mut().zip(input) {
                *acc += v;
            }
        }
    }
    sum
}

// Complete mask graphs make a shard's fate exactly predictable from its
// round-4 survivor count (per-client share threshold == global threshold);
// sparse graphs can additionally degrade when a dropped client's share
// holders cluster, which the pinned-seed unit tests cover instead.
fn settings() -> SecAggSettings {
    SecAggSettings {
        threshold_fraction: 0.5,
        neighbors: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shard counts/sizes, no dropouts: merged sum == plaintext sum.
    #[test]
    fn merged_sum_equals_plaintext_sum(
        sizes in prop::collection::vec(2usize..10, 2..7),
        seed in 0u64..1_000,
    ) {
        let k = sizes.len();
        let config = HierSecConfig::try_new(k, settings(), k.div_ceil(2), seed ^ 0xC0FFEE).unwrap();
        let zeros = vec![0usize; k];
        let cohorts = build_cohorts(&sizes, &zeros, &zeros, seed);
        let out = run_two_tier(&config, VECTOR_LEN, &cohorts, 2, seed).unwrap();
        let all: Vec<usize> = (0..k).collect();
        prop_assert_eq!(&out.sum, &contributor_sum(&cohorts, &all));
        prop_assert_eq!(out.included_shards, all);
        prop_assert_eq!(out.contributors, sizes.iter().sum::<usize>());
    }

    /// Random dropout patterns: whenever both tiers stay at/above threshold
    /// the merged sum equals the plaintext sum over surviving shards'
    /// contributors, and below-threshold shards are excluded outright.
    #[test]
    fn dropouts_exclude_rather_than_zero_fill(
        sizes in prop::collection::vec(4usize..12, 3..6),
        drops in prop::collection::vec(0usize..12, 3..6),
        after in prop::collection::vec(0usize..3, 3..6),
        seed in 0u64..1_000,
    ) {
        let k = sizes.len();
        let drops: Vec<usize> = (0..k).map(|i| drops[i % drops.len()]).collect();
        let after: Vec<usize> = (0..k).map(|i| after[i % after.len()]).collect();
        let config = HierSecConfig::try_new(k, settings(), k.div_ceil(2), seed ^ 0xFEED).unwrap();
        let cohorts = build_cohorts(&sizes, &drops, &after, seed);

        // Predict each shard's fate from the protocol's survivor rule:
        // round-3 survivors are everyone not dropped before/after masking,
        // and the instance degrades when they fall below the threshold.
        let mut live = Vec::new();
        let mut degraded = Vec::new();
        for (s, c) in cohorts.iter().enumerate() {
            let n = c.inputs.len();
            let survivors = n - c.plan.before_masking.len() - c.plan.after_masking.len();
            if survivors >= config.shard_threshold(n) {
                live.push(s);
            } else {
                degraded.push(s);
            }
        }

        let result = run_two_tier(&config, VECTOR_LEN, &cohorts, 2, seed);
        if live.len() >= config.merge_threshold {
            let out = result.unwrap();
            prop_assert_eq!(&out.included_shards, &live);
            prop_assert_eq!(&out.degraded_shards, &degraded);
            prop_assert_eq!(&out.sum, &contributor_sum(&cohorts, &live));
            // Degraded shards are excluded, not zero-filled: no client of a
            // degraded shard is counted as a contributor.
            let expected_contributors: usize = live
                .iter()
                .map(|&s| cohorts[s].inputs.len() - cohorts[s].plan.before_masking.len())
                .sum();
            prop_assert_eq!(out.contributors, expected_contributors);
        } else {
            // Merge tier under threshold: typed abort, never a partial sum.
            let aborted = matches!(
                result,
                Err(FedError::SecAgg(SecAggError::TooFewSurvivors { .. }))
            );
            prop_assert!(aborted);
        }
    }

    /// The salvage merge is exact arithmetic: over any ≥2 late shards the
    /// masked K'-party merge recovers precisely the plaintext sum of the
    /// re-admitted shard sums, under key material independent of the base
    /// merge (same parent seed, different tier tag).
    #[test]
    fn salvage_merge_recovers_exactly_the_late_sums(
        late_sums in prop::collection::vec(
            prop::collection::vec(0u64..50_000, VECTOR_LEN..VECTOR_LEN + 1),
            2..6,
        ),
        shard_ids in prop::collection::vec(0usize..32, 2..6),
        seed in 0u64..1_000,
    ) {
        use fednum_hiersec::merge_salvaged_shard_sums;
        let k = late_sums.len().min(shard_ids.len());
        let mut ids: Vec<usize> = shard_ids[..k].to_vec();
        ids.sort_unstable();
        ids.dedup();
        prop_assume!(ids.len() >= 2);
        let late: Vec<(usize, Vec<u64>)> = ids
            .iter()
            .zip(&late_sums)
            .map(|(&s, sum)| (s, sum.clone()))
            .collect();
        let config = HierSecConfig::try_new(
            ids.iter().max().unwrap() + 2,
            settings(),
            2,
            seed ^ 0x5A1,
        ).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = merge_salvaged_shard_sums(&config, &late, VECTOR_LEN, &mut rng).unwrap();
        let mut expected = vec![0u64; VECTOR_LEN];
        for (_, sum) in &late {
            for (acc, v) in expected.iter_mut().zip(sum) {
                *acc += v;
            }
        }
        prop_assert_eq!(&out.sum, &expected);
        prop_assert_eq!(&out.included_shards, &ids);
        prop_assert!(out.degraded_shards.is_empty());
    }

    /// Worker-count invariance under random dropout patterns.
    #[test]
    fn pool_width_never_changes_the_outcome(
        sizes in prop::collection::vec(3usize..9, 2..5),
        drops in prop::collection::vec(0usize..4, 2..5),
        seed in 0u64..500,
    ) {
        let k = sizes.len();
        let drops: Vec<usize> = (0..k).map(|i| drops[i % drops.len()]).collect();
        let zeros = vec![0usize; k];
        let config = HierSecConfig::try_new(k, settings(), 1, seed ^ 0xABBA).unwrap();
        let cohorts = build_cohorts(&sizes, &drops, &zeros, seed);
        let sequential = run_two_tier(&config, VECTOR_LEN, &cohorts, 1, seed);
        for workers in [2usize, 5] {
            let pooled = run_two_tier(&config, VECTOR_LEN, &cohorts, workers, seed);
            prop_assert_eq!(&pooled, &sequential);
        }
    }
}
