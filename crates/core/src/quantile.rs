//! Federated quantile estimation with one-bit reports.
//!
//! Section 4.3: for heavy-tailed metrics "robust statistics are more
//! appropriate, such as the median and percentiles". A quantile reduces to
//! threshold queries: each participating client discloses the single bit
//! `[x ≤ t]`, and the server bisects the encoded domain. Each client is used
//! in at most one round, so the worst-case disclosure stays at one
//! (optionally randomized) bit per client — the same promise as bit-pushing
//! for the mean. (The paper notes its range-localization trick is
//! single-round; classic bisection like this needs multiple rounds, which it
//! contrasts against — we implement the multi-round search as the robust
//! complement.)

use fednum_ldp::RandomizedResponse;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::encoding::FixedPointCodec;

/// Configuration for a bisection quantile search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileConfig {
    /// Value ↔ `b`-bit integer codec (the search runs over encoded space).
    pub codec: FixedPointCodec,
    /// Target quantile in `(0, 1)` (0.5 = median).
    pub q: f64,
    /// Bisection rounds; `codec.bits()` rounds pin the quantile exactly in
    /// encoded space (each halves the bracket).
    pub rounds: u32,
    /// Optional ε-LDP randomized response on each threshold bit.
    pub privacy: Option<RandomizedResponse>,
}

impl QuantileConfig {
    /// Creates a configuration with full-depth bisection and no privacy.
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    #[must_use]
    pub fn new(codec: FixedPointCodec, q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        Self {
            codec,
            q,
            rounds: codec.bits(),
            privacy: None,
        }
    }

    /// Limits the number of bisection rounds (coarser bracket, fewer
    /// cohorts).
    ///
    /// # Panics
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        assert!(rounds >= 1, "need at least one round");
        self.rounds = rounds;
        self
    }

    /// Enables randomized response on the threshold bits.
    #[must_use]
    pub fn with_privacy(mut self, rr: RandomizedResponse) -> Self {
        self.privacy = Some(rr);
        self
    }
}

/// Result of a quantile search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileOutcome {
    /// The estimated quantile in the value domain.
    pub estimate: f64,
    /// Final bracket (value domain, inclusive).
    pub bracket: (f64, f64),
    /// Rounds actually executed.
    pub rounds_used: u32,
    /// Total one-bit reports consumed.
    pub reports: u64,
}

/// Bisection quantile estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileEstimator {
    config: QuantileConfig,
}

impl QuantileEstimator {
    /// Creates the estimator.
    #[must_use]
    pub fn new(config: QuantileConfig) -> Self {
        Self { config }
    }

    /// Runs the search: the population is split into `rounds` disjoint
    /// cohorts; round `r`'s cohort each reports one (possibly randomized)
    /// bit `[x ≤ t_r]` against the current bracket midpoint.
    ///
    /// # Panics
    /// Panics if there are fewer clients than rounds.
    pub fn run(&self, values: &[f64], rng: &mut dyn Rng) -> QuantileOutcome {
        let rounds = self.config.rounds;
        assert!(
            values.len() >= rounds as usize,
            "need at least one client per round ({} clients, {rounds} rounds)",
            values.len()
        );
        let codec = self.config.codec;
        let (codes, _) = codec.encode_all(values);

        // Disjoint cohorts via one shuffle.
        let mut order: Vec<usize> = (0..codes.len()).collect();
        order.shuffle(rng);
        let cohort_size = codes.len() / rounds as usize;

        let mut lo = 0u64;
        let mut hi = codec.max_encoded();
        let mut reports = 0u64;
        let mut rounds_used = 0;
        for r in 0..rounds {
            if lo >= hi {
                break;
            }
            rounds_used = r + 1;
            let mid = lo + (hi - lo) / 2;
            let start = r as usize * cohort_size;
            let end = if r == rounds - 1 {
                codes.len()
            } else {
                start + cohort_size
            };
            let cohort = &order[start..end];
            let mut below = 0.0;
            for &i in cohort {
                let raw = codes[i] <= mid;
                let contribution = match &self.config.privacy {
                    Some(rr) => rr.debias(rr.flip(raw, rng)),
                    None => f64::from(u8::from(raw)),
                };
                below += contribution;
                reports += 1;
            }
            let frac_below = below / cohort.len() as f64;
            if frac_below < self.config.q {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        QuantileOutcome {
            estimate: codec.decode(lo),
            bracket: (codec.decode(lo), codec.decode(hi)),
            rounds_used,
            reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact_quantile(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[((q * sorted.len() as f64) as usize).min(sorted.len() - 1)]
    }

    #[test]
    fn median_of_uniform_integers() {
        let values: Vec<f64> = (0..40_000).map(|i| (i % 1000) as f64).collect();
        let est = QuantileEstimator::new(QuantileConfig::new(FixedPointCodec::integer(10), 0.5));
        let mut rng = StdRng::seed_from_u64(1);
        let out = est.run(&values, &mut rng);
        let truth = exact_quantile(&values, 0.5);
        assert!(
            (out.estimate - truth).abs() <= 20.0,
            "median {} vs truth {truth}",
            out.estimate
        );
        assert_eq!(out.reports, 40_000);
    }

    #[test]
    fn tail_quantile_is_found() {
        let values: Vec<f64> = (0..40_000).map(|i| (i % 512) as f64).collect();
        let est = QuantileEstimator::new(QuantileConfig::new(FixedPointCodec::integer(9), 0.9));
        let mut rng = StdRng::seed_from_u64(2);
        let out = est.run(&values, &mut rng);
        let truth = exact_quantile(&values, 0.9);
        assert!(
            (out.estimate - truth).abs() <= 15.0,
            "p90 {} vs truth {truth}",
            out.estimate
        );
    }

    #[test]
    fn median_robust_to_extreme_outliers() {
        // The Section 4.3 motivation: the mean explodes, the median doesn't.
        let mut values: Vec<f64> = (0..20_000).map(|i| (i % 100) as f64).collect();
        for v in values.iter_mut().take(50) {
            *v = 1e12; // clipped by the codec
        }
        let est = QuantileEstimator::new(QuantileConfig::new(FixedPointCodec::integer(16), 0.5));
        let mut rng = StdRng::seed_from_u64(3);
        let out = est.run(&values, &mut rng);
        assert!(
            out.estimate < 120.0,
            "median {} should ignore outliers",
            out.estimate
        );
    }

    #[test]
    fn privacy_noise_tolerated_with_large_cohorts() {
        let values: Vec<f64> = (0..200_000).map(|i| (i % 256) as f64).collect();
        let cfg = QuantileConfig::new(FixedPointCodec::integer(8), 0.5)
            .with_privacy(RandomizedResponse::from_epsilon(2.0));
        let est = QuantileEstimator::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let out = est.run(&values, &mut rng);
        let truth = exact_quantile(&values, 0.5);
        assert!(
            (out.estimate - truth).abs() <= 16.0,
            "private median {} vs truth {truth}",
            out.estimate
        );
    }

    #[test]
    fn fewer_rounds_give_coarser_bracket() {
        let values: Vec<f64> = (0..10_000).map(|i| (i % 1024) as f64).collect();
        let full = QuantileEstimator::new(QuantileConfig::new(FixedPointCodec::integer(10), 0.5));
        let coarse = QuantileEstimator::new(
            QuantileConfig::new(FixedPointCodec::integer(10), 0.5).with_rounds(4),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let f = full.run(&values, &mut rng);
        let c = coarse.run(&values, &mut rng);
        let f_width = f.bracket.1 - f.bracket.0;
        let c_width = c.bracket.1 - c.bracket.0;
        assert!(c_width > f_width, "coarse {c_width} vs full {f_width}");
        assert_eq!(c.rounds_used, 4);
    }

    #[test]
    fn one_bit_per_client_total() {
        let values: Vec<f64> = (0..5_000).map(|i| (i % 64) as f64).collect();
        let est = QuantileEstimator::new(QuantileConfig::new(FixedPointCodec::integer(6), 0.25));
        let mut rng = StdRng::seed_from_u64(6);
        let out = est.run(&values, &mut rng);
        assert!(out.reports <= 5_000, "no client may report twice");
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_degenerate_quantile() {
        let _ = QuantileConfig::new(FixedPointCodec::integer(4), 1.0);
    }

    #[test]
    #[should_panic(expected = "one client per round")]
    fn rejects_too_few_clients() {
        let est = QuantileEstimator::new(QuantileConfig::new(FixedPointCodec::integer(8), 0.5));
        let mut rng = StdRng::seed_from_u64(0);
        let _ = est.run(&[1.0, 2.0], &mut rng);
    }
}
