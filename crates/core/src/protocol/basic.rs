//! Algorithm 1: basic (single-round) bit-pushing.
//!
//! Given `n` clients with encoded `b`-bit values and a sampling distribution
//! `p`, the server assigns `p_j · n` clients to bit `j`, gathers the
//! (optionally randomized-response-protected) bit values, computes per-bit
//! means and reconstructs `r = Σ_j 2^j m_j` — an unbiased estimate of the
//! population mean with the variance of Lemma 3.1.

use fednum_ldp::{MeanMechanism, RandomizedResponse};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::accumulator::BitAccumulator;
use crate::bits::{bit_f64, weight};
use crate::encoding::FixedPointCodec;
use crate::privacy::squash::BitSquash;
use crate::sampling::{AssignmentMode, BitSampling};

/// Configuration for a basic bit-pushing round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicConfig {
    /// Value ↔ `b`-bit integer codec (clipping included).
    pub codec: FixedPointCodec,
    /// Bit-sampling probabilities (must cover exactly `codec.bits()` bits).
    pub sampling: BitSampling,
    /// Bits each client reports (`b_send`, Corollary 3.2). Default 1 — the
    /// paper's headline "at most one bit per value".
    pub b_send: u32,
    /// Central QMC (default) or local assignment.
    pub assignment: AssignmentMode,
    /// Optional per-bit ε-LDP randomized response.
    pub privacy: Option<RandomizedResponse>,
    /// Optional bit squashing applied to the final bit means.
    pub squash: Option<BitSquash>,
    /// Label used by [`MeanMechanism::name`].
    pub label: Option<String>,
}

impl BasicConfig {
    /// Defaults: `b_send = 1`, central QMC, no privacy, no squashing.
    ///
    /// # Panics
    /// Panics if the sampling vector's bit count differs from the codec's.
    #[must_use]
    pub fn new(codec: FixedPointCodec, sampling: BitSampling) -> Self {
        assert_eq!(
            codec.bits(),
            sampling.bits(),
            "sampling distribution must cover exactly the codec's bits"
        );
        Self {
            codec,
            sampling,
            b_send: 1,
            assignment: AssignmentMode::CentralQmc,
            privacy: None,
            squash: None,
            label: None,
        }
    }

    /// Sets the number of bits each client sends.
    ///
    /// # Panics
    /// Panics if `b_send` is 0 or exceeds the bit depth.
    #[must_use]
    pub fn with_b_send(mut self, b_send: u32) -> Self {
        assert!(
            b_send >= 1 && b_send <= self.codec.bits(),
            "b_send must be in 1..=bits"
        );
        self.b_send = b_send;
        self
    }

    /// Sets the assignment mode.
    #[must_use]
    pub fn with_assignment(mut self, mode: AssignmentMode) -> Self {
        self.assignment = mode;
        self
    }

    /// Enables ε-LDP randomized response on every transmitted bit.
    #[must_use]
    pub fn with_privacy(mut self, rr: RandomizedResponse) -> Self {
        self.privacy = Some(rr);
        self
    }

    /// Enables bit squashing on the final bit means.
    #[must_use]
    pub fn with_squash(mut self, squash: BitSquash) -> Self {
        self.squash = Some(squash);
        self
    }

    /// Sets the display label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// Result of a bit-pushing round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Mean estimate in the value domain.
    pub estimate: f64,
    /// Mean estimate in encoded units (`Σ 2^j m_j`).
    pub encoded_estimate: f64,
    /// Final (post-squash) per-bit means used for the estimate.
    pub bit_means: Vec<f64>,
    /// Raw per-bit sums/counts (pre-squash), as secure aggregation would
    /// deliver them.
    pub accumulator: BitAccumulator,
    /// Fraction of inputs the codec clipped.
    pub clip_fraction: f64,
    /// Predicted standard deviation of the estimate (value domain), from
    /// the Lemma 3.1 / randomized-response variance formulas evaluated at
    /// the observed bit means and actual per-bit report counts.
    pub predicted_std: f64,
}

/// The basic bit-pushing protocol (Algorithm 1).
///
/// # Examples
///
/// ```
/// use fednum_core::encoding::FixedPointCodec;
/// use fednum_core::protocol::basic::{BasicBitPushing, BasicConfig};
/// use fednum_core::sampling::BitSampling;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let values: Vec<f64> = (0..10_000).map(|i| (i % 200) as f64).collect();
/// let truth = values.iter().sum::<f64>() / values.len() as f64;
///
/// let protocol = BasicBitPushing::new(BasicConfig::new(
///     FixedPointCodec::integer(8),
///     BitSampling::geometric(8, 1.0), // p_j ∝ 2^j
/// ));
/// let outcome = protocol.run(&values, &mut StdRng::seed_from_u64(7));
/// assert!((outcome.estimate - truth).abs() / truth < 0.05);
/// // Exactly one bit was disclosed per client.
/// assert_eq!(outcome.accumulator.total_reports(), 10_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBitPushing {
    config: BasicConfig,
}

impl BasicBitPushing {
    /// Creates the protocol.
    #[must_use]
    pub fn new(config: BasicConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &BasicConfig {
        &self.config
    }

    /// Runs the protocol over raw client values.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn run(&self, values: &[f64], rng: &mut dyn Rng) -> Outcome {
        assert!(!values.is_empty(), "need at least one client");
        let (codes, clip_fraction) = self.config.codec.encode_all(values);
        self.run_encoded(&codes, clip_fraction, rng)
    }

    /// Runs the protocol over pre-encoded values (used by the adaptive
    /// protocol, which encodes once for both rounds).
    ///
    /// # Panics
    /// Panics if `codes` is empty.
    pub fn run_encoded(&self, codes: &[u64], clip_fraction: f64, rng: &mut dyn Rng) -> Outcome {
        assert!(!codes.is_empty(), "need at least one client");
        let n = codes.len();
        let bits = self.config.codec.bits();
        let mut acc = BitAccumulator::new(bits);
        for _ in 0..self.config.b_send {
            let assignment = self.config.sampling.assign(self.config.assignment, n, rng);
            for (i, &j) in assignment.iter().enumerate() {
                let raw_bit = crate::bits::bit(codes[i], j);
                let value = match &self.config.privacy {
                    Some(rr) => rr.debias(rr.flip(raw_bit, rng)),
                    None => bit_f64(codes[i], j),
                };
                acc.record(j, value);
            }
        }
        self.finish(acc, clip_fraction)
    }

    /// Turns an accumulator (possibly produced by secure aggregation or a
    /// distributed-DP post-process) into an [`Outcome`].
    #[must_use]
    pub fn finish(&self, acc: BitAccumulator, clip_fraction: f64) -> Outcome {
        let raw_means = acc.bit_means();
        let bit_means = match &self.config.squash {
            Some(sq) => sq.apply(&raw_means, acc.counts(), self.config.privacy.as_ref()),
            None => raw_means,
        };
        let encoded_estimate = BitAccumulator::estimate_from_means(&bit_means);
        let estimate = self.config.codec.decode_float(encoded_estimate);
        let predicted_var = self.predicted_variance(&bit_means, acc.counts());
        // Std in encoded units; dividing by the codec scale converts to the
        // value domain (the offset shifts the mean, not the spread).
        let scale = self.config.codec.decode_float(1.0) - self.config.codec.decode_float(0.0);
        Outcome {
            estimate,
            encoded_estimate,
            bit_means,
            accumulator: acc,
            clip_fraction,
            predicted_std: predicted_var.sqrt() * scale,
        }
    }

    /// Predicted estimator variance (encoded units) from the observed bit
    /// means and actual per-bit counts: `Σ_j 4^j v_j / c_j` where `v_j` is
    /// the per-report variance — `m_j (1 - m_j)` without privacy (Lemma 3.1
    /// with actual counts `c_j = n p_j`), or the randomized-response report
    /// variance with.
    #[must_use]
    pub fn predicted_variance(&self, bit_means: &[f64], counts: &[u64]) -> f64 {
        bit_means
            .iter()
            .zip(counts)
            .enumerate()
            .map(|(j, (&m, &c))| {
                if c == 0 {
                    return 0.0;
                }
                let m = m.clamp(0.0, 1.0);
                let per_report = match &self.config.privacy {
                    Some(rr) => rr.report_variance(m),
                    None => m * (1.0 - m),
                };
                let w = weight(j as u32);
                w * w * per_report / c as f64
            })
            .sum()
    }
}

impl MeanMechanism for BasicBitPushing {
    fn name(&self) -> String {
        self.config
            .label
            .clone()
            .unwrap_or_else(|| "bitpush-basic".to_string())
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        self.run(values, rng).estimate
    }

    fn epsilon(&self) -> Option<f64> {
        // Composition over the bits each client sends.
        self.config
            .privacy
            .as_ref()
            .map(|rr| rr.epsilon() * f64::from(self.config.b_send))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn protocol(bits: u32, gamma: f64) -> BasicBitPushing {
        BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, gamma),
        ))
    }

    fn uniform_values(n: usize, hi: u64) -> Vec<f64> {
        (0..n).map(|i| (i as u64 % hi) as f64).collect()
    }

    #[test]
    fn estimates_mean_within_tolerance() {
        let p = protocol(8, 1.0);
        let values = uniform_values(20_000, 200);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(1);
        let out = p.run(&values, &mut rng);
        assert!(
            (out.estimate - truth).abs() / truth < 0.05,
            "est {} truth {truth}",
            out.estimate
        );
        assert_eq!(out.clip_fraction, 0.0);
    }

    #[test]
    fn estimator_is_unbiased_across_trials() {
        let p = protocol(6, 1.0);
        let values = uniform_values(2_000, 50);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let trials = 300;
        let mean_est: f64 = (0..trials)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(s);
                p.run(&values, &mut rng).estimate
            })
            .sum::<f64>()
            / f64::from(trials as u32);
        assert!(
            (mean_est - truth).abs() < 0.4,
            "mean of estimates {mean_est} vs truth {truth}"
        );
    }

    #[test]
    fn exact_when_every_bit_deterministic() {
        // All clients hold the same value: every bit mean is 0 or 1, so the
        // estimate is exact regardless of sampling.
        let p = protocol(8, 0.5);
        let values = vec![137.0; 500];
        let mut rng = StdRng::seed_from_u64(2);
        let out = p.run(&values, &mut rng);
        assert!((out.estimate - 137.0).abs() < 1e-9);
        assert_eq!(out.predicted_std, 0.0);
    }

    #[test]
    fn variance_shrinks_with_n() {
        let p = protocol(8, 1.0);
        let rmse = |n: usize| {
            let values = uniform_values(n, 200);
            let truth = values.iter().sum::<f64>() / values.len() as f64;
            let mut sq = 0.0;
            for s in 0..60u64 {
                let mut rng = StdRng::seed_from_u64(s);
                let e = p.run(&values, &mut rng).estimate;
                sq += (e - truth) * (e - truth);
            }
            (sq / 60.0).sqrt()
        };
        let small = rmse(1_000);
        let large = rmse(16_000);
        // Error ∝ 1/√n: 16x clients → ~4x smaller error (allow slack).
        assert!(large < small / 2.0, "rmse small-n {small}, large-n {large}");
    }

    #[test]
    fn predicted_std_tracks_observed_rmse() {
        let p = protocol(8, 1.0);
        let values = uniform_values(5_000, 200);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut errs = Vec::new();
        let mut preds = Vec::new();
        for s in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(s);
            let out = p.run(&values, &mut rng);
            errs.push((out.estimate - truth).powi(2));
            preds.push(out.predicted_std);
        }
        let rmse = (errs.iter().sum::<f64>() / errs.len() as f64).sqrt();
        let pred = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!(
            (rmse / pred - 1.0).abs() < 0.35,
            "rmse {rmse} vs predicted {pred}"
        );
    }

    #[test]
    fn b_send_reduces_error() {
        let values = uniform_values(2_000, 200);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let rmse = |b_send: u32| {
            let p = BasicBitPushing::new(
                BasicConfig::new(FixedPointCodec::integer(8), BitSampling::geometric(8, 1.0))
                    .with_b_send(b_send),
            );
            let mut sq = 0.0;
            for s in 0..60u64 {
                let mut rng = StdRng::seed_from_u64(s);
                let e = p.run(&values, &mut rng).estimate;
                sq += (e - truth) * (e - truth);
            }
            (sq / 60.0).sqrt()
        };
        let one = rmse(1);
        let four = rmse(4);
        // Corollary 3.2: variance ∝ 1/b_send, so RMSE halves at b_send=4.
        assert!(
            (one / four - 2.0).abs() < 0.7,
            "rmse b_send=1 {one}, b_send=4 {four}"
        );
    }

    #[test]
    fn privacy_keeps_estimate_unbiased() {
        let p = BasicBitPushing::new(
            BasicConfig::new(FixedPointCodec::integer(8), BitSampling::geometric(8, 1.0))
                .with_privacy(RandomizedResponse::from_epsilon(2.0)),
        );
        let values = uniform_values(50_000, 200);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let trials = 50;
        let mean_est: f64 = (0..trials)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(s);
                p.run(&values, &mut rng).estimate
            })
            .sum::<f64>()
            / f64::from(trials as u32);
        assert!(
            (mean_est - truth).abs() / truth < 0.05,
            "mean est {mean_est} truth {truth}"
        );
        assert!(p.epsilon().is_some());
    }

    #[test]
    fn privacy_increases_predicted_std() {
        let codec = FixedPointCodec::integer(8);
        let sampling = BitSampling::geometric(8, 1.0);
        let plain = BasicBitPushing::new(BasicConfig::new(codec, sampling.clone()));
        let private = BasicBitPushing::new(
            BasicConfig::new(codec, sampling).with_privacy(RandomizedResponse::from_epsilon(1.0)),
        );
        let values = uniform_values(10_000, 200);
        let a = plain.run(&values, &mut StdRng::seed_from_u64(3));
        let b = private.run(&values, &mut StdRng::seed_from_u64(3));
        assert!(b.predicted_std > 2.0 * a.predicted_std);
    }

    #[test]
    fn squash_drops_noise_bits_and_reduces_error() {
        let rr = RandomizedResponse::from_epsilon(2.0);
        let base = BasicConfig::new(
            FixedPointCodec::integer(16),
            BitSampling::geometric(16, 1.0),
        )
        .with_privacy(rr);
        let plain = BasicBitPushing::new(base.clone());
        let squashed = BasicBitPushing::new(base.with_squash(BitSquash::Absolute(0.05)));
        // Data uses only the low 6 bits; bits 6..16 are pure DP noise, which
        // the weighted sampling massively over-weights.
        let values = uniform_values(60_000, 60);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mae = |p: &BasicBitPushing| {
            (0..20u64)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(s);
                    (p.run(&values, &mut rng).estimate - truth).abs()
                })
                .sum::<f64>()
                / 20.0
        };
        let e_plain = mae(&plain);
        let e_squash = mae(&squashed);
        assert!(
            e_squash < e_plain / 2.0,
            "squash {e_squash} should far beat plain {e_plain}"
        );
        // High bits squashed to exactly 0 in a representative run.
        let out = squashed.run(&values, &mut StdRng::seed_from_u64(4));
        assert_eq!(out.bit_means[15], 0.0);
        assert_eq!(out.bit_means[12], 0.0);
    }

    #[test]
    fn clip_fraction_reported() {
        let p = protocol(4, 1.0); // max 15
        let values = vec![1.0, 2.0, 100.0, 200.0];
        let mut rng = StdRng::seed_from_u64(5);
        let out = p.run(&values, &mut rng);
        assert!((out.clip_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn local_assignment_also_works() {
        let p = BasicBitPushing::new(
            BasicConfig::new(FixedPointCodec::integer(8), BitSampling::geometric(8, 1.0))
                .with_assignment(AssignmentMode::Local),
        );
        let values = uniform_values(30_000, 200);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(6);
        let out = p.run(&values, &mut rng);
        assert!((out.estimate - truth).abs() / truth < 0.06);
    }

    #[test]
    fn spanning_codec_handles_signed_data() {
        let codec = FixedPointCodec::spanning(10, -50.0, 50.0);
        let p = BasicBitPushing::new(BasicConfig::new(codec, BitSampling::geometric(10, 1.0)));
        let values: Vec<f64> = (0..20_000).map(|i| -30.0 + (i % 60) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(7);
        let out = p.run(&values, &mut rng);
        assert!((out.estimate - truth).abs() < 1.5, "est {}", out.estimate);
    }

    #[test]
    fn mean_mechanism_label() {
        let p = BasicBitPushing::new(
            BasicConfig::new(FixedPointCodec::integer(4), BitSampling::uniform(4))
                .with_label("weighted a=1.0"),
        );
        assert_eq!(p.name(), "weighted a=1.0");
        assert_eq!(protocol(4, 1.0).name(), "bitpush-basic");
    }

    #[test]
    #[should_panic(expected = "sampling distribution must cover")]
    fn config_rejects_bit_mismatch() {
        let _ = BasicConfig::new(FixedPointCodec::integer(8), BitSampling::uniform(4));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn run_rejects_empty() {
        let p = protocol(4, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = p.run(&[], &mut rng);
    }
}
