//! Algorithm 2: adaptive (two-round) bit-pushing.
//!
//! Round 1 asks a `δ` fraction of clients to report bits sampled with the
//! data-independent geometric distribution `p_j ∝ (2^j)^γ` and estimates the
//! bit means. Round 2 re-optimizes the sampling weights to
//! `p_j ∝ (4^j m_j (1 - m_j))^α` (Lemma 3.3 at `α = 1/2`) for the remaining
//! `1 - δ` fraction. The final estimate pools both rounds' reports
//! ("caching", on by default) so no sample is wasted.
//!
//! The adaptive pass is what lets bit-pushing "zoom in" on the true data
//! range: round 1 identifies vacuous high-order bits (mean 0) and round 2
//! stops sampling them, which Figures 1c/2c/4c show makes the method
//! oblivious to a loose bit-depth guess.

use fednum_ldp::{MeanMechanism, RandomizedResponse};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::accumulator::BitAccumulator;
use crate::encoding::FixedPointCodec;
use crate::privacy::squash::BitSquash;
use crate::protocol::basic::{BasicBitPushing, BasicConfig, Outcome};
use crate::sampling::{AssignmentMode, BitSampling};

/// Configuration for adaptive bit-pushing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Value ↔ `b`-bit integer codec.
    pub codec: FixedPointCodec,
    /// Round-1 geometric exponent γ (paper default 0.5).
    pub gamma: f64,
    /// Round-2 weight exponent α (paper tests 0.5 and 1.0).
    pub alpha: f64,
    /// Fraction of clients spent in round 1 (paper's analysis guides 1/3).
    pub delta: f64,
    /// Pool both rounds' reports in the final estimate (Section 3.2
    /// "Caching"; default true).
    pub caching: bool,
    /// Central QMC (default) or local assignment, both rounds.
    pub assignment: AssignmentMode,
    /// Optional per-bit ε-LDP randomized response (both rounds).
    pub privacy: Option<RandomizedResponse>,
    /// Optional bit squashing, applied to the round-1 means before weight
    /// re-optimization *and* to the final means.
    pub squash: Option<BitSquash>,
    /// Label used by [`MeanMechanism::name`].
    pub label: Option<String>,
}

impl AdaptiveConfig {
    /// Paper defaults: `γ = 0.5`, `α = 0.5`, `δ = 1/3`, caching on.
    #[must_use]
    pub fn new(codec: FixedPointCodec) -> Self {
        Self {
            codec,
            gamma: 0.5,
            alpha: 0.5,
            delta: 1.0 / 3.0,
            caching: true,
            assignment: AssignmentMode::CentralQmc,
            privacy: None,
            squash: None,
            label: None,
        }
    }

    /// Sets α (round-2 weight exponent).
    ///
    /// # Panics
    /// Panics unless `alpha > 0` and finite.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be > 0");
        self.alpha = alpha;
        self
    }

    /// Sets γ (round-1 geometric exponent).
    #[must_use]
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma.is_finite(), "gamma must be finite");
        self.gamma = gamma;
        self
    }

    /// Sets δ (round-1 client fraction).
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        self.delta = delta;
        self
    }

    /// Enables or disables pooling of the two rounds.
    #[must_use]
    pub fn with_caching(mut self, caching: bool) -> Self {
        self.caching = caching;
        self
    }

    /// Sets the assignment mode.
    #[must_use]
    pub fn with_assignment(mut self, mode: AssignmentMode) -> Self {
        self.assignment = mode;
        self
    }

    /// Enables ε-LDP randomized response.
    #[must_use]
    pub fn with_privacy(mut self, rr: RandomizedResponse) -> Self {
        self.privacy = Some(rr);
        self
    }

    /// Enables bit squashing.
    #[must_use]
    pub fn with_squash(mut self, squash: BitSquash) -> Self {
        self.squash = Some(squash);
        self
    }

    /// Sets the display label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// Result of an adaptive bit-pushing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// Final mean estimate in the value domain.
    pub estimate: f64,
    /// Round-1 outcome (on the δ cohort).
    pub round1: Outcome,
    /// Round-2 outcome (on the 1-δ cohort).
    pub round2: Outcome,
    /// The re-optimized round-2 sampling distribution.
    pub round2_sampling: BitSampling,
    /// Final per-bit means used for the estimate (pooled if caching).
    pub bit_means: Vec<f64>,
    /// Fraction of inputs clipped by the codec.
    pub clip_fraction: f64,
}

/// The adaptive bit-pushing protocol (Algorithm 2).
///
/// # Examples
///
/// ```
/// use fednum_core::encoding::FixedPointCodec;
/// use fednum_core::protocol::adaptive::{AdaptiveBitPushing, AdaptiveConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // 14-bit codec, but the data only occupies 8 bits: round 1 discovers
/// // this and round 2 stops sampling the vacuous high bits.
/// let values: Vec<f64> = (0..10_000).map(|i| (i % 250) as f64).collect();
/// let protocol = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(14)));
/// let outcome = protocol.run(&values, &mut StdRng::seed_from_u64(1));
/// let dropped = outcome.round2_sampling.probs().iter().filter(|&&p| p == 0.0).count();
/// assert!(dropped >= 5, "high-order bits should be dropped in round 2");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveBitPushing {
    config: AdaptiveConfig,
}

impl AdaptiveBitPushing {
    /// Creates the protocol.
    #[must_use]
    pub fn new(config: AdaptiveConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    fn basic_config(&self, sampling: BitSampling) -> BasicConfig {
        let mut cfg =
            BasicConfig::new(self.config.codec, sampling).with_assignment(self.config.assignment);
        if let Some(rr) = &self.config.privacy {
            cfg = cfg.with_privacy(*rr);
        }
        if let Some(sq) = &self.config.squash {
            cfg = cfg.with_squash(*sq);
        }
        cfg
    }

    /// Runs both rounds.
    ///
    /// # Panics
    /// Panics unless there are at least two clients (each round needs one).
    pub fn run(&self, values: &[f64], rng: &mut dyn Rng) -> AdaptiveOutcome {
        assert!(values.len() >= 2, "need at least two clients");
        let bits = self.config.codec.bits();
        let (codes, clip_fraction) = self.config.codec.encode_all(values);

        // Random δ / (1-δ) split of the population.
        let mut order: Vec<usize> = (0..codes.len()).collect();
        order.shuffle(rng);
        let n1 =
            ((self.config.delta * codes.len() as f64).round() as usize).clamp(1, codes.len() - 1);
        let cohort1: Vec<u64> = order[..n1].iter().map(|&i| codes[i]).collect();
        let cohort2: Vec<u64> = order[n1..].iter().map(|&i| codes[i]).collect();

        // Round 1: data-independent geometric weights.
        let sampling1 = BitSampling::geometric(bits, self.config.gamma);
        let round1_proto = BasicBitPushing::new(self.basic_config(sampling1));
        let round1 = round1_proto.run_encoded(&cohort1, clip_fraction, rng);

        // Re-optimize weights from the round-1 (squashed) bit means. If
        // every β is zero (constant-looking signal) fall back to round 1's
        // distribution.
        let sampling2 = BitSampling::adaptive_weights(&round1.bit_means, self.config.alpha)
            .unwrap_or_else(|| BitSampling::geometric(bits, self.config.gamma));

        // Round 2 on the remaining clients.
        let round2_proto = BasicBitPushing::new(self.basic_config(sampling2.clone()));
        let round2 = round2_proto.run_encoded(&cohort2, clip_fraction, rng);

        // Final aggregation.
        let (bit_means, counts) = if self.config.caching {
            // Pool raw reports from both rounds (Algorithm 2 line 9); bits
            // that neither round sampled fall back to round 1's estimate
            // (which is 0 for squash-dropped noise bits).
            let mut pooled = round1.accumulator.clone();
            pooled.merge(&round2.accumulator);
            let means = pooled.bit_means_with_prior(&round1.bit_means);
            (means, pooled.counts().to_vec())
        } else {
            // Round 2 only, with round-1 means as prior for the bits round 2
            // deliberately stopped sampling (deterministic or squashed).
            let means = round2.accumulator.bit_means_with_prior(&round1.bit_means);
            (means, round2.accumulator.counts().to_vec())
        };
        let bit_means = match &self.config.squash {
            Some(sq) => sq.apply(&bit_means, &counts, self.config.privacy.as_ref()),
            None => bit_means,
        };
        let encoded = BitAccumulator::estimate_from_means(&bit_means);
        let estimate = self.config.codec.decode_float(encoded);

        AdaptiveOutcome {
            estimate,
            round1,
            round2,
            round2_sampling: sampling2,
            bit_means,
            clip_fraction,
        }
    }
}

impl MeanMechanism for AdaptiveBitPushing {
    fn name(&self) -> String {
        self.config
            .label
            .clone()
            .unwrap_or_else(|| "bitpush-adaptive".to_string())
    }

    fn estimate_mean(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        self.run(values, rng).estimate
    }

    fn epsilon(&self) -> Option<f64> {
        // Each client participates in exactly one round and sends one bit.
        self.config
            .privacy
            .as_ref()
            .map(RandomizedResponse::epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_values(n: usize, hi: u64) -> Vec<f64> {
        (0..n).map(|i| (i as u64 % hi) as f64).collect()
    }

    fn rmse_of<F: Fn(u64) -> f64>(truth: f64, trials: u64, f: F) -> f64 {
        let mut sq = 0.0;
        for s in 0..trials {
            let e = f(s);
            sq += (e - truth) * (e - truth);
        }
        (sq / trials as f64).sqrt()
    }

    #[test]
    fn estimates_mean_within_tolerance() {
        let p = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(8)));
        let values = uniform_values(20_000, 200);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(1);
        let out = p.run(&values, &mut rng);
        assert!(
            (out.estimate - truth).abs() / truth < 0.05,
            "est {} truth {truth}",
            out.estimate
        );
    }

    #[test]
    fn round2_drops_vacuous_high_bits() {
        // 12-bit codec but data below 64: bits 6..12 have mean 0, and round 2
        // must not waste samples on them.
        let p = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(12)));
        let values = uniform_values(30_000, 60);
        let mut rng = StdRng::seed_from_u64(2);
        let out = p.run(&values, &mut rng);
        let probs = out.round2_sampling.probs();
        for (j, &p) in probs.iter().enumerate().skip(7) {
            assert_eq!(p, 0.0, "vacuous bit {j} still sampled");
        }
        assert!(probs[..6].iter().sum::<f64>() > 0.99);
    }

    #[test]
    fn adaptive_beats_basic_on_loose_bit_depth() {
        // The Figure 1c phenomenon: with many vacuous bits, single-round
        // weighted sampling wastes most reports on noise-free-but-empty high
        // bits while adaptive reallocates them.
        let bits = 14;
        let values = uniform_values(10_000, 60); // only 6 bits used
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let basic = BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, 1.0),
        ));
        let adaptive = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(bits)));
        let r_basic = rmse_of(truth, 40, |s| {
            basic.estimate_mean(&values, &mut StdRng::seed_from_u64(s))
        });
        let r_adaptive = rmse_of(truth, 40, |s| {
            adaptive.estimate_mean(&values, &mut StdRng::seed_from_u64(s))
        });
        assert!(
            r_adaptive < r_basic,
            "adaptive {r_adaptive} should beat basic {r_basic}"
        );
    }

    #[test]
    fn caching_does_not_hurt() {
        let values = uniform_values(6_000, 200);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let with = AdaptiveBitPushing::new(
            AdaptiveConfig::new(FixedPointCodec::integer(8)).with_caching(true),
        );
        let without = AdaptiveBitPushing::new(
            AdaptiveConfig::new(FixedPointCodec::integer(8)).with_caching(false),
        );
        let r_with = rmse_of(truth, 60, |s| {
            with.estimate_mean(&values, &mut StdRng::seed_from_u64(s))
        });
        let r_without = rmse_of(truth, 60, |s| {
            without.estimate_mean(&values, &mut StdRng::seed_from_u64(s))
        });
        // Pooling strictly adds reports per bit; allow small noise slack.
        assert!(
            r_with < r_without * 1.15,
            "caching {r_with} vs no caching {r_without}"
        );
    }

    #[test]
    fn constant_population_is_exact() {
        let p = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(8)));
        let values = vec![42.0; 1000];
        let mut rng = StdRng::seed_from_u64(3);
        let out = p.run(&values, &mut rng);
        assert!((out.estimate - 42.0).abs() < 1e-9, "est {}", out.estimate);
    }

    #[test]
    fn privacy_with_squash_survives_deep_bit_depth() {
        // Figure 4c: under DP, squashing keeps adaptive accurate as vacuous
        // bit depth grows.
        let rr = RandomizedResponse::from_epsilon(2.0);
        let values = uniform_values(60_000, 60);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let p = AdaptiveBitPushing::new(
            AdaptiveConfig::new(FixedPointCodec::integer(16))
                .with_privacy(rr)
                .with_squash(BitSquash::Absolute(0.05)),
        );
        let r = rmse_of(truth, 20, |s| {
            p.estimate_mean(&values, &mut StdRng::seed_from_u64(s))
        });
        assert!(r / truth < 0.25, "NRMSE {} too high", r / truth);
    }

    #[test]
    fn delta_controls_round_sizes() {
        let p = AdaptiveBitPushing::new(
            AdaptiveConfig::new(FixedPointCodec::integer(6)).with_delta(0.25),
        );
        let values = uniform_values(1_000, 50);
        let mut rng = StdRng::seed_from_u64(4);
        let out = p.run(&values, &mut rng);
        assert_eq!(out.round1.accumulator.total_reports(), 250);
        assert_eq!(out.round2.accumulator.total_reports(), 750);
    }

    #[test]
    fn two_client_minimum() {
        let p = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(4)));
        let mut rng = StdRng::seed_from_u64(5);
        let out = p.run(&[3.0, 5.0], &mut rng);
        assert!(out.estimate.is_finite());
    }

    #[test]
    fn label_round_trips() {
        let p = AdaptiveBitPushing::new(
            AdaptiveConfig::new(FixedPointCodec::integer(4)).with_label("adaptive"),
        );
        assert_eq!(p.name(), "adaptive");
    }

    #[test]
    #[should_panic(expected = "at least two clients")]
    fn rejects_single_client() {
        let p = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(4)));
        let mut rng = StdRng::seed_from_u64(0);
        let _ = p.run(&[1.0], &mut rng);
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn rejects_bad_delta() {
        let _ = AdaptiveConfig::new(FixedPointCodec::integer(4)).with_delta(1.0);
    }
}
