//! The bit-pushing protocols.
//!
//! * [`basic`] — Algorithm 1: one round with a fixed bit-sampling
//!   distribution (the paper's "weighted" method when used with geometric
//!   weights).
//! * [`adaptive`] — Algorithm 2: a first round learns the bit means, a
//!   second round samples with the re-optimized weights, optionally pooling
//!   both rounds ("caching"). The paper's "adaptive" method.
//!
//! Both implement [`fednum_ldp::MeanMechanism`], so they can be swept
//! alongside the baseline mechanisms by the figure drivers.

pub mod adaptive;
pub mod basic;

pub use adaptive::{AdaptiveBitPushing, AdaptiveConfig, AdaptiveOutcome};
pub use basic::{BasicBitPushing, BasicConfig, Outcome};
