//! Nonlinear aggregates via bit-pushing (Section 3.4 "Other functions, e.g.,
//! higher moments, products and geometric means, can also be approximated
//! via bit-pushing").
//!
//! Every reduction here turns a nonlinear aggregate into one or more *mean*
//! estimations of locally derived values, so any [`MeanMechanism`] — basic
//! or adaptive bit-pushing, or a baseline — can serve as the engine.

use fednum_ldp::MeanMechanism;
use rand::Rng;

/// Estimates the `k`-th raw moment `E[X^k]`: clients locally raise their
/// value to the `k`-th power, then the mechanism estimates the mean of the
/// derived values. The mechanism's codec must span the `k`-th-power domain
/// (`k·b` bits for `b`-bit nonnegative inputs).
///
/// # Panics
/// Panics if `k == 0` or `values` is empty.
pub fn raw_moment<M: MeanMechanism>(
    values: &[f64],
    k: u32,
    mechanism: &M,
    rng: &mut dyn Rng,
) -> f64 {
    assert!(k >= 1, "moment order must be >= 1");
    assert!(!values.is_empty(), "need at least one value");
    let powered: Vec<f64> = values.iter().map(|&x| x.powi(k as i32)).collect();
    mechanism.estimate_mean(&powered, rng)
}

/// Estimates the geometric mean `(Π x_i)^{1/n} = exp(mean(ln x))`: clients
/// locally take logarithms, the mechanism estimates the mean in log domain,
/// and the server exponentiates. The mechanism's codec must span the
/// log-domain range (use [`crate::FixedPointCodec::spanning`]).
///
/// # Panics
/// Panics if any value is non-positive or `values` is empty.
pub fn geometric_mean<M: MeanMechanism>(values: &[f64], mechanism: &M, rng: &mut dyn Rng) -> f64 {
    log_mean(values, mechanism, rng).exp()
}

/// Estimates the log of the product `ln Π x_i = n · mean(ln x)` — returned
/// in log domain because the product itself overflows for any realistic
/// population.
///
/// # Panics
/// Panics if any value is non-positive or `values` is empty.
pub fn log_product<M: MeanMechanism>(values: &[f64], mechanism: &M, rng: &mut dyn Rng) -> f64 {
    values.len() as f64 * log_mean(values, mechanism, rng)
}

fn log_mean<M: MeanMechanism>(values: &[f64], mechanism: &M, rng: &mut dyn Rng) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    assert!(
        values.iter().all(|&x| x > 0.0),
        "log-domain aggregates require positive values"
    );
    let logs: Vec<f64> = values.iter().map(|&x| x.ln()).collect();
    mechanism.estimate_mean(&logs, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::FixedPointCodec;
    use crate::protocol::basic::{BasicBitPushing, BasicConfig};
    use crate::sampling::BitSampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bitpush_int(bits: u32) -> BasicBitPushing {
        BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, 1.0),
        ))
    }

    fn bitpush_span(bits: u32, lo: f64, hi: f64) -> BasicBitPushing {
        BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::spanning(bits, lo, hi),
            BitSampling::geometric(bits, 1.0),
        ))
    }

    #[test]
    fn second_raw_moment() {
        let values: Vec<f64> = (0..50_000).map(|i| (i % 100) as f64).collect();
        let truth = values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64;
        // Squares < 10000 → 14 bits.
        let mech = bitpush_int(14);
        let mut rng = StdRng::seed_from_u64(1);
        let est = raw_moment(&values, 2, &mech, &mut rng);
        assert!((est / truth - 1.0).abs() < 0.1, "est {est} truth {truth}");
    }

    #[test]
    fn third_raw_moment() {
        let values: Vec<f64> = (0..50_000).map(|i| (i % 20) as f64).collect();
        let truth = values.iter().map(|v| v.powi(3)).sum::<f64>() / values.len() as f64;
        // Cubes < 8000 → 13 bits.
        let mech = bitpush_int(13);
        let mut rng = StdRng::seed_from_u64(2);
        let est = raw_moment(&values, 3, &mech, &mut rng);
        assert!((est / truth - 1.0).abs() < 0.1, "est {est} truth {truth}");
    }

    #[test]
    fn first_moment_is_the_mean() {
        let values: Vec<f64> = (0..20_000).map(|i| (i % 200) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mech = bitpush_int(8);
        let mut rng = StdRng::seed_from_u64(3);
        let est = raw_moment(&values, 1, &mech, &mut rng);
        assert!((est / truth - 1.0).abs() < 0.05);
    }

    #[test]
    fn geometric_mean_of_lognormal_like_data() {
        // Values in [1, e^5]: logs uniform in [0, 5].
        let values: Vec<f64> = (0..40_000)
            .map(|i| ((i % 1000) as f64 / 999.0 * 5.0).exp())
            .collect();
        let truth = (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp();
        let mech = bitpush_span(12, 0.0, 5.0);
        let mut rng = StdRng::seed_from_u64(4);
        let est = geometric_mean(&values, &mech, &mut rng);
        assert!((est / truth - 1.0).abs() < 0.1, "est {est} truth {truth}");
    }

    #[test]
    fn log_product_scales_with_n() {
        let values = vec![2.0; 1000];
        // ln Π = 1000 ln 2.
        let mech = bitpush_span(10, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let est = log_product(&values, &mech, &mut rng);
        let truth = 1000.0 * 2.0f64.ln();
        assert!((est / truth - 1.0).abs() < 0.01, "est {est} truth {truth}");
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geometric_mean_rejects_zero() {
        let mech = bitpush_int(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = geometric_mean(&[1.0, 0.0], &mech, &mut rng);
    }

    #[test]
    #[should_panic(expected = "moment order")]
    fn raw_moment_rejects_zero_order() {
        let mech = bitpush_int(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = raw_moment(&[1.0], 0, &mech, &mut rng);
    }
}
