//! Bit-sampling probability vectors and client-to-bit assignment.
//!
//! The choice of `p_j` governs the estimator's variance (Section 3.1):
//!
//! * [`BitSampling::uniform`] — `p_j = 1/b`; suboptimal, included as the
//!   paper's strawman;
//! * [`BitSampling::geometric`] — `p_j ∝ (2^j)^γ`; `γ = 1` is the optimum
//!   under the worst-case bound `β_j = 4^j/4` (giving `p_j = 2^j/(2^b-1)`),
//!   `γ = 0.5` is the softer default the paper's experiments favour without
//!   DP;
//! * [`BitSampling::optimal`] — `p_j ∝ √β_j` from (estimated) bit means,
//!   the exact optimum of Lemma 3.3, used by round 2 of the adaptive
//!   protocol;
//! * [`BitSampling::custom`] — arbitrary nonnegative weights.
//!
//! Assignment of clients to bit indices is either **central/QMC** (the
//! server deterministically apportions `p_j · n` clients to bit `j` by
//! largest-remainder rounding and shuffles who-gets-what; the default, which
//! "reduces variance in the number of reports of each bit" and blunts
//! poisoning) or **local** (each client samples its own index from `p`).

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::bits::weight;

/// Who chooses which bit a client reports (Section 3.1, "Local vs. central
/// randomness").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AssignmentMode {
    /// Server-side quasi-Monte-Carlo apportionment (default).
    #[default]
    CentralQmc,
    /// Client-side multinomial sampling.
    Local,
}

/// A normalized bit-sampling probability vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitSampling {
    probs: Vec<f64>,
}

impl BitSampling {
    /// Uniform probabilities `p_j = 1/b`.
    ///
    /// # Panics
    /// Panics if `bits == 0` or `bits > 52`.
    #[must_use]
    pub fn uniform(bits: u32) -> Self {
        Self::custom(vec![1.0; usize_bits(bits)])
    }

    /// Geometric probabilities `p_j ∝ 2^{γ j}`.
    ///
    /// `γ = 1` reproduces the paper's worst-case-optimal `p_j = 2^j/(2^b-1)`;
    /// `γ = 0.5` is the default first-round choice in Algorithm 2.
    ///
    /// # Panics
    /// Panics if `bits` is out of range or `gamma` is not finite.
    #[must_use]
    pub fn geometric(bits: u32, gamma: f64) -> Self {
        assert!(gamma.is_finite(), "gamma must be finite");
        let weights = (0..usize_bits(bits))
            .map(|j| weight(j as u32).powf(gamma))
            .collect();
        Self::custom(weights)
    }

    /// The variance-optimal probabilities of Lemma 3.3 for the given
    /// (possibly estimated) bit means: `p_j ∝ √(4^j m_j (1 - m_j))`.
    ///
    /// Returns `None` when every β is zero (all bit means are 0 or 1 — a
    /// constant or empty signal), in which case callers should fall back to
    /// a data-independent choice.
    #[must_use]
    pub fn optimal(bit_means: &[f64]) -> Option<Self> {
        let betas = crate::bits::beta_weights(bit_means);
        if betas.iter().all(|&b| b == 0.0) {
            return None;
        }
        Some(Self::custom(betas.iter().map(|b| b.sqrt()).collect()))
    }

    /// Like [`Self::optimal`] but with the exponent `α` of Algorithm 2
    /// applied to the whole β product: `p_j ∝ (4^j m_j (1 - m_j))^α`.
    /// `α = 0.5` recovers [`Self::optimal`].
    #[must_use]
    pub fn adaptive_weights(bit_means: &[f64], alpha: f64) -> Option<Self> {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be > 0");
        let betas = crate::bits::beta_weights(bit_means);
        if betas.iter().all(|&b| b == 0.0) {
            return None;
        }
        Some(Self::custom(betas.iter().map(|b| b.powf(alpha)).collect()))
    }

    /// Normalizes arbitrary nonnegative weights into a probability vector.
    ///
    /// # Panics
    /// Panics if `weights` is empty, longer than 52, contains negatives /
    /// non-finite values, or sums to zero.
    #[must_use]
    pub fn custom(weights: Vec<f64>) -> Self {
        assert!(
            !weights.is_empty() && weights.len() <= 52,
            "need 1..=52 bit weights"
        );
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be nonnegative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        Self {
            probs: weights.iter().map(|w| w / total).collect(),
        }
    }

    /// The normalized probabilities, one per bit index.
    #[must_use]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of bit indices.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.probs.len() as u32
    }

    /// Deterministic largest-remainder apportionment of `n` clients to bit
    /// indices: counts `c_j ≈ p_j · n` with `Σ c_j = n` exactly.
    #[must_use]
    pub fn apportion(&self, n: usize) -> Vec<usize> {
        let mut counts: Vec<usize> = Vec::with_capacity(self.probs.len());
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(self.probs.len());
        let mut assigned = 0usize;
        for (j, &p) in self.probs.iter().enumerate() {
            let exact = p * n as f64;
            let floor = exact.floor() as usize;
            counts.push(floor);
            assigned += floor;
            remainders.push((j, exact - floor as f64));
        }
        // Hand the leftover seats to the largest remainders (ties broken by
        // lower bit index for determinism).
        remainders.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite remainders")
                .then(a.0.cmp(&b.0))
        });
        let leftover = n - assigned;
        for &(j, _) in remainders.iter().take(leftover) {
            counts[j] += 1;
        }
        counts
    }

    /// Central QMC assignment: returns one bit index per client. Counts per
    /// bit are exactly [`Self::apportion`]; which client reports which bit is
    /// a uniform random matching.
    #[must_use]
    pub fn assign_qmc(&self, n: usize, rng: &mut dyn Rng) -> Vec<u32> {
        let counts = self.apportion(n);
        let mut assignment = Vec::with_capacity(n);
        for (j, &c) in counts.iter().enumerate() {
            assignment.extend(std::iter::repeat_n(j as u32, c));
        }
        assignment.shuffle(rng);
        assignment
    }

    /// Local assignment: each client independently samples its bit index
    /// from `p` (inverse-CDF).
    #[must_use]
    pub fn assign_local(&self, n: usize, rng: &mut dyn Rng) -> Vec<u32> {
        let mut cdf = Vec::with_capacity(self.probs.len());
        let mut acc = 0.0;
        for &p in &self.probs {
            acc += p;
            cdf.push(acc);
        }
        (0..n)
            .map(|_| {
                let u: f64 = rng.random();
                cdf.partition_point(|&c| c < u).min(self.probs.len() - 1) as u32
            })
            .collect()
    }

    /// Assignment under the configured mode.
    #[must_use]
    pub fn assign(&self, mode: AssignmentMode, n: usize, rng: &mut dyn Rng) -> Vec<u32> {
        match mode {
            AssignmentMode::CentralQmc => self.assign_qmc(n, rng),
            AssignmentMode::Local => self.assign_local(n, rng),
        }
    }

    /// Drops the sampling weight of the given bits to zero (e.g. bits a
    /// first round found vacuous) and renormalizes. Returns `None` if that
    /// would zero out everything.
    #[must_use]
    pub fn without_bits(&self, drop: &[u32]) -> Option<Self> {
        let mut w = self.probs.clone();
        for &j in drop {
            if (j as usize) < w.len() {
                w[j as usize] = 0.0;
            }
        }
        if w.iter().all(|&x| x == 0.0) {
            None
        } else {
            Some(Self::custom(w))
        }
    }
}

fn usize_bits(bits: u32) -> usize {
    assert!((1..=52).contains(&bits), "bits must be in 1..=52");
    bits as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_probabilities() {
        let s = BitSampling::uniform(4);
        assert_eq!(s.probs(), &[0.25; 4]);
        assert_eq!(s.bits(), 4);
    }

    #[test]
    fn geometric_gamma_one_matches_paper() {
        // p_j = 2^j / (2^b - 1).
        let s = BitSampling::geometric(4, 1.0);
        let denom = 15.0;
        for (j, &p) in s.probs().iter().enumerate() {
            assert!((p - (1u64 << j) as f64 / denom).abs() < 1e-12);
        }
    }

    #[test]
    fn geometric_gamma_half_is_flatter() {
        let g1 = BitSampling::geometric(8, 1.0);
        let g05 = BitSampling::geometric(8, 0.5);
        // Same ordering, but γ=0.5 gives the top bit less relative mass.
        assert!(g05.probs()[7] < g1.probs()[7]);
        assert!(g05.probs()[0] > g1.probs()[0]);
    }

    #[test]
    fn geometric_gamma_zero_is_uniform() {
        let g0 = BitSampling::geometric(5, 0.0);
        let u = BitSampling::uniform(5);
        for (a, b) in g0.probs().iter().zip(u.probs()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_normalize() {
        let s = BitSampling::custom(vec![1.0, 3.0]);
        assert!((s.probs()[0] - 0.25).abs() < 1e-12);
        assert!((s.probs()[1] - 0.75).abs() < 1e-12);
        let total: f64 = BitSampling::geometric(20, 0.7).probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_matches_lemma_3_3() {
        // Means chosen so β = [0.25, 4*0.25] = [0.25, 1.0]; √β = [0.5, 1.0].
        let s = BitSampling::optimal(&[0.5, 0.5]).unwrap();
        assert!((s.probs()[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.probs()[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_skips_deterministic_bits() {
        let s = BitSampling::optimal(&[0.5, 0.0, 1.0]).unwrap();
        assert_eq!(s.probs()[1], 0.0);
        assert_eq!(s.probs()[2], 0.0);
        assert!((s.probs()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_none_for_constant_signal() {
        assert!(BitSampling::optimal(&[0.0, 1.0, 0.0]).is_none());
    }

    #[test]
    fn adaptive_weights_alpha_one_squares_optimal() {
        // α = 1 uses β directly; α = 0.5 uses √β.
        let means = vec![0.5, 0.5];
        let a1 = BitSampling::adaptive_weights(&means, 1.0).unwrap();
        // β = [0.25, 1.0] → p = [0.2, 0.8].
        assert!((a1.probs()[0] - 0.2).abs() < 1e-12);
        let a05 = BitSampling::adaptive_weights(&means, 0.5).unwrap();
        let opt = BitSampling::optimal(&means).unwrap();
        assert_eq!(a05.probs(), opt.probs());
    }

    #[test]
    fn apportion_sums_to_n_exactly() {
        let s = BitSampling::geometric(10, 0.5);
        for n in [1usize, 7, 100, 9999, 10_000] {
            let counts = s.apportion(n);
            assert_eq!(counts.iter().sum::<usize>(), n, "n = {n}");
        }
    }

    #[test]
    fn apportion_is_within_one_of_exact() {
        let s = BitSampling::geometric(8, 1.0);
        let n = 12_345;
        for (j, &c) in s.apportion(n).iter().enumerate() {
            let exact = s.probs()[j] * n as f64;
            assert!(
                (c as f64 - exact).abs() < 1.0,
                "bit {j}: {c} vs exact {exact}"
            );
        }
    }

    #[test]
    fn qmc_assignment_counts_are_deterministic() {
        let s = BitSampling::geometric(6, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let assign = s.assign_qmc(1000, &mut rng);
        assert_eq!(assign.len(), 1000);
        let counts = s.apportion(1000);
        for (j, &c) in counts.iter().enumerate() {
            let got = assign.iter().filter(|&&a| a == j as u32).count();
            assert_eq!(got, c, "bit {j}");
        }
    }

    #[test]
    fn qmc_shuffle_differs_across_seeds() {
        let s = BitSampling::uniform(4);
        let a = s.assign_qmc(100, &mut StdRng::seed_from_u64(1));
        let b = s.assign_qmc(100, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn local_assignment_approximates_probs() {
        let s = BitSampling::custom(vec![1.0, 1.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let assign = s.assign_local(n, &mut rng);
        for (j, &p) in s.probs().iter().enumerate() {
            let frac = assign.iter().filter(|&&a| a == j as u32).count() as f64 / n as f64;
            assert!((frac - p).abs() < 0.01, "bit {j}: {frac} vs {p}");
        }
    }

    #[test]
    fn local_has_higher_count_variance_than_qmc() {
        // The reason the paper defaults to QMC (Section 3.1).
        let s = BitSampling::uniform(8);
        let n = 800;
        let expected = 100.0;
        let spread = |mode: AssignmentMode| {
            let mut max_dev: f64 = 0.0;
            for seed in 0..50 {
                let mut rng = StdRng::seed_from_u64(seed);
                let assign = s.assign(mode, n, &mut rng);
                for j in 0..8u32 {
                    let c = assign.iter().filter(|&&a| a == j).count() as f64;
                    max_dev = max_dev.max((c - expected).abs());
                }
            }
            max_dev
        };
        assert_eq!(spread(AssignmentMode::CentralQmc), 0.0);
        assert!(spread(AssignmentMode::Local) > 5.0);
    }

    #[test]
    fn without_bits_zeroes_and_renormalizes() {
        let s = BitSampling::uniform(4);
        let t = s.without_bits(&[2, 3]).unwrap();
        assert_eq!(t.probs(), &[0.5, 0.5, 0.0, 0.0]);
        assert!(s.without_bits(&[0, 1, 2, 3]).is_none());
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn custom_rejects_all_zero() {
        let _ = BitSampling::custom(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn custom_rejects_negative() {
        let _ = BitSampling::custom(vec![1.0, -0.5]);
    }
}
