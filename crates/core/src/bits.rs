//! Binary decomposition helpers.
//!
//! The linear decomposition at the heart of bit-pushing: for an encoded
//! value `x = Σ_j 2^j x^(j)`, the mean satisfies `x̄ = Σ_j 2^j x̄^(j)`
//! (equation (1) of the paper), so per-bit means reconstruct the value mean
//! exactly. The β weights `β_j = 4^j x̄^(j)(1 - x̄^(j))` drive both the
//! variance formula (Lemma 3.1) and the optimal sampling probabilities
//! (Lemma 3.3).

/// Extracts bit `j` of an encoded value.
#[must_use]
#[inline]
pub fn bit(v: u64, j: u32) -> bool {
    (v >> j) & 1 == 1
}

/// Extracts bit `j` as 0.0 / 1.0.
#[must_use]
#[inline]
pub fn bit_f64(v: u64, j: u32) -> f64 {
    f64::from(u8::from(bit(v, j)))
}

/// The weight `2^j` of bit `j` in the linear decomposition.
///
/// # Panics
/// Panics (in debug) for `j >= 53` where `f64` exactness would be lost.
#[must_use]
#[inline]
pub fn weight(j: u32) -> f64 {
    debug_assert!(j < 53);
    (1u64 << j) as f64
}

/// Reconstructs a value-domain (encoded units) mean from per-bit means:
/// `Σ_j 2^j m_j`.
#[must_use]
pub fn reconstruct(bit_means: &[f64]) -> f64 {
    bit_means
        .iter()
        .enumerate()
        .map(|(j, &m)| weight(j as u32) * m)
        .sum()
}

/// Exact per-bit means of an encoded population: `m_j = (1/n) Σ_i x_i^(j)`.
///
/// # Panics
/// Panics if `codes` is empty.
#[must_use]
pub fn exact_bit_means(codes: &[u64], bits: u32) -> Vec<f64> {
    assert!(!codes.is_empty(), "need at least one value");
    let n = codes.len() as f64;
    (0..bits)
        .map(|j| codes.iter().map(|&v| bit_f64(v, j)).sum::<f64>() / n)
        .collect()
}

/// The per-bit variance contributions `β_j = 4^j m_j (1 - m_j)` of
/// Lemma 3.1, with bit means clamped into `[0, 1]` (debiased DP estimates
/// may stray outside).
#[must_use]
pub fn beta_weights(bit_means: &[f64]) -> Vec<f64> {
    bit_means
        .iter()
        .enumerate()
        .map(|(j, &m)| {
            let m = m.clamp(0.0, 1.0);
            let w = weight(j as u32);
            w * w * m * (1.0 - m)
        })
        .collect()
}

/// The estimator variance of Lemma 3.1 for `n` clients and sampling
/// probabilities `p`: `(1/n) Σ_j β_j / p_j`. Bits with `β_j = 0` contribute
/// nothing even when `p_j = 0`.
///
/// # Panics
/// Panics if the slices' lengths differ, if `n == 0`, or if some bit has
/// positive β but zero sampling probability (infinite variance).
#[must_use]
pub fn estimator_variance(bit_means: &[f64], probs: &[f64], n: usize) -> f64 {
    assert_eq!(bit_means.len(), probs.len(), "length mismatch");
    assert!(n > 0, "need at least one client");
    let betas = beta_weights(bit_means);
    let mut total = 0.0;
    for (j, (&b, &p)) in betas.iter().zip(probs).enumerate() {
        if b == 0.0 {
            continue;
        }
        assert!(p > 0.0, "bit {j} has positive variance but p = 0");
        total += b / p;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_extraction() {
        let v = 0b1011_0010u64;
        assert!(!bit(v, 0));
        assert!(bit(v, 1));
        assert!(bit(v, 4));
        assert!(bit(v, 7));
        assert!(!bit(v, 8));
        assert_eq!(bit_f64(v, 1), 1.0);
        assert_eq!(bit_f64(v, 0), 0.0);
    }

    #[test]
    fn weights_are_powers_of_two() {
        assert_eq!(weight(0), 1.0);
        assert_eq!(weight(1), 2.0);
        assert_eq!(weight(10), 1024.0);
    }

    #[test]
    fn reconstruct_inverts_decomposition() {
        for v in [0u64, 1, 5, 100, 255, 256, 12345] {
            let bits = 16;
            let means: Vec<f64> = (0..bits).map(|j| bit_f64(v, j)).collect();
            assert_eq!(reconstruct(&means), v as f64);
        }
    }

    #[test]
    fn exact_bit_means_reconstruct_population_mean() {
        let codes = vec![3u64, 9, 200, 77, 1];
        let truth = codes.iter().sum::<u64>() as f64 / codes.len() as f64;
        let means = exact_bit_means(&codes, 8);
        assert!((reconstruct(&means) - truth).abs() < 1e-12);
    }

    #[test]
    fn bit_means_are_fractions() {
        let codes = vec![0b01u64, 0b11, 0b10, 0b00];
        let means = exact_bit_means(&codes, 2);
        assert!((means[0] - 0.5).abs() < 1e-12);
        assert!((means[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn beta_weights_formula() {
        let means = vec![0.5, 0.25, 1.0, 0.0];
        let betas = beta_weights(&means);
        assert!((betas[0] - 0.25).abs() < 1e-12); // 1 * 0.25
        assert!((betas[1] - 4.0 * 0.1875).abs() < 1e-12); // 4 * 3/16
        assert_eq!(betas[2], 0.0); // deterministic bit
        assert_eq!(betas[3], 0.0);
    }

    #[test]
    fn beta_weights_clamp_out_of_range_means() {
        let betas = beta_weights(&[-0.2, 1.4]);
        assert_eq!(betas, vec![0.0, 0.0]);
    }

    #[test]
    fn variance_matches_lemma_3_1_by_hand() {
        // Two bits, means 0.5 each, p = [0.25, 0.75], n = 100:
        // V = (1/100) (1*0.25/0.25 + 4*0.25/0.75) = (1 + 4/3)/100.
        let v = estimator_variance(&[0.5, 0.5], &[0.25, 0.75], 100);
        assert!((v - (1.0 + 4.0 / 3.0) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn variance_ignores_zero_beta_zero_prob_bits() {
        // Vacuous high bit with p = 0 is fine.
        let v = estimator_variance(&[0.5, 0.0], &[1.0, 0.0], 10);
        assert!((v - 0.025).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p = 0")]
    fn variance_rejects_unsampled_informative_bit() {
        let _ = estimator_variance(&[0.5, 0.5], &[1.0, 0.0], 10);
    }

    #[test]
    fn variance_scales_inversely_with_n() {
        let v1 = estimator_variance(&[0.5], &[1.0], 100);
        let v2 = estimator_variance(&[0.5], &[1.0], 400);
        assert!((v1 / v2 - 4.0).abs() < 1e-12);
    }
}
