//! Binary decomposition helpers.
//!
//! The linear decomposition at the heart of bit-pushing: for an encoded
//! value `x = Σ_j 2^j x^(j)`, the mean satisfies `x̄ = Σ_j 2^j x̄^(j)`
//! (equation (1) of the paper), so per-bit means reconstruct the value mean
//! exactly. The β weights `β_j = 4^j x̄^(j)(1 - x̄^(j))` drive both the
//! variance formula (Lemma 3.1) and the optimal sampling probabilities
//! (Lemma 3.3).

/// Extracts bit `j` of an encoded value.
#[must_use]
#[inline]
pub fn bit(v: u64, j: u32) -> bool {
    (v >> j) & 1 == 1
}

/// Extracts bit `j` as 0.0 / 1.0.
#[must_use]
#[inline]
pub fn bit_f64(v: u64, j: u32) -> f64 {
    f64::from(u8::from(bit(v, j)))
}

/// The weight `2^j` of bit `j` in the linear decomposition.
///
/// # Panics
/// Panics (in debug) for `j >= 53` where `f64` exactness would be lost.
#[must_use]
#[inline]
pub fn weight(j: u32) -> f64 {
    debug_assert!(j < 53);
    (1u64 << j) as f64
}

/// Reconstructs a value-domain (encoded units) mean from per-bit means:
/// `Σ_j 2^j m_j`.
#[must_use]
pub fn reconstruct(bit_means: &[f64]) -> f64 {
    bit_means
        .iter()
        .enumerate()
        .map(|(j, &m)| weight(j as u32) * m)
        .sum()
}

/// Exact per-bit means of an encoded population: `m_j = (1/n) Σ_i x_i^(j)`.
///
/// # Panics
/// Panics if `codes` is empty.
#[must_use]
pub fn exact_bit_means(codes: &[u64], bits: u32) -> Vec<f64> {
    assert!(!codes.is_empty(), "need at least one value");
    let n = codes.len() as f64;
    (0..bits)
        .map(|j| codes.iter().map(|&v| bit_f64(v, j)).sum::<f64>() / n)
        .collect()
}

/// The per-bit variance contributions `β_j = 4^j m_j (1 - m_j)` of
/// Lemma 3.1, with bit means clamped into `[0, 1]` (debiased DP estimates
/// may stray outside).
#[must_use]
pub fn beta_weights(bit_means: &[f64]) -> Vec<f64> {
    bit_means
        .iter()
        .enumerate()
        .map(|(j, &m)| {
            let m = m.clamp(0.0, 1.0);
            let w = weight(j as u32);
            w * w * m * (1.0 - m)
        })
        .collect()
}

/// The estimator variance of Lemma 3.1 for `n` clients and sampling
/// probabilities `p`: `(1/n) Σ_j β_j / p_j`. Bits with `β_j = 0` contribute
/// nothing even when `p_j = 0`.
///
/// # Panics
/// Panics if the slices' lengths differ, if `n == 0`, or if some bit has
/// positive β but zero sampling probability (infinite variance).
#[must_use]
pub fn estimator_variance(bit_means: &[f64], probs: &[f64], n: usize) -> f64 {
    assert_eq!(bit_means.len(), probs.len(), "length mismatch");
    assert!(n > 0, "need at least one client");
    let betas = beta_weights(bit_means);
    let mut total = 0.0;
    for (j, (&b, &p)) in betas.iter().zip(probs).enumerate() {
        if b == 0.0 {
            continue;
        }
        assert!(p > 0.0, "bit {j} has positive variance but p = 0");
        total += b / p;
    }
    total / n as f64
}

/// Packed per-bit-position bitmap planes over a window of client slots.
///
/// Plane `j` holds two bitmaps along the client-slot axis: an *occupancy*
/// bitmap (slot delivered a report for bit position `j`) and a *value*
/// bitmap (the reported bit itself, always a subset of the occupancy
/// bits). Tallying a plane is `count_ones()` over its `u64` words — 64
/// clients per instruction — and is exactly the scalar per-client tally
/// `ones[j] += bit; counts[j] += 1`, so plane aggregation is bit-identical
/// to the frame-at-a-time accumulate it replaces.
///
/// The in-memory layout doubles as the batched wire layout (per plane:
/// occupancy words, then value words, little-endian `u64`s), so a batched
/// frame decodes straight into a `BitPlanes` without touching individual
/// client reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitPlanes {
    bits: u32,
    slots: usize,
    /// Words per plane: `slots.div_ceil(64)`.
    words: usize,
    /// `bits * words` words; plane `j` is `[j * words, (j + 1) * words)`.
    occupancy: Vec<u64>,
    value: Vec<u64>,
}

impl BitPlanes {
    /// Empty planes for `bits` bit positions over `slots` client slots.
    ///
    /// # Panics
    /// Panics if `bits == 0`.
    #[must_use]
    pub fn new(bits: u32, slots: usize) -> Self {
        assert!(bits > 0, "need at least one bit plane");
        let words = slots.div_ceil(64);
        Self {
            bits,
            slots,
            words,
            occupancy: vec![0; bits as usize * words],
            value: vec![0; bits as usize * words],
        }
    }

    /// Number of bit planes.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of client slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// `u64` words per plane bitmap (`slots.div_ceil(64)`).
    #[must_use]
    pub fn words_per_plane(&self) -> usize {
        self.words
    }

    /// Records slot `slot` reporting bit value `value` on plane `plane`.
    ///
    /// # Panics
    /// Panics if `slot` or `plane` is out of range, or if the slot already
    /// reported on this plane (each slot carries exactly one report).
    pub fn record(&mut self, slot: usize, plane: u32, value: bool) {
        assert!(slot < self.slots, "slot {slot} out of {}", self.slots);
        assert!(plane < self.bits, "plane {plane} out of {}", self.bits);
        let idx = plane as usize * self.words + slot / 64;
        let mask = 1u64 << (slot % 64);
        assert_eq!(self.occupancy[idx] & mask, 0, "slot {slot} reported twice");
        self.occupancy[idx] |= mask;
        if value {
            self.value[idx] |= mask;
        }
    }

    /// Per-plane one-counts: `popcount(value_j)` — the `Σ_i x_i^(j)` of the
    /// scalar tally.
    #[must_use]
    pub fn ones(&self) -> Vec<u64> {
        (0..self.bits as usize)
            .map(|j| {
                self.plane_value(j)
                    .iter()
                    .map(|w| u64::from(w.count_ones()))
                    .sum()
            })
            .collect()
    }

    /// Per-plane report counts: `popcount(occupancy_j)`.
    #[must_use]
    pub fn counts(&self) -> Vec<u64> {
        (0..self.bits as usize)
            .map(|j| {
                self.plane_occupancy(j)
                    .iter()
                    .map(|w| u64::from(w.count_ones()))
                    .sum()
            })
            .collect()
    }

    /// `ones()` restricted to the slots set in `keep` (a slot bitmap of
    /// `words_per_plane()` words): `popcount(value_j & keep)` per plane.
    ///
    /// # Panics
    /// Panics if `keep.len() != words_per_plane()`.
    #[must_use]
    pub fn ones_masked(&self, keep: &[u64]) -> Vec<u64> {
        assert_eq!(keep.len(), self.words, "mask length mismatch");
        (0..self.bits as usize)
            .map(|j| {
                self.plane_value(j)
                    .iter()
                    .zip(keep)
                    .map(|(w, k)| u64::from((w & k).count_ones()))
                    .sum()
            })
            .collect()
    }

    /// `counts()` restricted to the slots set in `keep`.
    ///
    /// # Panics
    /// Panics if `keep.len() != words_per_plane()`.
    #[must_use]
    pub fn counts_masked(&self, keep: &[u64]) -> Vec<u64> {
        assert_eq!(keep.len(), self.words, "mask length mismatch");
        (0..self.bits as usize)
            .map(|j| {
                self.plane_occupancy(j)
                    .iter()
                    .zip(keep)
                    .map(|(w, k)| u64::from((w & k).count_ones()))
                    .sum()
            })
            .collect()
    }

    /// The occupancy bitmap of plane `j`.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn plane_occupancy(&self, j: usize) -> &[u64] {
        &self.occupancy[j * self.words..(j + 1) * self.words]
    }

    /// The value bitmap of plane `j`.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn plane_value(&self, j: usize) -> &[u64] {
        &self.value[j * self.words..(j + 1) * self.words]
    }

    /// Rebuilds planes from raw bitmap words (the batched-wire decode
    /// path). Fails closed on any non-canonical input: wrong word counts,
    /// set padding bits past `slots`, or a value bit outside its occupancy
    /// bit.
    ///
    /// # Errors
    /// Returns a static description of the first violated invariant.
    pub fn from_words(
        bits: u32,
        slots: usize,
        occupancy: Vec<u64>,
        value: Vec<u64>,
    ) -> Result<Self, &'static str> {
        if bits == 0 {
            return Err("zero bit planes");
        }
        let words = slots.div_ceil(64);
        if occupancy.len() != bits as usize * words || value.len() != occupancy.len() {
            return Err("bitmap word count mismatch");
        }
        if !slots.is_multiple_of(64) && words > 0 {
            let pad = !0u64 << (slots % 64);
            for j in 0..bits as usize {
                let last = (j + 1) * words - 1;
                if occupancy[last] & pad != 0 || value[last] & pad != 0 {
                    return Err("padding bits set past the slot count");
                }
            }
        }
        if occupancy.iter().zip(&value).any(|(o, v)| v & !o != 0) {
            return Err("value bit outside occupancy");
        }
        Ok(Self {
            bits,
            slots,
            words,
            occupancy,
            value,
        })
    }

    /// Appends `other`'s slots after this plane set's slots (shard fan-in).
    ///
    /// # Panics
    /// Panics if the plane counts differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bits, other.bits, "plane count mismatch");
        let new_slots = self.slots + other.slots;
        let new_words = new_slots.div_ceil(64);
        let word_off = self.slots / 64;
        let shift = (self.slots % 64) as u32;
        let mut occupancy = vec![0u64; self.bits as usize * new_words];
        let mut value = vec![0u64; self.bits as usize * new_words];
        for j in 0..self.bits as usize {
            let dst = j * new_words;
            occupancy[dst..dst + self.words].copy_from_slice(self.plane_occupancy(j));
            value[dst..dst + self.words].copy_from_slice(self.plane_value(j));
            for w in 0..other.words {
                let o = other.plane_occupancy(j)[w];
                let v = other.plane_value(j)[w];
                occupancy[dst + word_off + w] |= o << shift;
                value[dst + word_off + w] |= v << shift;
                if shift != 0 && dst + word_off + w + 1 < dst + new_words {
                    occupancy[dst + word_off + w + 1] |= o >> (64 - shift);
                    value[dst + word_off + w + 1] |= v >> (64 - shift);
                }
            }
        }
        self.slots = new_slots;
        self.words = new_words;
        self.occupancy = occupancy;
        self.value = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_extraction() {
        let v = 0b1011_0010u64;
        assert!(!bit(v, 0));
        assert!(bit(v, 1));
        assert!(bit(v, 4));
        assert!(bit(v, 7));
        assert!(!bit(v, 8));
        assert_eq!(bit_f64(v, 1), 1.0);
        assert_eq!(bit_f64(v, 0), 0.0);
    }

    #[test]
    fn weights_are_powers_of_two() {
        assert_eq!(weight(0), 1.0);
        assert_eq!(weight(1), 2.0);
        assert_eq!(weight(10), 1024.0);
    }

    #[test]
    fn reconstruct_inverts_decomposition() {
        for v in [0u64, 1, 5, 100, 255, 256, 12345] {
            let bits = 16;
            let means: Vec<f64> = (0..bits).map(|j| bit_f64(v, j)).collect();
            assert_eq!(reconstruct(&means), v as f64);
        }
    }

    #[test]
    fn exact_bit_means_reconstruct_population_mean() {
        let codes = vec![3u64, 9, 200, 77, 1];
        let truth = codes.iter().sum::<u64>() as f64 / codes.len() as f64;
        let means = exact_bit_means(&codes, 8);
        assert!((reconstruct(&means) - truth).abs() < 1e-12);
    }

    #[test]
    fn bit_means_are_fractions() {
        let codes = vec![0b01u64, 0b11, 0b10, 0b00];
        let means = exact_bit_means(&codes, 2);
        assert!((means[0] - 0.5).abs() < 1e-12);
        assert!((means[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn beta_weights_formula() {
        let means = vec![0.5, 0.25, 1.0, 0.0];
        let betas = beta_weights(&means);
        assert!((betas[0] - 0.25).abs() < 1e-12); // 1 * 0.25
        assert!((betas[1] - 4.0 * 0.1875).abs() < 1e-12); // 4 * 3/16
        assert_eq!(betas[2], 0.0); // deterministic bit
        assert_eq!(betas[3], 0.0);
    }

    #[test]
    fn beta_weights_clamp_out_of_range_means() {
        let betas = beta_weights(&[-0.2, 1.4]);
        assert_eq!(betas, vec![0.0, 0.0]);
    }

    #[test]
    fn variance_matches_lemma_3_1_by_hand() {
        // Two bits, means 0.5 each, p = [0.25, 0.75], n = 100:
        // V = (1/100) (1*0.25/0.25 + 4*0.25/0.75) = (1 + 4/3)/100.
        let v = estimator_variance(&[0.5, 0.5], &[0.25, 0.75], 100);
        assert!((v - (1.0 + 4.0 / 3.0) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn variance_ignores_zero_beta_zero_prob_bits() {
        // Vacuous high bit with p = 0 is fine.
        let v = estimator_variance(&[0.5, 0.0], &[1.0, 0.0], 10);
        assert!((v - 0.025).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p = 0")]
    fn variance_rejects_unsampled_informative_bit() {
        let _ = estimator_variance(&[0.5, 0.5], &[1.0, 0.0], 10);
    }

    #[test]
    fn variance_scales_inversely_with_n() {
        let v1 = estimator_variance(&[0.5], &[1.0], 100);
        let v2 = estimator_variance(&[0.5], &[1.0], 400);
        assert!((v1 / v2 - 4.0).abs() < 1e-12);
    }

    /// Deterministic pseudo-random reports for the plane tests.
    fn synthetic_reports(n: usize, bits: u32) -> Vec<(u32, bool)> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17)
                    .wrapping_mul(0xD134_2543_DE82_EF95);
                ((h % u64::from(bits)) as u32, h & (1 << 40) != 0)
            })
            .collect()
    }

    #[test]
    fn plane_tally_matches_scalar_accumulate() {
        let bits = 7;
        let reports = synthetic_reports(321, bits);
        let mut planes = BitPlanes::new(bits, reports.len());
        let mut ones = vec![0u64; bits as usize];
        let mut counts = vec![0u64; bits as usize];
        for (slot, &(plane, value)) in reports.iter().enumerate() {
            planes.record(slot, plane, value);
            ones[plane as usize] += u64::from(value);
            counts[plane as usize] += 1;
        }
        assert_eq!(planes.ones(), ones);
        assert_eq!(planes.counts(), counts);
    }

    #[test]
    fn masked_tally_drops_exactly_the_masked_slots() {
        let bits = 5;
        let reports = synthetic_reports(200, bits);
        let mut planes = BitPlanes::new(bits, reports.len());
        let mut ones = vec![0u64; bits as usize];
        let mut counts = vec![0u64; bits as usize];
        let mut keep = vec![0u64; planes.words_per_plane()];
        for (slot, &(plane, value)) in reports.iter().enumerate() {
            planes.record(slot, plane, value);
            if slot % 3 != 0 {
                keep[slot / 64] |= 1 << (slot % 64);
                ones[plane as usize] += u64::from(value);
                counts[plane as usize] += 1;
            }
        }
        assert_eq!(planes.ones_masked(&keep), ones);
        assert_eq!(planes.counts_masked(&keep), counts);
    }

    #[test]
    fn merge_concatenates_slots_at_unaligned_boundaries() {
        let bits = 4;
        for (na, nb) in [(0, 5), (5, 0), (63, 1), (64, 64), (65, 129), (10, 300)] {
            let ra = synthetic_reports(na, bits);
            let rb: Vec<_> = synthetic_reports(na + nb, bits).split_off(na);
            let mut a = BitPlanes::new(bits, na);
            let mut b = BitPlanes::new(bits, nb);
            let mut whole = BitPlanes::new(bits, na + nb);
            for (slot, &(plane, value)) in ra.iter().enumerate() {
                a.record(slot, plane, value);
                whole.record(slot, plane, value);
            }
            for (slot, &(plane, value)) in rb.iter().enumerate() {
                b.record(slot, plane, value);
                whole.record(na + slot, plane, value);
            }
            a.merge(&b);
            assert_eq!(a, whole, "merge mismatch at ({na}, {nb})");
        }
    }

    #[test]
    fn from_words_round_trips_canonical_planes() {
        let bits = 3;
        let reports = synthetic_reports(70, bits);
        let mut planes = BitPlanes::new(bits, reports.len());
        for (slot, &(plane, value)) in reports.iter().enumerate() {
            planes.record(slot, plane, value);
        }
        let occ: Vec<u64> = (0..bits as usize)
            .flat_map(|j| planes.plane_occupancy(j).to_vec())
            .collect();
        let val: Vec<u64> = (0..bits as usize)
            .flat_map(|j| planes.plane_value(j).to_vec())
            .collect();
        let rebuilt = BitPlanes::from_words(bits, reports.len(), occ, val).unwrap();
        assert_eq!(rebuilt, planes);
    }

    #[test]
    fn from_words_rejects_non_canonical_bitmaps() {
        // Wrong word count.
        assert!(BitPlanes::from_words(2, 10, vec![0; 3], vec![0; 3]).is_err());
        // Padding bit set past the slot count.
        assert!(BitPlanes::from_words(1, 10, vec![1 << 10], vec![0]).is_err());
        // Value bit without its occupancy bit.
        assert!(BitPlanes::from_words(1, 10, vec![0b01], vec![0b10]).is_err());
        // Zero planes.
        assert!(BitPlanes::from_words(0, 10, vec![], vec![]).is_err());
    }

    #[test]
    #[should_panic(expected = "reported twice")]
    fn double_report_on_one_slot_is_rejected() {
        let mut planes = BitPlanes::new(2, 4);
        planes.record(1, 0, true);
        planes.record(1, 0, false);
    }
}
