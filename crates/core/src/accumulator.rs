//! Server-side per-bit aggregation state.
//!
//! The server's entire view of a bit-pushing round is, per bit index, a sum
//! of (possibly debiased) reports and a count — "essentially a collection of
//! binary histograms" (Section 3.3). This is also exactly the shape secure
//! aggregation can deliver, so the accumulator is the interface between the
//! protocols and the `fednum-secagg` substrate.

use serde::{Deserialize, Serialize};

use crate::bits::reconstruct;

/// Per-bit sums and counts of reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitAccumulator {
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl BitAccumulator {
    /// Creates an empty accumulator over `bits` bit indices.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 52`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=52).contains(&bits), "bits must be in 1..=52");
        Self {
            sums: vec![0.0; bits as usize],
            counts: vec![0; bits as usize],
        }
    }

    /// Reconstructs an accumulator from raw per-bit sums and counts (e.g.
    /// out of a secure-aggregation round).
    ///
    /// # Panics
    /// Panics if lengths differ or are outside `1..=52`.
    #[must_use]
    pub fn from_parts(sums: Vec<f64>, counts: Vec<u64>) -> Self {
        assert_eq!(sums.len(), counts.len(), "length mismatch");
        assert!((1..=52).contains(&sums.len()), "bits must be in 1..=52");
        Self { sums, counts }
    }

    /// Number of bit indices.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.sums.len() as u32
    }

    /// Records one report for bit `j`. `value` is the (possibly debiased)
    /// bit contribution — exactly 0/1 without privacy, any real with.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    pub fn record(&mut self, j: u32, value: f64) {
        let j = j as usize;
        assert!(j < self.sums.len(), "bit index {j} out of range");
        self.sums[j] += value;
        self.counts[j] += 1;
    }

    /// Merges another accumulator (e.g. pooling the two rounds of the
    /// adaptive protocol — the paper's "caching").
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bits(), other.bits(), "bit-depth mismatch");
        for j in 0..self.sums.len() {
            self.sums[j] += other.sums[j];
            self.counts[j] += other.counts[j];
        }
    }

    /// Per-bit report sums.
    #[must_use]
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Per-bit report counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of reports across all bits.
    #[must_use]
    pub fn total_reports(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bit mean estimates `m_j = s_j / c_j`. Bits with no reports
    /// default to 0 — correct for bits that were deliberately unsampled
    /// because a previous round estimated their mean as 0 (Section 1.1:
    /// "unused bits (with estimated mean 0) do not need to be sampled").
    #[must_use]
    pub fn bit_means(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Like [`Self::bit_means`], but unreported bits fall back to the given
    /// prior means (used when pooling knows a better default than 0).
    ///
    /// # Panics
    /// Panics if `prior` has the wrong length.
    #[must_use]
    pub fn bit_means_with_prior(&self, prior: &[f64]) -> Vec<f64> {
        assert_eq!(prior.len(), self.sums.len(), "prior length mismatch");
        self.sums
            .iter()
            .zip(&self.counts)
            .zip(prior)
            .map(|((&s, &c), &p)| if c == 0 { p } else { s / c as f64 })
            .collect()
    }

    /// The mean estimate in encoded units: `Σ_j 2^j m_j` (Algorithm 1,
    /// lines 5–6).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        reconstruct(&self.bit_means())
    }

    /// Mean estimate from externally post-processed bit means (e.g. after
    /// bit squashing).
    #[must_use]
    pub fn estimate_from_means(means: &[f64]) -> f64 {
        reconstruct(means)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_means() {
        let mut acc = BitAccumulator::new(3);
        acc.record(0, 1.0);
        acc.record(0, 0.0);
        acc.record(2, 1.0);
        assert_eq!(acc.counts(), &[2, 0, 1]);
        assert_eq!(acc.bit_means(), vec![0.5, 0.0, 1.0]);
        assert_eq!(acc.total_reports(), 3);
        // Estimate: 1*0.5 + 2*0 + 4*1 = 4.5.
        assert!((acc.estimate() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn merge_pools_reports() {
        let mut a = BitAccumulator::new(2);
        a.record(0, 1.0);
        let mut b = BitAccumulator::new(2);
        b.record(0, 0.0);
        b.record(1, 1.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1]);
        assert_eq!(a.bit_means(), vec![0.5, 1.0]);
    }

    #[test]
    fn prior_fills_unreported_bits() {
        let mut acc = BitAccumulator::new(3);
        acc.record(1, 1.0);
        let means = acc.bit_means_with_prior(&[0.25, 0.9, 0.75]);
        assert_eq!(means, vec![0.25, 1.0, 0.75]);
    }

    #[test]
    fn from_parts_round_trips() {
        let acc = BitAccumulator::from_parts(vec![3.0, 0.0], vec![6, 0]);
        assert_eq!(acc.bit_means(), vec![0.5, 0.0]);
        assert_eq!(acc.bits(), 2);
    }

    #[test]
    fn debiased_values_accumulate() {
        // DP debiasing can produce values outside [0, 1]; the accumulator
        // must pass them through untouched.
        let mut acc = BitAccumulator::new(1);
        acc.record(0, 1.31);
        acc.record(0, -0.31);
        assert!((acc.bit_means()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn estimate_from_means_matches_reconstruct() {
        let means = vec![0.5, 0.25, 0.0, 1.0];
        assert!((BitAccumulator::estimate_from_means(&means) - (0.5 + 0.5 + 8.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_rejects_bad_index() {
        let mut acc = BitAccumulator::new(2);
        acc.record(2, 1.0);
    }

    #[test]
    #[should_panic(expected = "bit-depth mismatch")]
    fn merge_rejects_mismatched_depth() {
        let mut a = BitAccumulator::new(2);
        a.merge(&BitAccumulator::new(3));
    }
}
