//! Client-report wire format and communication accounting.
//!
//! The paper's conclusions weigh communication costs: "only a single private
//! bit of data is disclosed. However, there are additional overheads to
//! include header information, and list which bit was sampled, so the
//! distinction between sending a single bit versus a few numeric values is
//! not so meaningful: both can be easily communicated within a single
//! (encrypted) network packet. In settings where each client sends multiple
//! bits, or reveals information about multiple features, the communication
//! benefits become more apparent."
//!
//! This module makes that statement executable: a compact binary encoding
//! for bit-pushing reports (varint-coded header + packed payload bits) and
//! size accounting comparing it to full-value uploads across feature counts.

use crate::bits::BitPlanes;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// One client's report message: which task, and one (bit index, bit) pair
/// per reported feature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportMessage {
    /// Task/round identifier (header information).
    pub task_id: u64,
    /// `(bit index, bit value)` per feature reported on.
    pub reports: Vec<(u8, bool)>,
}

/// Encoding/decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the message was complete.
    Truncated,
    /// A varint ran past 10 bytes.
    VarintOverflow,
    /// Trailing bytes after a complete message.
    TrailingBytes,
    /// A framed message carried a type tag this codec does not know.
    UnknownTag(u8),
    /// A field's value violated a protocol bound (e.g. an oversized count).
    InvalidField(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            WireError::InvalidField(field) => write!(f, "invalid field: {field}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `v` as a 7-bit-per-byte varint (LEB128, as protobuf uses).
///
/// Exposed so higher protocol layers (the `fednum-transport` message codec)
/// can frame their headers through the same primitive this module uses for
/// report messages.
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one varint starting at `*pos`, advancing `*pos` past it.
///
/// # Errors
/// [`WireError::Truncated`] if the buffer ends mid-varint;
/// [`WireError::VarintOverflow`] past 10 bytes.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v = 0u64;
    for i in 0..10 {
        let &byte = buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError::VarintOverflow)
}

/// Encoded size of `v` as a varint, in bytes.
#[must_use]
pub fn varint_len(v: u64) -> usize {
    (1 + (63_u32.saturating_sub(v.leading_zeros())) / 7) as usize
}

/// Reads exactly `n` bytes starting at `*pos`, advancing `*pos` past them.
///
/// # Errors
/// [`WireError::Truncated`] if fewer than `n` bytes remain.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], WireError> {
    let end = pos.checked_add(n).ok_or(WireError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(WireError::Truncated)?;
    *pos = end;
    Ok(bytes)
}

/// Appends an `f64` as its exact IEEE-754 bit pattern (8 bytes, little
/// endian). Values round-trip bit-for-bit — including NaN payloads and
/// signed zeros — which the transport parity contract and the durable
/// privacy ledger both depend on.
pub fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads one [`push_f64`]-encoded `f64` starting at `*pos`.
///
/// # Errors
/// [`WireError::Truncated`] if fewer than 8 bytes remain.
pub fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64, WireError> {
    let bytes = read_bytes(buf, pos, 8)?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(bytes);
    Ok(f64::from_bits(u64::from_le_bytes(raw)))
}

/// Largest frame payload the streaming codec will accept: a fail-closed
/// bound applied *before* allocating, so a hostile or corrupted length
/// prefix cannot drive the reader out of memory. Generously above any
/// legitimate protocol frame (the biggest are full-mesh key-share frames).
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Total wire size of a length-delimited frame around `payload_len` bytes.
#[must_use]
pub fn frame_len(payload_len: usize) -> usize {
    varint_len(payload_len as u64) + payload_len
}

/// Writes one length-delimited frame — `varint(len) · len bytes` — to a
/// byte sink. The inverse of [`read_frame`] / [`FrameDecoder`].
///
/// # Errors
/// Propagates the sink's I/O error; `InvalidInput` when `payload` exceeds
/// [`MAX_FRAME_LEN`] (such a frame could never be read back).
pub fn write_frame<W: Write + ?Sized>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            WireError::InvalidField("frame length"),
        ));
    }
    let mut header = Vec::with_capacity(5);
    push_varint(&mut header, payload.len() as u64);
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one length-delimited frame from a blocking byte source, returning
/// `Ok(None)` on a clean end-of-stream (EOF before the first header byte).
///
/// # Errors
/// `UnexpectedEof` when the stream ends mid-frame; `InvalidData` (wrapping
/// the [`WireError`]) for a malformed or oversized length prefix; any other
/// I/O error from the source (including timeouts) verbatim.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    // Varint header, one byte at a time: the header is 1-5 bytes in
    // practice and the source is expected to be buffered.
    let mut len: u64 = 0;
    let mut byte = [0u8; 1];
    for i in 0..10 {
        match r.read(&mut byte) {
            Ok(0) if i == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    WireError::Truncated,
                ))
            }
            Ok(_) => {}
            Err(e) => return Err(e),
        }
        len |= u64::from(byte[0] & 0x7F) << (7 * i);
        if byte[0] & 0x80 == 0 {
            let len = usize::try_from(len).unwrap_or(usize::MAX);
            if len > MAX_FRAME_LEN {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    WireError::InvalidField("frame length"),
                ));
            }
            let mut payload = vec![0u8; len];
            r.read_exact(&mut payload)?;
            return Ok(Some(payload));
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        WireError::VarintOverflow,
    ))
}

/// Incremental frame decoder for non-blocking or chunked reads: feed it
/// arbitrary byte slices as they arrive off a socket — frame headers and
/// payloads may straddle any chunk boundary — and drain complete frames.
///
/// Yields exactly the frames that [`read_frame`] would yield from the
/// concatenation of every chunk (the `proptest_wire_stream` suite pins
/// this equivalence under random split/coalesce patterns).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read off the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Compact lazily: drop consumed bytes once they dominate the buffer
        // so a long-lived connection doesn't grow without bound.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    /// [`WireError::VarintOverflow`] for a malformed length prefix,
    /// [`WireError::InvalidField`] for a length beyond [`MAX_FRAME_LEN`].
    /// After an error the stream is unrecoverable (framing is lost);
    /// callers should drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let mut pos = self.pos;
        let len = match read_varint(&self.buf, &mut pos) {
            Ok(len) => len,
            // An incomplete header is just "not enough bytes yet" — unless
            // it is already overlong, which no further bytes can fix.
            Err(WireError::Truncated) => return Ok(None),
            Err(e) => return Err(e),
        };
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len > MAX_FRAME_LEN {
            return Err(WireError::InvalidField("frame length"));
        }
        if self.buf.len() - pos < len {
            return Ok(None);
        }
        let payload = self.buf[pos..pos + len].to_vec();
        self.pos = pos + len;
        if self.pos == self.buf.len() {
            // Everything consumed: resetting is free and keeps the steady
            // state (one frame per read) allocation-stable.
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl ReportMessage {
    /// Encodes: `varint(task_id) · varint(count) · count × u8 bit-index ·
    /// ceil(count/8) packed payload bits`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.reports.len() * 2);
        self.encode_into(&mut out);
        out
    }

    /// Encodes into an existing buffer (for embedding inside a framed
    /// transport message).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_varint(out, self.task_id);
        push_varint(out, self.reports.len() as u64);
        for &(idx, _) in &self.reports {
            out.push(idx);
        }
        let mut packed = vec![0u8; self.reports.len().div_ceil(8)];
        for (i, &(_, bit)) in self.reports.iter().enumerate() {
            if bit {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&packed);
    }

    /// Decodes a message, requiring the buffer to be fully consumed.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0;
        let msg = Self::decode_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }

    /// Decodes a message starting at `*pos`, advancing `*pos` past it and
    /// leaving any trailing bytes for the caller (the embedding codec).
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let task_id = read_varint(buf, pos)?;
        let count = read_varint(buf, pos)? as usize;
        // A count larger than the remaining bytes is impossible for a valid
        // message; reject before reserving capacity for it.
        if count > buf.len().saturating_sub(*pos) {
            return Err(WireError::Truncated);
        }
        let mut indices = Vec::with_capacity(count);
        for _ in 0..count {
            indices.push(*buf.get(*pos).ok_or(WireError::Truncated)?);
            *pos += 1;
        }
        let packed_len = count.div_ceil(8);
        let packed = read_bytes(buf, pos, packed_len)?;
        let reports = indices
            .into_iter()
            .enumerate()
            .map(|(i, idx)| (idx, packed[i / 8] >> (i % 8) & 1 == 1))
            .collect();
        Ok(Self { task_id, reports })
    }

    /// Encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// A batched multi-client report frame: one wave chunk of one-bit reports
/// packed as [`BitPlanes`] bitmap words instead of per-client frames.
///
/// Where [`ReportMessage`] carries one client's `(bit index, bit)` pair —
/// ~8 bytes of frame per client — a batch frame carries a whole chunk as
/// its plane bitmaps: `2 × bits × ceil(slots/64)` little-endian `u64`
/// words after a 3-varint header, i.e. `~bits/4` bytes per client
/// regardless of chunk alignment. The wire layout *is* the in-memory
/// plane layout, so decoding is a bounds-checked copy straight into a
/// [`BitPlanes`] — no per-client parsing on the hot path.
///
/// Decoding fails closed: slot/width counts are validated against the
/// remaining buffer before any allocation, and the rebuilt planes must be
/// canonical (no padding bits past the slot count, every value bit backed
/// by an occupancy bit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReportMessage {
    /// Task/round identifier (header information), as in [`ReportMessage`].
    pub task_id: u64,
    /// The chunk's packed planes.
    pub planes: BitPlanes,
}

/// Widest bit plane a batch frame may carry: encoded values are `u64`s.
pub const MAX_BATCH_BITS: u64 = 64;

impl BatchReportMessage {
    /// Encodes: `varint(task_id) · varint(slots) · varint(bits) ·` per
    /// plane `j`: `ceil(slots/64)` occupancy words `· ceil(slots/64)`
    /// value words, each a little-endian `u64`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Encodes into an existing buffer (for embedding inside a framed
    /// transport message).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_varint(out, self.task_id);
        push_varint(out, self.planes.slots() as u64);
        push_varint(out, u64::from(self.planes.bits()));
        for j in 0..self.planes.bits() as usize {
            for &w in self.planes.plane_occupancy(j) {
                out.extend_from_slice(&w.to_le_bytes());
            }
            for &w in self.planes.plane_value(j) {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }

    /// Decodes a message, requiring the buffer to be fully consumed.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0;
        let msg = Self::decode_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }

    /// Decodes a message starting at `*pos`, advancing `*pos` past it and
    /// leaving any trailing bytes for the caller (the embedding codec).
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let task_id = read_varint(buf, pos)?;
        let slots_raw = read_varint(buf, pos)?;
        let bits_raw = read_varint(buf, pos)?;
        if bits_raw == 0 || bits_raw > MAX_BATCH_BITS {
            return Err(WireError::InvalidField("batch bit width"));
        }
        let bits = bits_raw as u32;
        let slots =
            usize::try_from(slots_raw).map_err(|_| WireError::InvalidField("batch slot count"))?;
        let words = slots.div_ceil(64);
        // A plane payload larger than the remaining bytes is impossible for
        // a valid message; reject before reserving capacity for it.
        let payload = (bits as usize)
            .checked_mul(words)
            .and_then(|w| w.checked_mul(16))
            .ok_or(WireError::InvalidField("batch slot count"))?;
        if payload > buf.len().saturating_sub(*pos) {
            return Err(WireError::Truncated);
        }
        let mut occupancy = Vec::with_capacity(bits as usize * words);
        let mut value = Vec::with_capacity(bits as usize * words);
        for _ in 0..bits {
            for dst in [&mut occupancy, &mut value] {
                for _ in 0..words {
                    let bytes = read_bytes(buf, pos, 8)?;
                    let mut raw = [0u8; 8];
                    raw.copy_from_slice(bytes);
                    dst.push(u64::from_le_bytes(raw));
                }
            }
        }
        let planes = BitPlanes::from_words(bits, slots, occupancy, value)
            .map_err(WireError::InvalidField)?;
        Ok(Self { task_id, planes })
    }

    /// Encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        varint_len(self.task_id)
            + varint_len(self.planes.slots() as u64)
            + varint_len(u64::from(self.planes.bits()))
            + self.planes.bits() as usize * self.planes.words_per_plane() * 16
    }
}

/// The `Campaign` control record: everything a longitudinal coordinator
/// needs to identify a multi-round campaign and enforce its budget policy.
///
/// One record opens (or resumes) a campaign on the daemon; the same record
/// — with `round_index` advanced — heads every durable-ledger snapshot, so
/// a restarted coordinator recovers the policy together with the balances.
/// Optional limits use a presence byte; `f64` fields are carried as exact
/// bit patterns (see [`push_f64`]), because two coordinators that disagree
/// on the last ulp of an ε budget would admit different cohorts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignMessage {
    /// Stable campaign identifier (names the on-disk state files).
    pub campaign_id: u64,
    /// Next round to be admitted. A driver opening a campaign sends its
    /// belief; the authoritative value always comes back from the ledger.
    pub round_index: u64,
    /// Budget policy: maximum private bits per client over the whole
    /// campaign (`None` = unlimited).
    pub max_bits: Option<u64>,
    /// Budget policy: maximum total ε per client (`None` = unlimited).
    pub max_epsilon: Option<f64>,
    /// Eligibility cooldown: a client that participated in round `r` is
    /// next admissible in round `r + cooldown_rounds` (values `0` and `1`
    /// both mean "every round").
    pub cooldown_rounds: u64,
    /// Private bits one round of participation charges.
    pub bits_per_round: u64,
    /// ε one round of participation charges.
    pub epsilon_per_round: f64,
}

impl CampaignMessage {
    /// Encodes into an existing buffer (for embedding in transport control
    /// frames and durable-ledger records).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_varint(out, self.campaign_id);
        push_varint(out, self.round_index);
        match self.max_bits {
            Some(v) => {
                out.push(1);
                push_varint(out, v);
            }
            None => out.push(0),
        }
        match self.max_epsilon {
            Some(v) => {
                out.push(1);
                push_f64(out, v);
            }
            None => out.push(0),
        }
        push_varint(out, self.cooldown_rounds);
        push_varint(out, self.bits_per_round);
        push_f64(out, self.epsilon_per_round);
    }

    /// Encodes to a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a record starting at `*pos`, advancing `*pos` past it.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let campaign_id = read_varint(buf, pos)?;
        let round_index = read_varint(buf, pos)?;
        let max_bits = match read_bytes(buf, pos, 1)?[0] {
            0 => None,
            1 => Some(read_varint(buf, pos)?),
            _ => return Err(WireError::InvalidField("max_bits flag")),
        };
        let max_epsilon = match read_bytes(buf, pos, 1)?[0] {
            0 => None,
            1 => Some(read_f64(buf, pos)?),
            _ => return Err(WireError::InvalidField("max_epsilon flag")),
        };
        Ok(Self {
            campaign_id,
            round_index,
            max_bits,
            max_epsilon,
            cooldown_rounds: read_varint(buf, pos)?,
            bits_per_round: read_varint(buf, pos)?,
            epsilon_per_round: read_f64(buf, pos)?,
        })
    }

    /// Decodes a record, requiring the buffer to be fully consumed.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0;
        let msg = Self::decode_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }

    /// Whether two records describe the same campaign policy — everything
    /// except the advisory `round_index`, with ε compared by exact bit
    /// pattern. A resume request whose policy does not match the durable
    /// state is rejected rather than silently re-budgeted.
    #[must_use]
    pub fn policy_matches(&self, other: &Self) -> bool {
        self.campaign_id == other.campaign_id
            && self.max_bits == other.max_bits
            && self.max_epsilon.map(f64::to_bits) == other.max_epsilon.map(f64::to_bits)
            && self.cooldown_rounds == other.cooldown_rounds
            && self.bits_per_round == other.bits_per_round
            && self.epsilon_per_round.to_bits() == other.epsilon_per_round.to_bits()
    }
}

/// Fleet control frames: the rendezvous / heartbeat / cohort protocol a
/// standalone `fednumc` participant speaks to the daemon.
///
/// A participant opens a connection, sends [`FleetMessage::Rendezvous`],
/// and receives a session token plus the heartbeat cadence in the ack.
/// From then on it answers with [`FleetMessage::Heartbeat`] on schedule and
/// waits for the coordinator to either draft it into a round
/// ([`FleetMessage::CohortAssign`]: which bit to sample, at what width,
/// under what deadline) or tell it to stand by ([`FleetMessage::CohortWait`]).
/// Drafted clients answer with one [`FleetMessage::Report`] — the paper's
/// single private bit. [`FleetMessage::Done`] ends the engagement.
///
/// Like [`CampaignMessage`], every frame has one canonical encoding
/// (varint fields, no padding, booleans as a validated 0/1 byte) so the
/// traffic ledger can account for fleet bytes exactly and the proptests can
/// pin decode→re-encode identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetMessage {
    /// Client → daemon: first frame on a fleet connection. Registers
    /// `client_id` with a capability bitmask (reserved; `0` today).
    Rendezvous { client_id: u64, capabilities: u64 },
    /// Daemon → client: registration accepted. `session_token`
    /// authenticates every later frame; the client must beat every
    /// `heartbeat_ms` and is presumed dead after `liveness_ms` of silence.
    RendezvousAck {
        session_token: u64,
        heartbeat_ms: u64,
        liveness_ms: u64,
    },
    /// Client → daemon: liveness beat `seq` (monotonically increasing).
    Heartbeat { session_token: u64, seq: u64 },
    /// Daemon → client: echo of the beat's `seq`.
    HeartbeatAck { seq: u64 },
    /// Daemon → client: you are drafted into `round`. Sample bit
    /// `bit_index` of your `bits`-bit encoded value (value derived from
    /// `value_seed`; see `transport::fleet::client_value`) and report
    /// within `deadline_ms`.
    CohortAssign {
        round: u64,
        bit_index: u32,
        bits: u32,
        value_seed: u64,
        deadline_ms: u64,
    },
    /// Daemon → client: not drafted for `round` (or arrived mid-round);
    /// stand by and expect the next assignment in roughly `retry_ms`.
    CohortWait { round: u64, retry_ms: u64 },
    /// Client → daemon: the one-bit response for `round`.
    Report {
        session_token: u64,
        round: u64,
        bit_index: u32,
        bit: bool,
    },
    /// Daemon → client: report for `round` recorded.
    ReportAck { round: u64 },
    /// Daemon → client: the engagement is over after `rounds` rounds;
    /// the client may disconnect.
    Done { rounds: u64 },
    /// Client → daemon: re-rendezvous after a connection fault. Carries
    /// the `session_token` from the original [`FleetMessage::RendezvousAck`]
    /// as proof of identity and `report_nonce`, the count of reports the
    /// client believes it has had acknowledged — the daemon uses both to
    /// re-bind the session to the new connection and to deduplicate any
    /// retransmitted [`FleetMessage::Report`] so a report is never counted
    /// (or privacy-billed) twice.
    Resume {
        client_id: u64,
        session_token: u64,
        report_nonce: u64,
    },
    /// Daemon → client: the daemon is shedding load (accept storm or
    /// backlog overflow); back off and retry in roughly `retry_after_ms`.
    Busy { retry_after_ms: u64 },
    /// Client → daemon: dismissal received. The daemon holds a dismissed
    /// client's registration until this acknowledgement arrives (or the
    /// resume grace lapses), so a [`FleetMessage::Done`] lost to a
    /// connection fault is re-collected via [`FleetMessage::Resume`]
    /// instead of stranding the client undismissed.
    DoneAck { session_token: u64 },
}

const FLEET_TAG_RENDEZVOUS: u8 = 0x01;
const FLEET_TAG_RENDEZVOUS_ACK: u8 = 0x02;
const FLEET_TAG_HEARTBEAT: u8 = 0x03;
const FLEET_TAG_HEARTBEAT_ACK: u8 = 0x04;
const FLEET_TAG_COHORT_ASSIGN: u8 = 0x05;
const FLEET_TAG_COHORT_WAIT: u8 = 0x06;
const FLEET_TAG_REPORT: u8 = 0x07;
const FLEET_TAG_REPORT_ACK: u8 = 0x08;
const FLEET_TAG_DONE: u8 = 0x09;
const FLEET_TAG_RESUME: u8 = 0x0A;
const FLEET_TAG_BUSY: u8 = 0x0B;
const FLEET_TAG_DONE_ACK: u8 = 0x0C;

impl FleetMessage {
    /// Encodes into an existing buffer (for embedding inside a framed
    /// transport control message).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            FleetMessage::Rendezvous {
                client_id,
                capabilities,
            } => {
                out.push(FLEET_TAG_RENDEZVOUS);
                push_varint(out, client_id);
                push_varint(out, capabilities);
            }
            FleetMessage::RendezvousAck {
                session_token,
                heartbeat_ms,
                liveness_ms,
            } => {
                out.push(FLEET_TAG_RENDEZVOUS_ACK);
                push_varint(out, session_token);
                push_varint(out, heartbeat_ms);
                push_varint(out, liveness_ms);
            }
            FleetMessage::Heartbeat { session_token, seq } => {
                out.push(FLEET_TAG_HEARTBEAT);
                push_varint(out, session_token);
                push_varint(out, seq);
            }
            FleetMessage::HeartbeatAck { seq } => {
                out.push(FLEET_TAG_HEARTBEAT_ACK);
                push_varint(out, seq);
            }
            FleetMessage::CohortAssign {
                round,
                bit_index,
                bits,
                value_seed,
                deadline_ms,
            } => {
                out.push(FLEET_TAG_COHORT_ASSIGN);
                push_varint(out, round);
                push_varint(out, u64::from(bit_index));
                push_varint(out, u64::from(bits));
                push_varint(out, value_seed);
                push_varint(out, deadline_ms);
            }
            FleetMessage::CohortWait { round, retry_ms } => {
                out.push(FLEET_TAG_COHORT_WAIT);
                push_varint(out, round);
                push_varint(out, retry_ms);
            }
            FleetMessage::Report {
                session_token,
                round,
                bit_index,
                bit,
            } => {
                out.push(FLEET_TAG_REPORT);
                push_varint(out, session_token);
                push_varint(out, round);
                push_varint(out, u64::from(bit_index));
                out.push(u8::from(bit));
            }
            FleetMessage::ReportAck { round } => {
                out.push(FLEET_TAG_REPORT_ACK);
                push_varint(out, round);
            }
            FleetMessage::Done { rounds } => {
                out.push(FLEET_TAG_DONE);
                push_varint(out, rounds);
            }
            FleetMessage::Resume {
                client_id,
                session_token,
                report_nonce,
            } => {
                out.push(FLEET_TAG_RESUME);
                push_varint(out, client_id);
                push_varint(out, session_token);
                push_varint(out, report_nonce);
            }
            FleetMessage::Busy { retry_after_ms } => {
                out.push(FLEET_TAG_BUSY);
                push_varint(out, retry_after_ms);
            }
            FleetMessage::DoneAck { session_token } => {
                out.push(FLEET_TAG_DONE_ACK);
                push_varint(out, session_token);
            }
        }
    }

    /// Encodes to a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a frame starting at `*pos`, advancing `*pos` past it.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        fn read_u32(buf: &[u8], pos: &mut usize, field: &'static str) -> Result<u32, WireError> {
            u32::try_from(read_varint(buf, pos)?).map_err(|_| WireError::InvalidField(field))
        }
        let tag = read_bytes(buf, pos, 1)?[0];
        match tag {
            FLEET_TAG_RENDEZVOUS => Ok(FleetMessage::Rendezvous {
                client_id: read_varint(buf, pos)?,
                capabilities: read_varint(buf, pos)?,
            }),
            FLEET_TAG_RENDEZVOUS_ACK => Ok(FleetMessage::RendezvousAck {
                session_token: read_varint(buf, pos)?,
                heartbeat_ms: read_varint(buf, pos)?,
                liveness_ms: read_varint(buf, pos)?,
            }),
            FLEET_TAG_HEARTBEAT => Ok(FleetMessage::Heartbeat {
                session_token: read_varint(buf, pos)?,
                seq: read_varint(buf, pos)?,
            }),
            FLEET_TAG_HEARTBEAT_ACK => Ok(FleetMessage::HeartbeatAck {
                seq: read_varint(buf, pos)?,
            }),
            FLEET_TAG_COHORT_ASSIGN => Ok(FleetMessage::CohortAssign {
                round: read_varint(buf, pos)?,
                bit_index: read_u32(buf, pos, "bit index")?,
                bits: read_u32(buf, pos, "bit width")?,
                value_seed: read_varint(buf, pos)?,
                deadline_ms: read_varint(buf, pos)?,
            }),
            FLEET_TAG_COHORT_WAIT => Ok(FleetMessage::CohortWait {
                round: read_varint(buf, pos)?,
                retry_ms: read_varint(buf, pos)?,
            }),
            FLEET_TAG_REPORT => Ok(FleetMessage::Report {
                session_token: read_varint(buf, pos)?,
                round: read_varint(buf, pos)?,
                bit_index: read_u32(buf, pos, "bit index")?,
                bit: match read_bytes(buf, pos, 1)?[0] {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::InvalidField("report bit")),
                },
            }),
            FLEET_TAG_REPORT_ACK => Ok(FleetMessage::ReportAck {
                round: read_varint(buf, pos)?,
            }),
            FLEET_TAG_DONE => Ok(FleetMessage::Done {
                rounds: read_varint(buf, pos)?,
            }),
            FLEET_TAG_RESUME => Ok(FleetMessage::Resume {
                client_id: read_varint(buf, pos)?,
                session_token: read_varint(buf, pos)?,
                report_nonce: read_varint(buf, pos)?,
            }),
            FLEET_TAG_BUSY => Ok(FleetMessage::Busy {
                retry_after_ms: read_varint(buf, pos)?,
            }),
            FLEET_TAG_DONE_ACK => Ok(FleetMessage::DoneAck {
                session_token: read_varint(buf, pos)?,
            }),
            other => Err(WireError::UnknownTag(other)),
        }
    }

    /// Decodes a frame, requiring the buffer to be fully consumed.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0;
        let msg = Self::decode_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }

    /// Encoded size in bytes — the unit the fleet traffic ledger counts.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out.len()
    }

    /// Whether this variant travels client → daemon (`true`) or
    /// daemon → client (`false`). The daemon rejects downlink variants
    /// arriving on the uplink as protocol errors, and vice versa.
    #[must_use]
    pub fn is_uplink(&self) -> bool {
        matches!(
            self,
            FleetMessage::Rendezvous { .. }
                | FleetMessage::Heartbeat { .. }
                | FleetMessage::Report { .. }
                | FleetMessage::Resume { .. }
                | FleetMessage::DoneAck { .. }
        )
    }
}

/// Shuffle-tier control frames: the protocol between clients, the
/// shuffler session, and the coordinator session.
///
/// A client in a shuffled round sends one [`ShuffleMessage::Submit`] to the
/// shuffler: the round it belongs to, which bit of its encoded value it was
/// drafted for, and the randomized-response output for that bit. The
/// shuffler buffers the wave, strips every envelope's sender identity,
/// applies a seeded permutation, and forwards a single
/// [`ShuffleMessage::Batch`] to the coordinator — an anonymized multiset of
/// `(bit index, bit)` entries with no per-client framing left to correlate.
///
/// Every batch entry encodes to exactly two bytes (a raw `u8` bit index and
/// a validated 0/1 bit byte), so a batch's encoded *length* is invariant
/// under the permutation — the traffic ledger charges the same bytes no
/// matter which seed shuffled the wave, which the permutation-invariance
/// contract depends on. Like [`FleetMessage`], each frame has one canonical
/// encoding and decoding fails closed on truncated or hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleMessage {
    /// Client → shuffler: one randomized one-bit report for `round_id`.
    /// `bit_index` is the drafted bit position (shuffled rounds cap codec
    /// depth at 256 bits so the index rides in one byte).
    Submit {
        round_id: u64,
        bit_index: u8,
        bit: bool,
    },
    /// Shuffler → coordinator: the anonymized, permuted wave. Entry order
    /// is the permutation's output order; nothing else about the wave
    /// survives the shuffle.
    Batch {
        round_id: u64,
        entries: Vec<(u8, bool)>,
    },
}

const SHUFFLE_TAG_SUBMIT: u8 = 0x01;
const SHUFFLE_TAG_BATCH: u8 = 0x02;

impl ShuffleMessage {
    /// Encodes into an existing buffer (for embedding inside a framed
    /// transport control message).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ShuffleMessage::Submit {
                round_id,
                bit_index,
                bit,
            } => {
                out.push(SHUFFLE_TAG_SUBMIT);
                push_varint(out, *round_id);
                out.push(*bit_index);
                out.push(u8::from(*bit));
            }
            ShuffleMessage::Batch { round_id, entries } => {
                out.push(SHUFFLE_TAG_BATCH);
                push_varint(out, *round_id);
                push_varint(out, entries.len() as u64);
                for (bit_index, bit) in entries {
                    out.push(*bit_index);
                    out.push(u8::from(*bit));
                }
            }
        }
    }

    /// Encodes to a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a frame starting at `*pos`, advancing `*pos` past it.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        fn read_bit(buf: &[u8], pos: &mut usize) -> Result<bool, WireError> {
            match read_bytes(buf, pos, 1)?[0] {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(WireError::InvalidField("shuffle bit")),
            }
        }
        let tag = read_bytes(buf, pos, 1)?[0];
        match tag {
            SHUFFLE_TAG_SUBMIT => Ok(ShuffleMessage::Submit {
                round_id: read_varint(buf, pos)?,
                bit_index: read_bytes(buf, pos, 1)?[0],
                bit: read_bit(buf, pos)?,
            }),
            SHUFFLE_TAG_BATCH => {
                let round_id = read_varint(buf, pos)?;
                let count = read_varint(buf, pos)? as usize;
                // Each entry is exactly 2 bytes; a count claiming more
                // entries than the remaining bytes could hold is hostile —
                // reject before allocating.
                if count > buf.len().saturating_sub(*pos) / 2 {
                    return Err(WireError::InvalidField("batch entry count"));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let bit_index = read_bytes(buf, pos, 1)?[0];
                    entries.push((bit_index, read_bit(buf, pos)?));
                }
                Ok(ShuffleMessage::Batch { round_id, entries })
            }
            other => Err(WireError::UnknownTag(other)),
        }
    }

    /// Decodes a frame, requiring the buffer to be fully consumed.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0;
        let msg = Self::decode_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }

    /// Encoded size in bytes — the unit the shuffle traffic ledger counts.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out.len()
    }
}

/// Bytes per client to upload full `bits`-bit values for `features`
/// features, with the same varint header.
#[must_use]
pub fn full_value_upload_bytes(task_id: u64, features: usize, bits: u32) -> usize {
    let mut header = Vec::new();
    push_varint(&mut header, task_id);
    push_varint(&mut header, features as u64);
    header.len() + features * (bits as usize).div_ceil(8)
}

/// Bytes per client for one-bit-per-feature bit-pushing reports on
/// `features` features.
#[must_use]
pub fn bitpush_upload_bytes(task_id: u64, features: usize) -> usize {
    ReportMessage {
        task_id,
        reports: vec![(0, false); features],
    }
    .encoded_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let msg = ReportMessage {
            task_id: 123_456_789,
            reports: vec![(3, true), (11, false), (0, true), (51, true)],
        };
        let bytes = msg.encode();
        assert_eq!(ReportMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn empty_report_round_trips() {
        let msg = ReportMessage {
            task_id: 0,
            reports: vec![],
        };
        assert_eq!(ReportMessage::decode(&msg.encode()).unwrap(), msg);
        assert_eq!(msg.encoded_len(), 2); // two zero varints
    }

    #[test]
    fn single_bit_report_is_a_few_bytes() {
        // The conclusions' point: one report ≈ header + index + bit, i.e.
        // the same packet class as a full value.
        let one_bit = bitpush_upload_bytes(42, 1);
        let full = full_value_upload_bytes(42, 1, 16);
        assert!(one_bit <= 4, "one-bit message is {one_bit} bytes");
        assert!(full <= 4, "full-value message is {full} bytes");
        // "not so meaningful" for a single feature:
        assert!(full <= one_bit + 1);
    }

    #[test]
    fn multi_feature_savings_emerge() {
        // "In settings where each client... reveals information about
        // multiple features, the communication benefits become more
        // apparent."
        let features = 64;
        let one_bit = bitpush_upload_bytes(42, features);
        let full = full_value_upload_bytes(42, features, 32);
        assert!(
            full >= 3 * one_bit,
            "64 features: bit-pushing {one_bit}B vs full {full}B"
        );
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16_383, 16_384, u64::MAX] {
            let msg = ReportMessage {
                task_id: v,
                reports: vec![(1, true)],
            };
            assert_eq!(ReportMessage::decode(&msg.encode()).unwrap().task_id, v);
        }
    }

    #[test]
    fn truncation_detected() {
        let msg = ReportMessage {
            task_id: 7,
            reports: vec![(1, true), (2, false)],
        };
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                ReportMessage::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let msg = ReportMessage {
            task_id: 7,
            reports: vec![(1, true)],
        };
        let mut bytes = msg.encode();
        bytes.push(0);
        assert_eq!(ReportMessage::decode(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn varint_primitives_round_trip_and_size() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, 1 << 35, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "size accounting for {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // 11 continuation bytes overflow.
        let overflow = vec![0x80u8; 11];
        let mut pos = 0;
        assert_eq!(
            read_varint(&overflow, &mut pos),
            Err(WireError::VarintOverflow)
        );
    }

    #[test]
    fn read_bytes_guards_truncation() {
        let buf = [1u8, 2, 3];
        let mut pos = 1;
        assert_eq!(read_bytes(&buf, &mut pos, 2).unwrap(), &[2, 3]);
        assert_eq!(pos, 3);
        assert_eq!(read_bytes(&buf, &mut pos, 1), Err(WireError::Truncated));
        let mut huge = usize::MAX;
        assert_eq!(
            read_bytes(&buf, &mut huge, usize::MAX),
            Err(WireError::Truncated),
            "offset overflow must not panic"
        );
    }

    #[test]
    fn decode_from_leaves_trailing_bytes() {
        let msg = ReportMessage {
            task_id: 9,
            reports: vec![(2, true)],
        };
        let mut bytes = msg.encode();
        let frame_len = bytes.len();
        bytes.extend_from_slice(&[0xAA, 0xBB]);
        let mut pos = 0;
        assert_eq!(ReportMessage::decode_from(&bytes, &mut pos).unwrap(), msg);
        assert_eq!(pos, frame_len);
        // The strict entry point still rejects the same buffer.
        assert_eq!(ReportMessage::decode(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn oversized_count_rejected_without_allocation() {
        // varint task_id 0, then count = u64::MAX: must fail cleanly.
        let mut buf = vec![0u8];
        push_varint(&mut buf, u64::MAX);
        assert_eq!(ReportMessage::decode(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn new_error_variants_display() {
        assert!(WireError::UnknownTag(0x7F).to_string().contains("0x7f"));
        assert!(WireError::InvalidField("bit index")
            .to_string()
            .contains("bit index"));
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let frames: Vec<Vec<u8>> = vec![vec![], vec![1], vec![0xAB; 300], (0..=255).collect()];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        assert_eq!(
            stream.len(),
            frames.iter().map(|f| frame_len(f.len())).sum::<usize>()
        );
        let mut r = stream.as_slice();
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(f.as_slice()));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn read_frame_rejects_truncation_and_hostile_lengths() {
        // Stream ends mid-payload.
        let mut stream = Vec::new();
        write_frame(&mut stream, &[1, 2, 3, 4]).unwrap();
        stream.truncate(3);
        let err = read_frame(&mut stream.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Stream ends mid-header.
        let partial: &[u8] = &[0x80];
        let err = read_frame(&mut &*partial).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Length prefix beyond MAX_FRAME_LEN must fail before allocating.
        let mut hostile = Vec::new();
        push_varint(&mut hostile, u64::MAX);
        let err = read_frame(&mut hostile.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Writing such a frame is rejected symmetrically.
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &big).is_err());
    }

    #[test]
    fn decoder_handles_split_and_coalesced_chunks() {
        let frames: Vec<Vec<u8>> = vec![vec![7; 200], vec![], vec![1, 2, 3]];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        // Byte-at-a-time: every header straddles a feed boundary.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.feed(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.pending(), 0);
        // All at once.
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        for f in &frames {
            assert_eq!(dec.next_frame().unwrap().as_deref(), Some(f.as_slice()));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn decoder_rejects_oversized_and_overlong_headers() {
        let mut dec = FrameDecoder::new();
        let mut hostile = Vec::new();
        push_varint(&mut hostile, (MAX_FRAME_LEN + 1) as u64);
        dec.feed(&hostile);
        assert_eq!(
            dec.next_frame(),
            Err(WireError::InvalidField("frame length"))
        );
        let mut dec = FrameDecoder::new();
        dec.feed(&[0x80; 11]);
        assert_eq!(dec.next_frame(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut dec = FrameDecoder::new();
        let mut stream = Vec::new();
        write_frame(&mut stream, &[9u8; 1000]).unwrap();
        for _ in 0..20 {
            dec.feed(&stream);
            assert_eq!(dec.next_frame().unwrap().unwrap(), vec![9u8; 1000]);
        }
        assert_eq!(dec.pending(), 0);
        // The internal buffer must not retain all 20 KiB of history.
        assert!(dec.buf.len() < 4 * stream.len(), "buffer never compacted");
    }

    #[test]
    fn decoder_accepts_frames_at_exactly_max_frame_len() {
        // The boundary a fault-injection proxy will land on: a payload of
        // exactly MAX_FRAME_LEN must stream through the decoder, one byte
        // over must be rejected before buffering the body.
        let payload = vec![0xA5u8; MAX_FRAME_LEN];
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        // Fragmented delivery: header split from body, body in two halves.
        let header_len = stream.len() - payload.len();
        dec.feed(&stream[..header_len]);
        assert_eq!(dec.next_frame().unwrap(), None, "header alone: no frame");
        let mid = header_len + payload.len() / 2;
        dec.feed(&stream[header_len..mid]);
        assert_eq!(dec.next_frame().unwrap(), None, "half a body: no frame");
        dec.feed(&stream[mid..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), payload);
        assert_eq!(dec.pending(), 0);

        // One byte past the cap is unrecoverable from the header alone.
        let mut over = Vec::new();
        push_varint(&mut over, (MAX_FRAME_LEN + 1) as u64);
        let mut dec = FrameDecoder::new();
        dec.feed(&over);
        assert_eq!(
            dec.next_frame(),
            Err(WireError::InvalidField("frame length"))
        );
    }

    #[test]
    fn decoder_survives_splits_at_every_byte_boundary() {
        // netchaos splits delivery at arbitrary byte offsets; the decoder
        // must reassemble the identical frame sequence no matter where the
        // cut lands — including inside the varint header.
        let mut stream = Vec::new();
        for msg in fleet_samples() {
            write_frame(&mut stream, &msg.encode()).unwrap();
        }
        let expected: Vec<Vec<u8>> = fleet_samples().iter().map(FleetMessage::encode).collect();
        for cut in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for chunk in [&stream[..cut], &stream[cut..]] {
                dec.feed(chunk);
                while let Some(f) = dec.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, expected, "split at byte {cut} lost a frame");
            assert_eq!(dec.pending(), 0, "split at byte {cut} left residue");
        }
    }

    #[test]
    fn f64_helpers_round_trip_exact_bits() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::MAX, f64::NAN] {
            let mut buf = Vec::new();
            push_f64(&mut buf, v);
            assert_eq!(buf.len(), 8);
            let mut pos = 0;
            let back = read_f64(&buf, &mut pos).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
            assert_eq!(pos, 8);
        }
        let short = [0u8; 7];
        let mut pos = 0;
        assert_eq!(read_f64(&short, &mut pos), Err(WireError::Truncated));
    }

    #[test]
    fn campaign_message_round_trips() {
        let msgs = [
            CampaignMessage {
                campaign_id: 77,
                round_index: 3,
                max_bits: Some(12),
                max_epsilon: Some(4.25),
                cooldown_rounds: 2,
                bits_per_round: 1,
                epsilon_per_round: 0.5,
            },
            CampaignMessage {
                campaign_id: 0,
                round_index: 0,
                max_bits: None,
                max_epsilon: None,
                cooldown_rounds: 0,
                bits_per_round: 0,
                epsilon_per_round: 0.0,
            },
        ];
        for msg in msgs {
            let bytes = msg.encode();
            assert_eq!(CampaignMessage::decode(&bytes).unwrap(), msg);
            // Embedded form leaves trailing bytes for the host codec.
            let mut framed = bytes.clone();
            framed.extend_from_slice(&[0xEE, 0xFF]);
            let mut pos = 0;
            assert_eq!(
                CampaignMessage::decode_from(&framed, &mut pos).unwrap(),
                msg
            );
            assert_eq!(pos, bytes.len());
            assert_eq!(
                CampaignMessage::decode(&framed),
                Err(WireError::TrailingBytes)
            );
        }
    }

    #[test]
    fn campaign_message_rejects_truncation_and_bad_flags() {
        let msg = CampaignMessage {
            campaign_id: 9,
            round_index: 1,
            max_bits: Some(4),
            max_epsilon: Some(1.0),
            cooldown_rounds: 1,
            bits_per_round: 1,
            epsilon_per_round: 0.25,
        };
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                CampaignMessage::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut bad = bytes.clone();
        bad[2] = 7; // max_bits presence byte
        assert_eq!(
            CampaignMessage::decode(&bad),
            Err(WireError::InvalidField("max_bits flag"))
        );
    }

    #[test]
    fn campaign_policy_match_ignores_round_index_only() {
        let a = CampaignMessage {
            campaign_id: 5,
            round_index: 0,
            max_bits: Some(8),
            max_epsilon: Some(2.0),
            cooldown_rounds: 1,
            bits_per_round: 1,
            epsilon_per_round: 0.25,
        };
        let resumed = CampaignMessage {
            round_index: 6,
            ..a
        };
        assert!(a.policy_matches(&resumed));
        assert!(!a.policy_matches(&CampaignMessage {
            epsilon_per_round: 0.5,
            ..a
        }));
        assert!(!a.policy_matches(&CampaignMessage {
            max_epsilon: None,
            ..a
        }));
        assert!(!a.policy_matches(&CampaignMessage {
            campaign_id: 6,
            ..a
        }));
    }

    fn fleet_samples() -> Vec<FleetMessage> {
        vec![
            FleetMessage::Rendezvous {
                client_id: 42,
                capabilities: 0,
            },
            FleetMessage::RendezvousAck {
                session_token: u64::MAX,
                heartbeat_ms: 250,
                liveness_ms: 1000,
            },
            FleetMessage::Heartbeat {
                session_token: 7,
                seq: 12,
            },
            FleetMessage::HeartbeatAck { seq: 12 },
            FleetMessage::CohortAssign {
                round: 3,
                bit_index: 9,
                bits: 16,
                value_seed: 0xDEAD_BEEF,
                deadline_ms: 5_000,
            },
            FleetMessage::CohortWait {
                round: 3,
                retry_ms: 400,
            },
            FleetMessage::Report {
                session_token: 7,
                round: 3,
                bit_index: 9,
                bit: true,
            },
            FleetMessage::Report {
                session_token: 7,
                round: 3,
                bit_index: 0,
                bit: false,
            },
            FleetMessage::ReportAck { round: 3 },
            FleetMessage::Done { rounds: 4 },
            FleetMessage::Resume {
                client_id: 42,
                session_token: u64::MAX,
                report_nonce: 1,
            },
            FleetMessage::Busy {
                retry_after_ms: 250,
            },
            FleetMessage::DoneAck { session_token: 7 },
        ]
    }

    #[test]
    fn fleet_messages_round_trip() {
        for msg in fleet_samples() {
            let bytes = msg.encode();
            assert_eq!(bytes.len(), msg.encoded_len());
            assert_eq!(FleetMessage::decode(&bytes).unwrap(), msg, "{msg:?}");
            // Embedded form leaves trailing bytes for the host codec.
            let mut framed = bytes.clone();
            framed.extend_from_slice(&[0xEE, 0xFF]);
            let mut pos = 0;
            assert_eq!(FleetMessage::decode_from(&framed, &mut pos).unwrap(), msg);
            assert_eq!(pos, bytes.len());
            assert_eq!(FleetMessage::decode(&framed), Err(WireError::TrailingBytes));
        }
    }

    #[test]
    fn fleet_messages_reject_truncation() {
        for msg in fleet_samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    FleetMessage::decode(&bytes[..cut]).is_err(),
                    "{msg:?} cut at {cut} must fail"
                );
            }
        }
    }

    #[test]
    fn fleet_messages_reject_bad_fields() {
        assert_eq!(
            FleetMessage::decode(&[0x7E]),
            Err(WireError::UnknownTag(0x7E))
        );
        // Report bit byte must be exactly 0 or 1.
        let mut bad = FleetMessage::Report {
            session_token: 1,
            round: 1,
            bit_index: 1,
            bit: true,
        }
        .encode();
        *bad.last_mut().unwrap() = 2;
        assert_eq!(
            FleetMessage::decode(&bad),
            Err(WireError::InvalidField("report bit"))
        );
        // bit_index wider than u32 is rejected as a typed field error.
        let mut wide = vec![FLEET_TAG_COHORT_ASSIGN];
        push_varint(&mut wide, 0); // round
        push_varint(&mut wide, u64::from(u32::MAX) + 1); // bit_index
        push_varint(&mut wide, 16);
        push_varint(&mut wide, 0);
        push_varint(&mut wide, 0);
        assert_eq!(
            FleetMessage::decode(&wide),
            Err(WireError::InvalidField("bit index"))
        );
    }

    #[test]
    fn fleet_direction_split_is_total() {
        let (up, down): (Vec<_>, Vec<_>) = fleet_samples().into_iter().partition(|m| m.is_uplink());
        assert_eq!(up.len(), 6); // rendezvous, heartbeat, 2× report, resume, done-ack
        assert_eq!(down.len(), 7);
    }

    #[test]
    fn shuffle_messages_round_trip_canonically() {
        let samples = vec![
            ShuffleMessage::Submit {
                round_id: 0,
                bit_index: 0,
                bit: false,
            },
            ShuffleMessage::Submit {
                round_id: u64::MAX,
                bit_index: 255,
                bit: true,
            },
            ShuffleMessage::Batch {
                round_id: 7,
                entries: vec![],
            },
            ShuffleMessage::Batch {
                round_id: 42,
                entries: vec![(0, true), (9, false), (255, true)],
            },
        ];
        for msg in samples {
            let bytes = msg.encode();
            assert_eq!(bytes.len(), msg.encoded_len());
            assert_eq!(ShuffleMessage::decode(&bytes).unwrap(), msg, "{msg:?}");
            for cut in 0..bytes.len() {
                assert!(
                    ShuffleMessage::decode(&bytes[..cut]).is_err(),
                    "{msg:?} cut at {cut} must fail"
                );
            }
        }
    }

    #[test]
    fn shuffle_batch_length_is_permutation_invariant() {
        // Every entry is exactly 2 bytes, so reordering a batch never
        // changes its encoded length — the traffic-parity contract.
        let forward = ShuffleMessage::Batch {
            round_id: 3,
            entries: vec![(1, true), (2, false), (200, true)],
        };
        let reversed = ShuffleMessage::Batch {
            round_id: 3,
            entries: vec![(200, true), (2, false), (1, true)],
        };
        assert_eq!(forward.encoded_len(), reversed.encoded_len());
    }

    #[test]
    fn shuffle_messages_reject_bad_fields() {
        assert_eq!(
            ShuffleMessage::decode(&[0x7F]),
            Err(WireError::UnknownTag(0x7F))
        );
        // The submit bit byte must be exactly 0 or 1.
        let mut bad = ShuffleMessage::Submit {
            round_id: 5,
            bit_index: 3,
            bit: true,
        }
        .encode();
        *bad.last_mut().unwrap() = 2;
        assert_eq!(
            ShuffleMessage::decode(&bad),
            Err(WireError::InvalidField("shuffle bit"))
        );
        // A hostile batch count far beyond the buffer is rejected before
        // any allocation happens.
        let mut hostile = vec![SHUFFLE_TAG_BATCH];
        push_varint(&mut hostile, 0); // round_id
        push_varint(&mut hostile, u64::MAX); // count
        assert_eq!(
            ShuffleMessage::decode(&hostile),
            Err(WireError::InvalidField("batch entry count"))
        );
    }

    fn sample_planes(slots: usize, bits: u32) -> BitPlanes {
        let mut planes = BitPlanes::new(bits, slots);
        for slot in 0..slots {
            let h = (slot as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(23);
            planes.record(slot, (h % u64::from(bits)) as u32, h & 1 == 1);
        }
        planes
    }

    #[test]
    fn batch_report_round_trips() {
        for (slots, bits) in [(0, 1), (1, 10), (63, 10), (64, 10), (65, 3), (1000, 16)] {
            let msg = BatchReportMessage {
                task_id: 0xFEED_F00D,
                planes: sample_planes(slots, bits),
            };
            let bytes = msg.encode();
            assert_eq!(bytes.len(), msg.encoded_len(), "({slots}, {bits})");
            assert_eq!(BatchReportMessage::decode(&bytes).unwrap(), msg);
            // Embedded form leaves trailing bytes for the host codec.
            let mut framed = bytes.clone();
            framed.extend_from_slice(&[0xEE, 0xFF]);
            let mut pos = 0;
            assert_eq!(
                BatchReportMessage::decode_from(&framed, &mut pos).unwrap(),
                msg
            );
            assert_eq!(pos, bytes.len());
            assert_eq!(
                BatchReportMessage::decode(&framed),
                Err(WireError::TrailingBytes)
            );
        }
    }

    #[test]
    fn batch_report_rejects_truncation_at_every_cut() {
        let msg = BatchReportMessage {
            task_id: 7,
            planes: sample_planes(100, 4),
        };
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                BatchReportMessage::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn batch_report_rejects_hostile_headers_before_allocating() {
        // Slot count claiming far more payload than the buffer holds.
        let mut hostile = Vec::new();
        push_varint(&mut hostile, 0); // task_id
        push_varint(&mut hostile, u64::MAX); // slots
        push_varint(&mut hostile, 10); // bits
        assert!(BatchReportMessage::decode(&hostile).is_err());
        // Zero-width and over-wide planes are typed field errors.
        for bad_bits in [0u64, 65, 1 << 32] {
            let mut buf = Vec::new();
            push_varint(&mut buf, 0);
            push_varint(&mut buf, 0);
            push_varint(&mut buf, bad_bits);
            assert_eq!(
                BatchReportMessage::decode(&buf),
                Err(WireError::InvalidField("batch bit width"))
            );
        }
    }

    #[test]
    fn batch_report_rejects_non_canonical_planes() {
        // One plane over 10 slots, with the bitmap words written directly.
        fn frame(occ: u64, val: u64) -> Vec<u8> {
            let mut buf = Vec::new();
            push_varint(&mut buf, 1); // task_id
            push_varint(&mut buf, 10); // slots
            push_varint(&mut buf, 1); // bits
            buf.extend_from_slice(&occ.to_le_bytes());
            buf.extend_from_slice(&val.to_le_bytes());
            buf
        }
        assert!(BatchReportMessage::decode(&frame(0b11, 0b10)).is_ok());
        // A value bit with no occupancy bit behind it.
        assert_eq!(
            BatchReportMessage::decode(&frame(0b01, 0b10)),
            Err(WireError::InvalidField("value bit outside occupancy"))
        );
        // A bit set past the slot count.
        assert_eq!(
            BatchReportMessage::decode(&frame(1 << 10, 0)),
            Err(WireError::InvalidField(
                "padding bits set past the slot count"
            ))
        );
    }

    #[test]
    fn batch_report_amortizes_per_client_bytes() {
        // The tentpole's arithmetic: at bits = 10 a 4096-client chunk costs
        // ~2.5 B/client on the wire; a chunk of length-delimited per-client
        // frames costs ~5 B/client before any transport envelope overhead.
        let chunk = 4096;
        let batch = BatchReportMessage {
            task_id: 42,
            planes: sample_planes(chunk, 10),
        };
        let per_client = ReportMessage {
            task_id: 42,
            reports: vec![(3, true)],
        };
        assert!(batch.encoded_len() < chunk * 3);
        let scalar_framed = chunk * frame_len(per_client.encoded_len());
        let batch_framed = frame_len(batch.encoded_len());
        assert!(
            2 * scalar_framed > 3 * batch_framed,
            "batched wire saves <1.5x: {scalar_framed} vs {batch_framed}"
        );
    }

    #[test]
    fn payload_bits_are_packed() {
        // 8 single-bit reports cost 1 payload byte, not 8.
        let msg = ReportMessage {
            task_id: 1,
            reports: (0..8).map(|i| (i as u8, i % 2 == 0)).collect(),
        };
        // 1 (task) + 1 (count) + 8 (indices) + 1 (packed bits).
        assert_eq!(msg.encoded_len(), 11);
    }
}
