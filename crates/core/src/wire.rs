//! Client-report wire format and communication accounting.
//!
//! The paper's conclusions weigh communication costs: "only a single private
//! bit of data is disclosed. However, there are additional overheads to
//! include header information, and list which bit was sampled, so the
//! distinction between sending a single bit versus a few numeric values is
//! not so meaningful: both can be easily communicated within a single
//! (encrypted) network packet. In settings where each client sends multiple
//! bits, or reveals information about multiple features, the communication
//! benefits become more apparent."
//!
//! This module makes that statement executable: a compact binary encoding
//! for bit-pushing reports (varint-coded header + packed payload bits) and
//! size accounting comparing it to full-value uploads across feature counts.

use serde::{Deserialize, Serialize};

/// One client's report message: which task, and one (bit index, bit) pair
/// per reported feature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportMessage {
    /// Task/round identifier (header information).
    pub task_id: u64,
    /// `(bit index, bit value)` per feature reported on.
    pub reports: Vec<(u8, bool)>,
}

/// Encoding/decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the message was complete.
    Truncated,
    /// A varint ran past 10 bytes.
    VarintOverflow,
    /// Trailing bytes after a complete message.
    TrailingBytes,
    /// A framed message carried a type tag this codec does not know.
    UnknownTag(u8),
    /// A field's value violated a protocol bound (e.g. an oversized count).
    InvalidField(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            WireError::InvalidField(field) => write!(f, "invalid field: {field}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `v` as a 7-bit-per-byte varint (LEB128, as protobuf uses).
///
/// Exposed so higher protocol layers (the `fednum-transport` message codec)
/// can frame their headers through the same primitive this module uses for
/// report messages.
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one varint starting at `*pos`, advancing `*pos` past it.
///
/// # Errors
/// [`WireError::Truncated`] if the buffer ends mid-varint;
/// [`WireError::VarintOverflow`] past 10 bytes.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v = 0u64;
    for i in 0..10 {
        let &byte = buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError::VarintOverflow)
}

/// Encoded size of `v` as a varint, in bytes.
#[must_use]
pub fn varint_len(v: u64) -> usize {
    (1 + (63_u32.saturating_sub(v.leading_zeros())) / 7) as usize
}

/// Reads exactly `n` bytes starting at `*pos`, advancing `*pos` past them.
///
/// # Errors
/// [`WireError::Truncated`] if fewer than `n` bytes remain.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], WireError> {
    let end = pos.checked_add(n).ok_or(WireError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(WireError::Truncated)?;
    *pos = end;
    Ok(bytes)
}

impl ReportMessage {
    /// Encodes: `varint(task_id) · varint(count) · count × u8 bit-index ·
    /// ceil(count/8) packed payload bits`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.reports.len() * 2);
        self.encode_into(&mut out);
        out
    }

    /// Encodes into an existing buffer (for embedding inside a framed
    /// transport message).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_varint(out, self.task_id);
        push_varint(out, self.reports.len() as u64);
        for &(idx, _) in &self.reports {
            out.push(idx);
        }
        let mut packed = vec![0u8; self.reports.len().div_ceil(8)];
        for (i, &(_, bit)) in self.reports.iter().enumerate() {
            if bit {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&packed);
    }

    /// Decodes a message, requiring the buffer to be fully consumed.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0;
        let msg = Self::decode_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }

    /// Decodes a message starting at `*pos`, advancing `*pos` past it and
    /// leaving any trailing bytes for the caller (the embedding codec).
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let task_id = read_varint(buf, pos)?;
        let count = read_varint(buf, pos)? as usize;
        // A count larger than the remaining bytes is impossible for a valid
        // message; reject before reserving capacity for it.
        if count > buf.len().saturating_sub(*pos) {
            return Err(WireError::Truncated);
        }
        let mut indices = Vec::with_capacity(count);
        for _ in 0..count {
            indices.push(*buf.get(*pos).ok_or(WireError::Truncated)?);
            *pos += 1;
        }
        let packed_len = count.div_ceil(8);
        let packed = read_bytes(buf, pos, packed_len)?;
        let reports = indices
            .into_iter()
            .enumerate()
            .map(|(i, idx)| (idx, packed[i / 8] >> (i % 8) & 1 == 1))
            .collect();
        Ok(Self { task_id, reports })
    }

    /// Encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// Bytes per client to upload full `bits`-bit values for `features`
/// features, with the same varint header.
#[must_use]
pub fn full_value_upload_bytes(task_id: u64, features: usize, bits: u32) -> usize {
    let mut header = Vec::new();
    push_varint(&mut header, task_id);
    push_varint(&mut header, features as u64);
    header.len() + features * (bits as usize).div_ceil(8)
}

/// Bytes per client for one-bit-per-feature bit-pushing reports on
/// `features` features.
#[must_use]
pub fn bitpush_upload_bytes(task_id: u64, features: usize) -> usize {
    ReportMessage {
        task_id,
        reports: vec![(0, false); features],
    }
    .encoded_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let msg = ReportMessage {
            task_id: 123_456_789,
            reports: vec![(3, true), (11, false), (0, true), (51, true)],
        };
        let bytes = msg.encode();
        assert_eq!(ReportMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn empty_report_round_trips() {
        let msg = ReportMessage {
            task_id: 0,
            reports: vec![],
        };
        assert_eq!(ReportMessage::decode(&msg.encode()).unwrap(), msg);
        assert_eq!(msg.encoded_len(), 2); // two zero varints
    }

    #[test]
    fn single_bit_report_is_a_few_bytes() {
        // The conclusions' point: one report ≈ header + index + bit, i.e.
        // the same packet class as a full value.
        let one_bit = bitpush_upload_bytes(42, 1);
        let full = full_value_upload_bytes(42, 1, 16);
        assert!(one_bit <= 4, "one-bit message is {one_bit} bytes");
        assert!(full <= 4, "full-value message is {full} bytes");
        // "not so meaningful" for a single feature:
        assert!(full <= one_bit + 1);
    }

    #[test]
    fn multi_feature_savings_emerge() {
        // "In settings where each client... reveals information about
        // multiple features, the communication benefits become more
        // apparent."
        let features = 64;
        let one_bit = bitpush_upload_bytes(42, features);
        let full = full_value_upload_bytes(42, features, 32);
        assert!(
            full >= 3 * one_bit,
            "64 features: bit-pushing {one_bit}B vs full {full}B"
        );
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16_383, 16_384, u64::MAX] {
            let msg = ReportMessage {
                task_id: v,
                reports: vec![(1, true)],
            };
            assert_eq!(ReportMessage::decode(&msg.encode()).unwrap().task_id, v);
        }
    }

    #[test]
    fn truncation_detected() {
        let msg = ReportMessage {
            task_id: 7,
            reports: vec![(1, true), (2, false)],
        };
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                ReportMessage::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let msg = ReportMessage {
            task_id: 7,
            reports: vec![(1, true)],
        };
        let mut bytes = msg.encode();
        bytes.push(0);
        assert_eq!(ReportMessage::decode(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn varint_primitives_round_trip_and_size() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, 1 << 35, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "size accounting for {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // 11 continuation bytes overflow.
        let overflow = vec![0x80u8; 11];
        let mut pos = 0;
        assert_eq!(
            read_varint(&overflow, &mut pos),
            Err(WireError::VarintOverflow)
        );
    }

    #[test]
    fn read_bytes_guards_truncation() {
        let buf = [1u8, 2, 3];
        let mut pos = 1;
        assert_eq!(read_bytes(&buf, &mut pos, 2).unwrap(), &[2, 3]);
        assert_eq!(pos, 3);
        assert_eq!(read_bytes(&buf, &mut pos, 1), Err(WireError::Truncated));
        let mut huge = usize::MAX;
        assert_eq!(
            read_bytes(&buf, &mut huge, usize::MAX),
            Err(WireError::Truncated),
            "offset overflow must not panic"
        );
    }

    #[test]
    fn decode_from_leaves_trailing_bytes() {
        let msg = ReportMessage {
            task_id: 9,
            reports: vec![(2, true)],
        };
        let mut bytes = msg.encode();
        let frame_len = bytes.len();
        bytes.extend_from_slice(&[0xAA, 0xBB]);
        let mut pos = 0;
        assert_eq!(ReportMessage::decode_from(&bytes, &mut pos).unwrap(), msg);
        assert_eq!(pos, frame_len);
        // The strict entry point still rejects the same buffer.
        assert_eq!(ReportMessage::decode(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn oversized_count_rejected_without_allocation() {
        // varint task_id 0, then count = u64::MAX: must fail cleanly.
        let mut buf = vec![0u8];
        push_varint(&mut buf, u64::MAX);
        assert_eq!(ReportMessage::decode(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn new_error_variants_display() {
        assert!(WireError::UnknownTag(0x7F).to_string().contains("0x7f"));
        assert!(WireError::InvalidField("bit index")
            .to_string()
            .contains("bit index"));
    }

    #[test]
    fn payload_bits_are_packed() {
        // 8 single-bit reports cost 1 payload byte, not 8.
        let msg = ReportMessage {
            task_id: 1,
            reports: (0..8).map(|i| (i as u8, i % 2 == 0)).collect(),
        };
        // 1 (task) + 1 (count) + 8 (indices) + 1 (packed bits).
        assert_eq!(msg.encoded_len(), 11);
    }
}
