//! Federated histograms with one-bit membership reports.
//!
//! Section 3.3 observes that "the data gathered in bit-pushing protocols is
//! essentially a collection of binary histograms (counts of 0 and 1 bits for
//! each bit index), for which accurate protocols exist under distributed
//! privacy". This module turns that observation into a first-class
//! aggregate: estimating the full distribution over `d` buckets while each
//! client still discloses a **single (optionally randomized) bit** — the
//! membership indicator for one server-assigned bucket.
//!
//! The server apportions clients evenly over buckets (the same QMC idea as
//! bit assignment); client `i` assigned bucket `k` reports `[bucket(x_i) ==
//! k]` through randomized response; the debiased mean of bucket `k`'s
//! reports is an unbiased estimate of that bucket's probability mass. The
//! resulting counts are exactly the shape that the distributed-DP
//! post-processing in [`crate::privacy::distributed`] operates on.

use fednum_ldp::RandomizedResponse;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for a one-bit federated histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramConfig {
    /// Number of buckets `d`.
    pub buckets: usize,
    /// Optional ε-LDP randomized response on the membership bit.
    pub privacy: Option<RandomizedResponse>,
}

impl HistogramConfig {
    /// Creates a plain (non-private) configuration.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    #[must_use]
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 1, "need at least one bucket");
        Self {
            buckets,
            privacy: None,
        }
    }

    /// Enables randomized response.
    #[must_use]
    pub fn with_privacy(mut self, rr: RandomizedResponse) -> Self {
        self.privacy = Some(rr);
        self
    }
}

/// Estimated histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramOutcome {
    /// Estimated probability mass per bucket (may stray slightly outside
    /// `[0, 1]` under DP noise; see [`Self::frequencies_clamped`]).
    pub frequencies: Vec<f64>,
    /// Reports received per bucket.
    pub reports_per_bucket: Vec<u64>,
}

impl HistogramOutcome {
    /// Frequencies clamped to `[0, 1]` and renormalized to sum to 1.
    #[must_use]
    pub fn frequencies_clamped(&self) -> Vec<f64> {
        let clamped: Vec<f64> = self.frequencies.iter().map(|f| f.max(0.0)).collect();
        let total: f64 = clamped.iter().sum();
        if total <= 0.0 {
            vec![1.0 / clamped.len() as f64; clamped.len()]
        } else {
            clamped.iter().map(|f| f / total).collect()
        }
    }

    /// Estimated count for a bucket given the population size.
    #[must_use]
    pub fn estimated_count(&self, bucket: usize, population: usize) -> f64 {
        self.frequencies[bucket] * population as f64
    }
}

/// One-bit federated histogram estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FederatedHistogram {
    config: HistogramConfig,
}

impl FederatedHistogram {
    /// Creates the estimator.
    #[must_use]
    pub fn new(config: HistogramConfig) -> Self {
        Self { config }
    }

    /// Runs the protocol over per-client bucket indices.
    ///
    /// # Panics
    /// Panics if `bucket_ids` is empty or contains an out-of-range bucket.
    pub fn run(&self, bucket_ids: &[usize], rng: &mut dyn Rng) -> HistogramOutcome {
        assert!(!bucket_ids.is_empty(), "need at least one client");
        let d = self.config.buckets;
        assert!(
            bucket_ids.iter().all(|&b| b < d),
            "bucket id out of range (d = {d})"
        );
        let n = bucket_ids.len();

        // Even QMC apportionment of clients to probe buckets.
        let mut probes: Vec<usize> = (0..n).map(|i| i % d).collect();
        probes.shuffle(rng);

        let mut sums = vec![0.0f64; d];
        let mut counts = vec![0u64; d];
        for (i, &probe) in probes.iter().enumerate() {
            let member = bucket_ids[i] == probe;
            let contribution = match &self.config.privacy {
                Some(rr) => rr.debias(rr.flip(member, rng)),
                None => f64::from(u8::from(member)),
            };
            sums[probe] += contribution;
            counts[probe] += 1;
        }
        let frequencies = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect();
        HistogramOutcome {
            frequencies,
            reports_per_bucket: counts,
        }
    }
}

/// Buckets continuous values into `d` equal-width bins over `[lo, hi)`,
/// clamping out-of-range values into the end bins.
///
/// # Panics
/// Panics unless `lo < hi` and `d >= 1`.
#[must_use]
pub fn bucketize(values: &[f64], lo: f64, hi: f64, d: usize) -> Vec<usize> {
    assert!(lo < hi && d >= 1, "need lo < hi and d >= 1");
    let width = (hi - lo) / d as f64;
    values
        .iter()
        .map(|&v| (((v - lo) / width).floor() as isize).clamp(0, d as isize - 1) as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact_frequencies(bucket_ids: &[usize], d: usize) -> Vec<f64> {
        let mut f = vec![0.0; d];
        for &b in bucket_ids {
            f[b] += 1.0;
        }
        for x in &mut f {
            *x /= bucket_ids.len() as f64;
        }
        f
    }

    fn skewed_population(n: usize) -> Vec<usize> {
        // Bucket k with probability ∝ 1/(k+1).
        (0..n)
            .map(|i| match i % 25 {
                0..=11 => 0,
                12..=17 => 1,
                18..=21 => 2,
                22..=23 => 3,
                _ => 4,
            })
            .collect()
    }

    #[test]
    fn plain_histogram_recovers_frequencies() {
        let ids = skewed_population(100_000);
        let truth = exact_frequencies(&ids, 5);
        let h = FederatedHistogram::new(HistogramConfig::new(5));
        let mut rng = StdRng::seed_from_u64(1);
        let out = h.run(&ids, &mut rng);
        for (est, t) in out.frequencies.iter().zip(&truth) {
            assert!((est - t).abs() < 0.02, "est {est} truth {t}");
        }
        // Even probe apportionment.
        assert!(out.reports_per_bucket.iter().all(|&c| c == 20_000));
    }

    #[test]
    fn private_histogram_is_unbiased() {
        let ids = skewed_population(200_000);
        let truth = exact_frequencies(&ids, 5);
        let h = FederatedHistogram::new(
            HistogramConfig::new(5).with_privacy(RandomizedResponse::from_epsilon(1.0)),
        );
        let mut rng = StdRng::seed_from_u64(2);
        let out = h.run(&ids, &mut rng);
        for (est, t) in out.frequencies.iter().zip(&truth) {
            assert!((est - t).abs() < 0.05, "est {est} truth {t}");
        }
    }

    #[test]
    fn clamped_frequencies_form_distribution() {
        let out = HistogramOutcome {
            frequencies: vec![0.5, -0.05, 0.6],
            reports_per_bucket: vec![10, 10, 10],
        };
        let f = out.frequencies_clamped();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f[1], 0.0);
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn estimated_counts_scale_with_population() {
        let out = HistogramOutcome {
            frequencies: vec![0.25, 0.75],
            reports_per_bucket: vec![1, 1],
        };
        assert!((out.estimated_count(0, 1000) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn bucketize_edges_and_clamping() {
        let ids = bucketize(&[-5.0, 0.0, 4.9, 5.0, 9.9, 100.0], 0.0, 10.0, 2);
        assert_eq!(ids, vec![0, 0, 0, 1, 1, 1]);
        let fine = bucketize(&[0.0, 2.5, 5.0, 7.5], 0.0, 10.0, 4);
        assert_eq!(fine, vec![0, 1, 2, 3]);
    }

    #[test]
    fn one_bit_per_client_total() {
        let ids = skewed_population(10_000);
        let h = FederatedHistogram::new(HistogramConfig::new(5));
        let mut rng = StdRng::seed_from_u64(3);
        let out = h.run(&ids, &mut rng);
        assert_eq!(out.reports_per_bucket.iter().sum::<u64>(), 10_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_bucket_id() {
        let h = FederatedHistogram::new(HistogramConfig::new(3));
        let mut rng = StdRng::seed_from_u64(0);
        let _ = h.run(&[0, 1, 5], &mut rng);
    }
}
