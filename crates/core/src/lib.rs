//! # fednum-core — bit-pushing
//!
//! The paper's primary contribution (Section 3): federated estimation of
//! means, variances and related aggregates where each client discloses **at
//! most one bit** of each private value.
//!
//! A value is clipped and encoded as a `b`-bit unsigned fixed-point integer
//! ([`encoding`]); its binary digits form a linear decomposition
//! `x = Σ_j 2^j x^(j)` ([`bits`]). The server samples bit indices with a
//! probability vector `p` ([`sampling`]) — uniformly, geometrically
//! (`p_j ∝ 2^{γj}`), or optimally (`p_j ∝ √β_j`, Lemma 3.3) — assigns
//! clients to bits either centrally (quasi-Monte-Carlo apportionment, the
//! default, robust to poisoning) or locally, collects the sampled bits
//! ([`accumulator`]), and reconstructs an unbiased mean estimate whose
//! variance is `(1/n) Σ_j 4^j x̄^(j)(1 - x̄^(j)) / p_j` (Lemma 3.1).
//!
//! Two protocols are provided: single-round [`protocol::basic`]
//! (Algorithm 1) and two-round [`protocol::adaptive`] (Algorithm 2), which
//! spends a `δ` fraction of clients learning the bit means and re-optimizes
//! the sampling weights for the remainder, optionally pooling both rounds
//! ("caching").
//!
//! Privacy layers ([`privacy`]): per-bit ε-LDP randomized response with
//! server-side debiasing, bit squashing for noisy means, distributed DP via
//! sample-and-threshold or Bernoulli noise on the bit histograms, and a
//! per-client privacy-metering ledger.
//!
//! Beyond the mean: [`variance`] implements both reductions of Lemma 3.5,
//! [`moments`] extends to higher moments and geometric means, and [`bounds`]
//! tracks upper bounds to flag heavy-tailed / non-stationary metrics
//! (Sections 1.1 and 4.3).

pub mod accumulator;
pub mod bits;
pub mod bounds;
pub mod encoding;
pub mod histogram;
pub mod moments;
pub mod multifeature;
pub mod normalize;
pub mod privacy;
pub mod protocol;
pub mod quantile;
pub mod sampling;
pub mod variance;
pub mod wire;

pub use accumulator::BitAccumulator;
pub use encoding::FixedPointCodec;
pub use histogram::{FederatedHistogram, HistogramConfig, HistogramOutcome};
pub use multifeature::MultiFeatureBitPushing;
pub use normalize::FeatureNormalizer;
pub use protocol::adaptive::{AdaptiveBitPushing, AdaptiveConfig, AdaptiveOutcome};
pub use protocol::basic::{BasicBitPushing, BasicConfig, Outcome};
pub use quantile::{QuantileConfig, QuantileEstimator, QuantileOutcome};
pub use sampling::{AssignmentMode, BitSampling};
