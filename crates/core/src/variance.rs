//! Variance estimation via bit-pushing (Section 3.4, Lemma 3.5).
//!
//! The empirical variance reduces to mean estimations of derived values:
//! `V[X] = E[(X - E[X])²] = E[X²] - (E[X])²`. The two algebraically equal
//! forms behave differently as *estimators*:
//!
//! * [`VarianceViaSquares`] — estimate `E[X²]` (on squared values, needing
//!   `2b` bits) and `E[X]` on disjoint client cohorts, return the
//!   difference. Estimator variance ∝ `(σ² + x̄²)²/n` (the worse form).
//! * [`VarianceViaCentered`] — a first phase estimates `μ̂`, a second phase
//!   has the remaining clients report bits of `(x - μ̂)²`. Estimator
//!   variance ∝ `(σ² + x̄²/n)²/n` (the better form).
//!
//! Both are generic over any [`MeanMechanism`], so the Figure 1b/2b sweeps
//! can run them on bit-pushing *and* on the dithering baseline.

use fednum_ldp::MeanMechanism;
use rand::seq::SliceRandom;
use rand::Rng;

/// `V̂ = Ê[X²] - (Ê[X])²` on disjoint cohorts.
#[derive(Debug, Clone)]
pub struct VarianceViaSquares<M, S> {
    /// Estimates `E[X]` on the raw values.
    pub mean_est: M,
    /// Estimates `E[X²]` on the squared values (needs a `2b`-bit domain).
    pub square_est: S,
    /// Fraction of clients assigned to the mean estimate (default 0.5).
    pub split: f64,
}

impl<M: MeanMechanism, S: MeanMechanism> VarianceViaSquares<M, S> {
    /// Creates the estimator with an even split.
    #[must_use]
    pub fn new(mean_est: M, square_est: S) -> Self {
        Self {
            mean_est,
            square_est,
            split: 0.5,
        }
    }

    /// Sets the cohort split.
    ///
    /// # Panics
    /// Panics unless `0 < split < 1`.
    #[must_use]
    pub fn with_split(mut self, split: f64) -> Self {
        assert!(split > 0.0 && split < 1.0, "split must be in (0, 1)");
        self.split = split;
        self
    }

    /// Estimates the population variance. Clamped at 0 (the difference form
    /// can go negative under sampling noise).
    ///
    /// # Panics
    /// Panics unless there are at least two clients.
    pub fn estimate_variance(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        assert!(values.len() >= 2, "need at least two clients");
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.shuffle(rng);
        let n1 = ((self.split * values.len() as f64).round() as usize).clamp(1, values.len() - 1);
        let cohort_mean: Vec<f64> = order[..n1].iter().map(|&i| values[i]).collect();
        let cohort_sq: Vec<f64> = order[n1..].iter().map(|&i| values[i] * values[i]).collect();
        let m1 = self.mean_est.estimate_mean(&cohort_mean, rng);
        let m2 = self.square_est.estimate_mean(&cohort_sq, rng);
        (m2 - m1 * m1).max(0.0)
    }
}

/// `V̂ = Ê[(X - μ̂)²]` with a pilot phase for `μ̂`.
#[derive(Debug, Clone)]
pub struct VarianceViaCentered<M, D> {
    /// Estimates `μ̂` in the pilot phase.
    pub mean_est: M,
    /// Estimates `E[(X - μ̂)²]` on the squared deviations.
    pub dev_est: D,
    /// Fraction of clients spent on the pilot phase (default 1/3).
    pub delta: f64,
}

impl<M: MeanMechanism, D: MeanMechanism> VarianceViaCentered<M, D> {
    /// Creates the estimator with the paper's default pilot fraction 1/3.
    #[must_use]
    pub fn new(mean_est: M, dev_est: D) -> Self {
        Self {
            mean_est,
            dev_est,
            delta: 1.0 / 3.0,
        }
    }

    /// Sets the pilot fraction.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        self.delta = delta;
        self
    }

    /// Estimates the population variance (never negative: squared
    /// deviations are nonnegative by construction).
    ///
    /// # Panics
    /// Panics unless there are at least two clients.
    pub fn estimate_variance(&self, values: &[f64], rng: &mut dyn Rng) -> f64 {
        assert!(values.len() >= 2, "need at least two clients");
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.shuffle(rng);
        let n1 = ((self.delta * values.len() as f64).round() as usize).clamp(1, values.len() - 1);
        let pilot: Vec<f64> = order[..n1].iter().map(|&i| values[i]).collect();
        let mu = self.mean_est.estimate_mean(&pilot, rng);
        let devs: Vec<f64> = order[n1..]
            .iter()
            .map(|&i| (values[i] - mu) * (values[i] - mu))
            .collect();
        self.dev_est.estimate_mean(&devs, rng).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::FixedPointCodec;
    use crate::protocol::basic::{BasicBitPushing, BasicConfig};
    use crate::sampling::BitSampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bitpush(bits: u32) -> BasicBitPushing {
        BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, 1.0),
        ))
    }

    /// Exact mean mechanism, to test the reduction logic in isolation.
    #[derive(Debug, Clone)]
    struct Exact;

    impl MeanMechanism for Exact {
        fn name(&self) -> String {
            "exact".into()
        }

        fn estimate_mean(&self, values: &[f64], _rng: &mut dyn Rng) -> f64 {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    fn population(n: usize) -> (Vec<f64>, f64) {
        // Values in [50, 150): mean 99.5, known variance.
        let values: Vec<f64> = (0..n).map(|i| 50.0 + (i % 100) as f64).collect();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        (values, var)
    }

    #[test]
    fn squares_reduction_is_consistent_with_exact_means() {
        let (values, var) = population(10_000);
        let est = VarianceViaSquares::new(Exact, Exact);
        let mut rng = StdRng::seed_from_u64(1);
        let v = est.estimate_variance(&values, &mut rng);
        // Exact means on disjoint halves: only the cohort split adds noise.
        assert!((v / var - 1.0).abs() < 0.1, "v {v} var {var}");
    }

    #[test]
    fn centered_reduction_is_consistent_with_exact_means() {
        let (values, var) = population(10_000);
        let est = VarianceViaCentered::new(Exact, Exact);
        let mut rng = StdRng::seed_from_u64(2);
        let v = est.estimate_variance(&values, &mut rng);
        assert!((v / var - 1.0).abs() < 0.1, "v {v} var {var}");
    }

    #[test]
    fn bitpushing_variance_via_squares() {
        let (values, var) = population(100_000);
        // Values < 256 → 8 bits; squares < 65536 → 16 bits.
        let est = VarianceViaSquares::new(bitpush(8), bitpush(16));
        let mut rng = StdRng::seed_from_u64(3);
        let v = est.estimate_variance(&values, &mut rng);
        assert!((v / var - 1.0).abs() < 0.3, "v {v} var {var}");
    }

    #[test]
    fn bitpushing_variance_via_centered() {
        let (values, var) = population(100_000);
        // Deviations² ≤ ~100² → 14 bits is ample.
        let est = VarianceViaCentered::new(bitpush(8), bitpush(14));
        let mut rng = StdRng::seed_from_u64(4);
        let v = est.estimate_variance(&values, &mut rng);
        assert!((v / var - 1.0).abs() < 0.3, "v {v} var {var}");
    }

    #[test]
    fn centered_form_beats_squares_form() {
        // Lemma 3.5: the squares form's estimator variance carries an x̄²
        // term; inflate the mean so the difference is stark.
        let n = 40_000;
        let values: Vec<f64> = (0..n).map(|i| 3000.0 + (i % 40) as f64).collect();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let rmse = |f: &dyn Fn(u64) -> f64| {
            let trials = 30;
            let mut sq = 0.0;
            for s in 0..trials {
                let e = f(s);
                sq += (e - var) * (e - var);
            }
            (sq / trials as f64).sqrt()
        };
        // 12 bits for values (<4096); squares need 24 bits; deviations² need
        // only ~11 bits.
        let squares = VarianceViaSquares::new(bitpush(12), bitpush(24));
        let centered = VarianceViaCentered::new(bitpush(12), bitpush(11));
        let r_squares =
            rmse(&|s| squares.estimate_variance(&values, &mut StdRng::seed_from_u64(s)));
        let r_centered =
            rmse(&|s| centered.estimate_variance(&values, &mut StdRng::seed_from_u64(s)));
        assert!(
            r_centered < r_squares,
            "centered {r_centered} should beat squares {r_squares}"
        );
    }

    #[test]
    fn variance_estimate_never_negative() {
        // Tiny population, noisy estimates: the clamp must hold.
        let values = vec![5.0, 5.0, 5.0, 6.0];
        let est = VarianceViaSquares::new(bitpush(4), bitpush(8));
        for s in 0..20 {
            let mut rng = StdRng::seed_from_u64(s);
            assert!(est.estimate_variance(&values, &mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "split must be in")]
    fn rejects_bad_split() {
        let _ = VarianceViaSquares::new(Exact, Exact).with_split(0.0);
    }
}
