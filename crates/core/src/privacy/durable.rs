//! Durable cross-round privacy state: the crash-safe campaign ledger.
//!
//! A longitudinal deployment surveys the same population across many
//! rounds, so the coordinator — not the driver — must own the per-client
//! budgets that deplete over the campaign. Losing that state on a restart
//! would silently *re-grant* every client's ε budget: a privacy bug, not
//! just an availability one. This module makes the state survive `kill -9`
//! at any instruction boundary.
//!
//! Three layers:
//!
//! * [`CampaignState`] — the pure in-memory state machine: campaign config
//!   ([`CampaignMessage`]), the [`PrivacyLedger`] of committed balances,
//!   the round counter, and the two-phase admit → commit protocol. Charges
//!   staged by an admission are folded into the ledger only at commit, so
//!   discarding an uncommitted round is simply dropping the stage.
//! * The **record codec** — length-delimited `core::wire` records, each
//!   `varint(len) · payload · fnv64(payload)`. The trailing checksum makes
//!   a torn tail (partial `write(2)` at the kill point) detectable: replay
//!   stops at the first record that fails to frame or checksum.
//! * [`DurableLedger`] — [`CampaignState`] plus a write-ahead log and a
//!   periodic snapshot on disk. Every admission appends `BeginRound` + one
//!   `Charge` per admitted client and fsyncs *before* the admission is
//!   released to the round; every commit appends `CommitRound` and fsyncs
//!   before the round result is acknowledged. Recovery therefore replays
//!   to exactly the last committed round and cleanly discards a staged
//!   round the crash interrupted — never double-charging (commits fold a
//!   round exactly once, and snapshots record the round index so a WAL
//!   replayed over a newer snapshot skips already-folded rounds) and never
//!   re-granting (committed charges are always on disk before the round
//!   that spent them is visible to anyone).
//!
//! Snapshots are written atomically (`.tmp` + fsync + rename + directory
//! fsync) and the WAL is truncated only after the rename lands, so a crash
//! mid-snapshot leaves either the old snapshot + full WAL or the new
//! snapshot + (possibly) a stale WAL whose rounds the round-index guard
//! skips. The crash matrix is pinned by the `crash_recovery` suite, which
//! truncates the WAL at every record boundary and at torn mid-record
//! offsets, then asserts the recovered state is bit-identical to the
//! uninterrupted run.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::wire::{self, CampaignMessage, WireError};

use super::metering::{PrivacyBudget, PrivacyLedger};

/// Failure modes of the durable campaign ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableError {
    /// An I/O error from the state directory (the detail is the rendered
    /// `std::io::Error`).
    Io(String),
    /// State that cannot be trusted: a corrupt snapshot, a WAL record that
    /// decodes but violates the protocol, or replayed charges that exceed
    /// the budget they were admitted under.
    Corrupt(&'static str),
    /// A round was requested out of order.
    RoundOutOfOrder {
        /// The round the driver asked for.
        requested: u64,
        /// The round the campaign is actually at.
        expected: u64,
    },
    /// A commit arrived for a round that was never admitted.
    CommitWithoutAdmit {
        /// The offending round.
        round: u64,
    },
    /// A resume request's budget policy does not match the durable state.
    ConfigMismatch,
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(detail) => write!(f, "state dir I/O error: {detail}"),
            DurableError::Corrupt(what) => write!(f, "unrecoverable campaign state: {what}"),
            DurableError::RoundOutOfOrder {
                requested,
                expected,
            } => write!(f, "round {requested} out of order (campaign at {expected})"),
            DurableError::CommitWithoutAdmit { round } => {
                write!(f, "commit for round {round} without a matching admission")
            }
            DurableError::ConfigMismatch => {
                write!(f, "campaign policy does not match durable state")
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Checksummed record framing.
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit: a small, dependency-free checksum. It guards against
/// torn writes and bit rot, not adversaries — the state dir is trusted.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Appends one checksummed record: `varint(len) · payload · fnv64 (8B LE)`.
fn push_record(out: &mut Vec<u8>, payload: &[u8]) {
    wire::push_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
}

/// One step of record replay.
enum RecordRead<'a> {
    /// A complete, checksum-verified record payload.
    Ok(&'a [u8]),
    /// Clean end of the stream (no bytes past `pos`).
    End,
    /// The stream ends in a torn or corrupt record; replay must stop and
    /// discard everything from `pos` on.
    Torn,
}

/// Reads one checksummed record starting at `*pos`. `*pos` is advanced
/// only on a successful read, so a torn tail leaves it at the start of the
/// damage (for byte accounting).
fn read_record<'a>(buf: &'a [u8], pos: &mut usize) -> RecordRead<'a> {
    if *pos == buf.len() {
        return RecordRead::End;
    }
    let mut cursor = *pos;
    let len = match wire::read_varint(buf, &mut cursor) {
        Ok(len) => len,
        Err(_) => return RecordRead::Torn,
    };
    let Ok(len) = usize::try_from(len) else {
        return RecordRead::Torn;
    };
    if len > wire::MAX_FRAME_LEN || buf.len() - cursor < len + 8 {
        return RecordRead::Torn;
    }
    let payload = &buf[cursor..cursor + len];
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&buf[cursor + len..cursor + len + 8]);
    if u64::from_le_bytes(sum) != fnv64(payload) {
        return RecordRead::Torn;
    }
    *pos = cursor + len + 8;
    RecordRead::Ok(payload)
}

// ---------------------------------------------------------------------------
// WAL records.
// ---------------------------------------------------------------------------

const REC_BEGIN_ROUND: u8 = 0x01;
const REC_CHARGE: u8 = 0x02;
const REC_COMMIT_ROUND: u8 = 0x03;
const REC_SNAPSHOT: u8 = 0x10;

/// One write-ahead-log entry. The WAL is an ordered history of admissions
/// and commits since the last snapshot; see the module docs for replay
/// semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerRecord {
    /// A round was admitted; the following [`LedgerRecord::Charge`]
    /// records belong to it.
    BeginRound {
        /// The admitted round index.
        round: u64,
    },
    /// One admitted client's staged charge.
    Charge {
        /// The client charged.
        client: u64,
        /// Private bits this round discloses.
        bits: u64,
        /// ε this round spends.
        epsilon: f64,
    },
    /// The round's result was released: fold its staged charges.
    CommitRound {
        /// The committed round index.
        round: u64,
    },
}

impl LedgerRecord {
    /// Encodes to a fresh record payload (checksum framing is added by the
    /// WAL writer).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            LedgerRecord::BeginRound { round } => {
                out.push(REC_BEGIN_ROUND);
                wire::push_varint(&mut out, *round);
            }
            LedgerRecord::Charge {
                client,
                bits,
                epsilon,
            } => {
                out.push(REC_CHARGE);
                wire::push_varint(&mut out, *client);
                wire::push_varint(&mut out, *bits);
                wire::push_f64(&mut out, *epsilon);
            }
            LedgerRecord::CommitRound { round } => {
                out.push(REC_COMMIT_ROUND);
                wire::push_varint(&mut out, *round);
            }
        }
        out
    }

    /// Decodes one record payload.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0usize;
        let &tag = buf.first().ok_or(WireError::Truncated)?;
        pos += 1;
        let rec = match tag {
            REC_BEGIN_ROUND => LedgerRecord::BeginRound {
                round: wire::read_varint(buf, &mut pos)?,
            },
            REC_CHARGE => LedgerRecord::Charge {
                client: wire::read_varint(buf, &mut pos)?,
                bits: wire::read_varint(buf, &mut pos)?,
                epsilon: wire::read_f64(buf, &mut pos)?,
            },
            REC_COMMIT_ROUND => LedgerRecord::CommitRound {
                round: wire::read_varint(buf, &mut pos)?,
            },
            other => return Err(WireError::UnknownTag(other)),
        };
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(rec)
    }
}

// ---------------------------------------------------------------------------
// The in-memory campaign state machine.
// ---------------------------------------------------------------------------

/// Why each client of an admission request landed where it did, summarized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    /// The round this admission is for.
    pub round: u64,
    /// Clients admitted (budget and cooldown both clear), in request order.
    pub admitted: Vec<u64>,
    /// Clients denied because another round would exceed their budget.
    pub denied_budget: u64,
    /// Clients denied because their cooldown has not elapsed.
    pub denied_cooldown: u64,
    /// `true` when the round was already committed before this request —
    /// the recorded admission is returned and **nothing is re-charged**
    /// (the idempotency that makes a driver retry after a lost commit ack
    /// safe).
    pub already_committed: bool,
}

/// Receipt for a committed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitSummary {
    /// The committed round index.
    pub round: u64,
    /// Clients whose charges were folded into the ledger.
    pub clients_charged: u64,
    /// [`CampaignState::digest`] after the fold.
    pub digest: u64,
}

/// The cross-round campaign state: config, committed balances, round
/// counter, and the stage of the (at most one) admitted-but-uncommitted
/// round. Pure in-memory logic — [`DurableLedger`] adds persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignState {
    config: CampaignMessage,
    ledger: PrivacyLedger,
    /// Charges of the currently admitted round, folded only on commit.
    staged: Vec<(u64, u64, f64)>,
    staged_round: Option<u64>,
    /// The admitted set of the most recently *committed* round, kept so a
    /// re-request of that round can be answered without re-charging.
    last_admitted: Vec<u64>,
}

impl CampaignState {
    /// A fresh campaign at `config.round_index` with zero balances.
    #[must_use]
    pub fn new(config: CampaignMessage) -> Self {
        let ledger = if config.max_bits.is_some() || config.max_epsilon.is_some() {
            PrivacyLedger::with_budget(PrivacyBudget {
                max_bits: config.max_bits,
                max_epsilon: config.max_epsilon,
            })
        } else {
            PrivacyLedger::new()
        };
        Self {
            config,
            ledger,
            staged: Vec::new(),
            staged_round: None,
            last_admitted: Vec::new(),
        }
    }

    /// The campaign config, `round_index` kept current.
    #[must_use]
    pub fn config(&self) -> &CampaignMessage {
        &self.config
    }

    /// The next round to be admitted.
    #[must_use]
    pub fn round_index(&self) -> u64 {
        self.config.round_index
    }

    /// The committed balances.
    #[must_use]
    pub fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }

    /// The admitted set of the most recently committed round.
    #[must_use]
    pub fn last_admitted(&self) -> &[u64] {
        &self.last_admitted
    }

    /// Whether a round is admitted but not yet committed.
    #[must_use]
    pub fn has_staged_round(&self) -> bool {
        self.staged_round.is_some()
    }

    /// Canonical byte encoding of the *committed* state (config with the
    /// current round index, sorted ledger, last admitted set). Staged
    /// charges are deliberately excluded: an uncommitted round must not be
    /// observable in the digest, or a discarded round would not compare
    /// bit-identical to a run that never admitted it.
    #[must_use]
    pub fn encode_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(REC_SNAPSHOT);
        self.config.encode_into(&mut out);
        self.ledger.encode_into(&mut out);
        wire::push_varint(&mut out, self.last_admitted.len() as u64);
        for &client in &self.last_admitted {
            wire::push_varint(&mut out, client);
        }
        out
    }

    /// Decodes an [`CampaignState::encode_snapshot`] payload.
    ///
    /// # Errors
    /// [`DurableError::Corrupt`] on any malformed byte — a snapshot that
    /// does not decode cleanly cannot be trusted at all.
    pub fn decode_snapshot(buf: &[u8]) -> Result<Self, DurableError> {
        let corrupt = |_| DurableError::Corrupt("snapshot does not decode");
        let mut pos = 0usize;
        let &tag = buf.first().ok_or(DurableError::Corrupt("empty snapshot"))?;
        if tag != REC_SNAPSHOT {
            return Err(DurableError::Corrupt("snapshot tag mismatch"));
        }
        pos += 1;
        let config = CampaignMessage::decode_from(buf, &mut pos).map_err(corrupt)?;
        let ledger = PrivacyLedger::decode_from(buf, &mut pos).map_err(corrupt)?;
        let count = usize::try_from(wire::read_varint(buf, &mut pos).map_err(corrupt)?)
            .map_err(|_| DurableError::Corrupt("snapshot does not decode"))?;
        if count > buf.len().saturating_sub(pos) {
            return Err(DurableError::Corrupt("snapshot does not decode"));
        }
        let mut last_admitted = Vec::with_capacity(count);
        for _ in 0..count {
            last_admitted.push(wire::read_varint(buf, &mut pos).map_err(corrupt)?);
        }
        if pos != buf.len() {
            return Err(DurableError::Corrupt("snapshot has trailing bytes"));
        }
        Ok(Self {
            config,
            ledger,
            staged: Vec::new(),
            staged_round: None,
            last_admitted,
        })
    }

    /// FNV-1a digest of the canonical committed-state encoding. Two
    /// campaigns with equal digests hold bit-identical config, balances,
    /// and round counters — the equality the crash suite asserts between a
    /// recovered run and an uninterrupted one.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv64(&self.encode_snapshot())
    }

    /// Whether `client` clears the cooldown gate for `round`.
    fn cooldown_clear(&self, round: u64, client: u64) -> bool {
        let cooldown = self.config.cooldown_rounds.max(1);
        match self.ledger.account(client).last_round {
            None => true,
            Some(last) => round >= last.saturating_add(cooldown),
        }
    }

    /// Admits `round` for the eligible subset of `clients`, staging one
    /// charge of the per-round cost for each admitted client. Re-admitting
    /// the currently staged round discards the old stage and recomputes —
    /// identical inputs produce an identical admission, which makes driver
    /// retries (and WAL replays of a re-sent admission) idempotent.
    /// Requesting the round *before* the current one returns the recorded
    /// admission with `already_committed` set and charges nothing.
    ///
    /// # Errors
    /// [`DurableError::RoundOutOfOrder`] for any other round index.
    pub fn admit(&mut self, round: u64, clients: &[u64]) -> Result<Admission, DurableError> {
        let expected = self.config.round_index;
        if round != expected {
            if round.checked_add(1) == Some(expected) {
                return Ok(Admission {
                    round,
                    admitted: self.last_admitted.clone(),
                    denied_budget: 0,
                    denied_cooldown: 0,
                    already_committed: true,
                });
            }
            return Err(DurableError::RoundOutOfOrder {
                requested: round,
                expected,
            });
        }
        self.staged.clear();
        self.staged_round = Some(round);
        let (bits, epsilon) = (self.config.bits_per_round, self.config.epsilon_per_round);
        let mut admitted = Vec::with_capacity(clients.len());
        let mut seen = HashSet::with_capacity(clients.len());
        let (mut denied_budget, mut denied_cooldown) = (0u64, 0u64);
        for &client in clients {
            if !seen.insert(client) {
                continue;
            }
            if !self.cooldown_clear(round, client) {
                denied_cooldown += 1;
            } else if !self.ledger.can_charge(client, bits, epsilon) {
                denied_budget += 1;
            } else {
                self.staged.push((client, bits, epsilon));
                admitted.push(client);
            }
        }
        Ok(Admission {
            round,
            admitted,
            denied_budget,
            denied_cooldown,
            already_committed: false,
        })
    }

    /// Folds the staged charges of `round` into the committed ledger and
    /// advances the round counter. Committing the round *before* the
    /// current one is an idempotent no-op (the receipt of the recorded
    /// commit is returned), so a driver that lost the commit ack can
    /// safely re-send.
    ///
    /// # Errors
    /// [`DurableError::CommitWithoutAdmit`] when the round was never
    /// admitted; [`DurableError::RoundOutOfOrder`] for a future round;
    /// [`DurableError::Corrupt`] if a staged charge no longer fits its
    /// budget (impossible through [`CampaignState::admit`]; reachable only
    /// by a corrupt WAL).
    pub fn commit(&mut self, round: u64) -> Result<CommitSummary, DurableError> {
        let expected = self.config.round_index;
        if round.checked_add(1) == Some(expected) {
            return Ok(CommitSummary {
                round,
                clients_charged: self.last_admitted.len() as u64,
                digest: self.digest(),
            });
        }
        if round != expected {
            return Err(DurableError::RoundOutOfOrder {
                requested: round,
                expected,
            });
        }
        if self.staged_round != Some(round) {
            return Err(DurableError::CommitWithoutAdmit { round });
        }
        for &(client, bits, epsilon) in &self.staged {
            self.ledger
                .charge_round(client, round, bits, epsilon)
                .map_err(|_| DurableError::Corrupt("staged charge exceeds budget"))?;
        }
        self.last_admitted = self.staged.iter().map(|&(c, _, _)| c).collect();
        let clients_charged = self.staged.len() as u64;
        self.staged.clear();
        self.staged_round = None;
        self.config.round_index = round + 1;
        Ok(CommitSummary {
            round,
            clients_charged,
            digest: self.digest(),
        })
    }

    /// Drops a staged, uncommitted round (recovery's "cleanly discard").
    /// Returns the number of staged charges discarded.
    pub fn discard_staged(&mut self) -> u64 {
        let n = self.staged.len() as u64;
        self.staged.clear();
        self.staged_round = None;
        n
    }
}

// ---------------------------------------------------------------------------
// The durable layer: WAL + snapshot.
// ---------------------------------------------------------------------------

/// What startup recovery found and did, aggregated across campaigns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Campaigns recovered from the state directory.
    pub campaigns: u64,
    /// WAL records replayed (all kinds, across campaigns).
    pub wal_records: u64,
    /// Committed rounds replayed from WALs.
    pub commits_replayed: u64,
    /// Staged charges of uncommitted trailing rounds, discarded.
    pub charges_discarded: u64,
    /// Bytes of torn or corrupt WAL tail, discarded.
    pub torn_bytes: u64,
}

impl RecoveryStats {
    /// Folds another campaign's recovery into this aggregate.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.campaigns += other.campaigns;
        self.wal_records += other.wal_records;
        self.commits_replayed += other.commits_replayed;
        self.charges_discarded += other.charges_discarded;
        self.torn_bytes += other.torn_bytes;
    }
}

/// Snapshot every this many commits unless configured otherwise.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 8;

/// A campaign ledger with optional durability. In-memory mode (no state
/// dir) runs the same admit/commit state machine without touching disk —
/// one code path for the daemon whether or not `--state-dir` is set.
#[derive(Debug)]
pub struct DurableLedger {
    state: CampaignState,
    wal: Option<File>,
    snap_path: Option<PathBuf>,
    wal_path: Option<PathBuf>,
    snapshot_every: u64,
    commits_since_snapshot: u64,
}

/// `campaign-<id>.snap` / `campaign-<id>.wal` inside the state dir.
fn snap_path(dir: &Path, campaign_id: u64) -> PathBuf {
    dir.join(format!("campaign-{campaign_id}.snap"))
}

fn wal_path(dir: &Path, campaign_id: u64) -> PathBuf {
    dir.join(format!("campaign-{campaign_id}.wal"))
}

/// Fsyncs a directory so a just-renamed file inside it survives power
/// loss. Best-effort on platforms where directories cannot be synced.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl DurableLedger {
    /// A purely in-memory campaign (no persistence).
    #[must_use]
    pub fn in_memory(config: CampaignMessage) -> Self {
        Self {
            state: CampaignState::new(config),
            wal: None,
            snap_path: None,
            wal_path: None,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            commits_since_snapshot: 0,
        }
    }

    /// Creates a fresh durable campaign in `dir`: writes the initial
    /// snapshot, then opens an empty WAL.
    ///
    /// # Errors
    /// [`DurableError::Io`] on any filesystem failure.
    pub fn create(
        dir: &Path,
        config: CampaignMessage,
        snapshot_every: u64,
    ) -> Result<Self, DurableError> {
        fs::create_dir_all(dir)?;
        let mut ledger = Self {
            state: CampaignState::new(config),
            wal: None,
            snap_path: Some(snap_path(dir, config.campaign_id)),
            wal_path: Some(wal_path(dir, config.campaign_id)),
            snapshot_every: snapshot_every.max(1),
            commits_since_snapshot: 0,
        };
        ledger.write_snapshot()?;
        ledger.reopen_wal(true)?;
        Ok(ledger)
    }

    /// Recovers a durable campaign from `dir`: loads the snapshot, replays
    /// the WAL to the last committed round, and discards the torn or
    /// uncommitted tail.
    ///
    /// # Errors
    /// [`DurableError::Corrupt`] when the snapshot itself cannot be
    /// trusted (the unrecoverable case — exit code 3 territory);
    /// [`DurableError::Io`] on filesystem failures.
    pub fn open(
        dir: &Path,
        campaign_id: u64,
        snapshot_every: u64,
    ) -> Result<(Self, RecoveryStats), DurableError> {
        let snap = snap_path(dir, campaign_id);
        let snap_bytes = fs::read(&snap)?;
        let mut pos = 0usize;
        let payload = match read_record(&snap_bytes, &mut pos) {
            RecordRead::Ok(payload) => payload,
            RecordRead::End => return Err(DurableError::Corrupt("empty snapshot file")),
            RecordRead::Torn => return Err(DurableError::Corrupt("snapshot checksum mismatch")),
        };
        if pos != snap_bytes.len() {
            return Err(DurableError::Corrupt("snapshot has trailing bytes"));
        }
        let mut state = CampaignState::decode_snapshot(payload)?;
        if state.config.campaign_id != campaign_id {
            return Err(DurableError::Corrupt("snapshot names another campaign"));
        }

        let mut stats = RecoveryStats {
            campaigns: 1,
            ..RecoveryStats::default()
        };
        let wal_file = wal_path(dir, campaign_id);
        let wal_bytes = fs::read(&wal_file).unwrap_or_default();
        let mut pos = 0usize;
        // `skipping` covers rounds the snapshot already folded: a crash
        // between snapshot rename and WAL truncation leaves their records
        // behind, and re-folding them would double-charge.
        let mut skipping = false;
        loop {
            let payload = match read_record(&wal_bytes, &mut pos) {
                RecordRead::Ok(payload) => payload,
                RecordRead::End => break,
                RecordRead::Torn => {
                    stats.torn_bytes += (wal_bytes.len() - pos) as u64;
                    break;
                }
            };
            let Ok(record) = LedgerRecord::decode(payload) else {
                // Checksummed but undecodable: treat like a torn tail —
                // nothing after a record we cannot interpret is safe.
                stats.torn_bytes += (wal_bytes.len() - pos) as u64;
                break;
            };
            stats.wal_records += 1;
            match record {
                LedgerRecord::BeginRound { round } => {
                    if round < state.config.round_index {
                        skipping = true;
                    } else if round == state.config.round_index {
                        skipping = false;
                        state.staged.clear();
                        state.staged_round = Some(round);
                    } else {
                        // A future round can only come from corruption the
                        // checksum missed; stop trusting the tail.
                        stats.torn_bytes += (wal_bytes.len() - pos) as u64;
                        break;
                    }
                }
                LedgerRecord::Charge {
                    client,
                    bits,
                    epsilon,
                } => {
                    if !skipping && state.staged_round.is_some() {
                        state.staged.push((client, bits, epsilon));
                    }
                }
                LedgerRecord::CommitRound { round } => {
                    if skipping || round < state.config.round_index {
                        continue;
                    }
                    if state.staged_round == Some(round) {
                        state
                            .commit(round)
                            .map_err(|_| DurableError::Corrupt("WAL replay exceeds budget"))?;
                        stats.commits_replayed += 1;
                    } else {
                        stats.torn_bytes += (wal_bytes.len() - pos) as u64;
                        break;
                    }
                }
            }
        }
        // The crash interrupted an admitted round: discard it cleanly. The
        // driver will re-request it and get a fresh (identical) admission.
        stats.charges_discarded += state.discard_staged();

        let mut ledger = Self {
            state,
            wal: None,
            snap_path: Some(snap),
            wal_path: Some(wal_file),
            snapshot_every: snapshot_every.max(1),
            commits_since_snapshot: 0,
        };
        // Fold the replayed commits into a fresh snapshot so the stale WAL
        // (with its discarded tail) never gets replayed twice.
        ledger.write_snapshot()?;
        ledger.reopen_wal(true)?;
        Ok((ledger, stats))
    }

    /// Opens the campaign if its snapshot exists (verifying the policy
    /// matches), creates it otherwise. `Some(stats)` means a recovery
    /// happened.
    ///
    /// # Errors
    /// [`DurableError::ConfigMismatch`] when resuming under a different
    /// policy; otherwise as [`DurableLedger::open`] /
    /// [`DurableLedger::create`].
    pub fn open_or_create(
        dir: &Path,
        config: CampaignMessage,
        snapshot_every: u64,
    ) -> Result<(Self, Option<RecoveryStats>), DurableError> {
        if snap_path(dir, config.campaign_id).exists() {
            let (ledger, stats) = Self::open(dir, config.campaign_id, snapshot_every)?;
            if !ledger.state.config.policy_matches(&config) {
                return Err(DurableError::ConfigMismatch);
            }
            Ok((ledger, Some(stats)))
        } else {
            Ok((Self::create(dir, config, snapshot_every)?, None))
        }
    }

    /// Every campaign id with a snapshot in `dir`, sorted.
    ///
    /// # Errors
    /// [`DurableError::Io`] if the directory cannot be read.
    pub fn scan(dir: &Path) -> Result<Vec<u64>, DurableError> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("campaign-")
                .and_then(|rest| rest.strip_suffix(".snap"))
            {
                if let Ok(id) = id.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// The in-memory state.
    #[must_use]
    pub fn state(&self) -> &CampaignState {
        &self.state
    }

    /// [`CampaignState::digest`] of the committed state.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.state.digest()
    }

    /// Admits a round (see [`CampaignState::admit`]), WAL-appending the
    /// `BeginRound` and one `Charge` per admitted client — fsynced —
    /// *before* the admission is returned. An `already_committed` replay
    /// writes nothing.
    ///
    /// # Errors
    /// As [`CampaignState::admit`], plus [`DurableError::Io`] if the WAL
    /// append fails (the stage is discarded so state and disk stay
    /// consistent).
    pub fn admit_round(&mut self, round: u64, clients: &[u64]) -> Result<Admission, DurableError> {
        let admission = self.state.admit(round, clients)?;
        if admission.already_committed {
            return Ok(admission);
        }
        let mut buf = Vec::with_capacity(16 + admission.admitted.len() * 24);
        push_record(&mut buf, &LedgerRecord::BeginRound { round }.encode());
        for &(client, bits, epsilon) in &self.state.staged {
            push_record(
                &mut buf,
                &LedgerRecord::Charge {
                    client,
                    bits,
                    epsilon,
                }
                .encode(),
            );
        }
        if let Err(e) = self.append(&buf) {
            self.state.discard_staged();
            return Err(e);
        }
        Ok(admission)
    }

    /// Commits a round (see [`CampaignState::commit`]), WAL-appending the
    /// `CommitRound` record — fsynced — *before* the receipt is returned,
    /// then snapshotting if the cadence is due. An idempotent re-commit
    /// writes nothing.
    ///
    /// # Errors
    /// As [`CampaignState::commit`], plus [`DurableError::Io`]. The WAL
    /// append happens before the in-memory fold: if the append fails the
    /// round stays staged and uncommitted on both sides.
    pub fn commit_round(&mut self, round: u64) -> Result<CommitSummary, DurableError> {
        let already = round.checked_add(1) == Some(self.state.config.round_index);
        if !already {
            // Validate without mutating so a doomed commit never reaches
            // the WAL.
            if round != self.state.config.round_index {
                return Err(DurableError::RoundOutOfOrder {
                    requested: round,
                    expected: self.state.config.round_index,
                });
            }
            if self.state.staged_round != Some(round) {
                return Err(DurableError::CommitWithoutAdmit { round });
            }
            let mut buf = Vec::with_capacity(16);
            push_record(&mut buf, &LedgerRecord::CommitRound { round }.encode());
            self.append(&buf)?;
        }
        let summary = self.state.commit(round)?;
        if !already {
            self.commits_since_snapshot += 1;
            if self.commits_since_snapshot >= self.snapshot_every {
                self.flush_snapshot()?;
            }
        }
        Ok(summary)
    }

    /// Writes a fresh snapshot of the committed state and truncates the
    /// WAL — the periodic compaction, also called on daemon shutdown so a
    /// restart recovers from the snapshot alone. A staged, uncommitted
    /// round is *not* snapshotted (it is discarded by design, exactly as a
    /// crash would).
    ///
    /// # Errors
    /// [`DurableError::Io`] on any filesystem failure. In-memory ledgers
    /// return `Ok` without touching disk.
    pub fn flush_snapshot(&mut self) -> Result<(), DurableError> {
        if self.snap_path.is_none() {
            return Ok(());
        }
        self.write_snapshot()?;
        self.reopen_wal(true)?;
        self.commits_since_snapshot = 0;
        Ok(())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(());
        };
        wal.write_all(bytes)?;
        wal.sync_data()?;
        Ok(())
    }

    /// Atomically replaces the snapshot: tmp + fsync + rename + dir fsync.
    fn write_snapshot(&mut self) -> Result<(), DurableError> {
        let Some(snap) = self.snap_path.clone() else {
            return Ok(());
        };
        let mut bytes = Vec::with_capacity(128);
        push_record(&mut bytes, &self.state.encode_snapshot());
        let tmp = snap.with_extension("snap.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &snap)?;
        if let Some(dir) = snap.parent() {
            sync_dir(dir);
        }
        Ok(())
    }

    fn reopen_wal(&mut self, truncate: bool) -> Result<(), DurableError> {
        let Some(path) = self.wal_path.clone() else {
            return Ok(());
        };
        let wal = OpenOptions::new()
            .create(true)
            .append(!truncate)
            .write(true)
            .truncate(truncate)
            .open(&path)?;
        wal.sync_all()?;
        self.wal = Some(wal);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CampaignMessage {
        CampaignMessage {
            campaign_id: 1,
            round_index: 0,
            max_bits: Some(3),
            max_epsilon: Some(1.5),
            cooldown_rounds: 1,
            bits_per_round: 1,
            epsilon_per_round: 0.5,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fednum-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn admit_commit_depletes_budget_and_respects_cooldown() {
        let mut state = CampaignState::new(CampaignMessage {
            cooldown_rounds: 2,
            ..config()
        });
        let clients = [1u64, 2, 3];
        let a0 = state.admit(0, &clients).unwrap();
        assert_eq!(a0.admitted, vec![1, 2, 3]);
        state.commit(0).unwrap();
        // Cooldown 2: nobody is eligible again in round 1.
        let a1 = state.admit(1, &clients).unwrap();
        assert!(a1.admitted.is_empty());
        assert_eq!(a1.denied_cooldown, 3);
        state.commit(1).unwrap();
        let a2 = state.admit(2, &clients).unwrap();
        assert_eq!(a2.admitted, vec![1, 2, 3]);
        state.commit(2).unwrap();
        assert_eq!(state.ledger().account(1).bits, 2);
        assert_eq!(state.round_index(), 3);
    }

    #[test]
    fn budget_exhaustion_denies_admission() {
        // ε budget of 1.5 at 0.5/round and cooldown 1 → 3 rounds then dry.
        let mut state = CampaignState::new(config());
        for round in 0..3 {
            let a = state.admit(round, &[9]).unwrap();
            assert_eq!(a.admitted, vec![9], "round {round}");
            state.commit(round).unwrap();
        }
        let a = state.admit(3, &[9]).unwrap();
        assert!(a.admitted.is_empty());
        assert_eq!(a.denied_budget, 1);
        state.commit(3).unwrap();
        assert_eq!(state.ledger().account(9).bits, 3);
    }

    #[test]
    fn admission_is_idempotent_and_commit_replays_are_noops() {
        let mut state = CampaignState::new(config());
        let a = state.admit(0, &[1, 2]).unwrap();
        let a_again = state.admit(0, &[1, 2]).unwrap();
        assert_eq!(a, a_again, "re-admission recomputes identically");
        let receipt = state.commit(0).unwrap();
        // Lost ack: the driver re-requests the committed round.
        let replay = state.admit(0, &[1, 2]).unwrap();
        assert!(replay.already_committed);
        assert_eq!(replay.admitted, vec![1, 2]);
        let receipt2 = state.commit(0).unwrap();
        assert_eq!(receipt.digest, receipt2.digest, "no double fold");
        assert_eq!(state.ledger().account(1).bits, 1);
    }

    #[test]
    fn out_of_order_rounds_are_rejected() {
        let mut state = CampaignState::new(config());
        assert!(matches!(
            state.admit(2, &[1]),
            Err(DurableError::RoundOutOfOrder {
                requested: 2,
                expected: 0
            })
        ));
        assert!(matches!(
            state.commit(0),
            Err(DurableError::CommitWithoutAdmit { round: 0 })
        ));
        state.admit(0, &[1]).unwrap();
        assert!(matches!(
            state.commit(5),
            Err(DurableError::RoundOutOfOrder { .. })
        ));
    }

    #[test]
    fn snapshot_encoding_round_trips_bit_identically() {
        let mut state = CampaignState::new(config());
        state.admit(0, &[1, 2, 3]).unwrap();
        state.commit(0).unwrap();
        let payload = state.encode_snapshot();
        let back = CampaignState::decode_snapshot(&payload).unwrap();
        assert_eq!(back, state);
        assert_eq!(back.encode_snapshot(), payload);
        assert_eq!(back.digest(), state.digest());
    }

    #[test]
    fn wal_records_round_trip() {
        let records = [
            LedgerRecord::BeginRound { round: 7 },
            LedgerRecord::Charge {
                client: u64::MAX,
                bits: 1,
                epsilon: 0.25,
            },
            LedgerRecord::CommitRound { round: 7 },
        ];
        for rec in records {
            assert_eq!(LedgerRecord::decode(&rec.encode()).unwrap(), rec);
        }
        assert!(LedgerRecord::decode(&[0x7F]).is_err());
        assert!(LedgerRecord::decode(&[]).is_err());
    }

    #[test]
    fn checksummed_records_detect_torn_and_flipped_bytes() {
        let mut buf = Vec::new();
        push_record(&mut buf, b"hello");
        push_record(&mut buf, b"world");
        let mut pos = 0;
        assert!(matches!(
            read_record(&buf, &mut pos),
            RecordRead::Ok(b"hello")
        ));
        assert!(matches!(
            read_record(&buf, &mut pos),
            RecordRead::Ok(b"world")
        ));
        assert!(matches!(read_record(&buf, &mut pos), RecordRead::End));
        // Truncation anywhere inside the second record is torn, and the
        // first record still reads.
        for cut in buf.len() - 13..buf.len() {
            let mut pos = 0;
            assert!(matches!(
                read_record(&buf[..cut], &mut pos),
                RecordRead::Ok(_)
            ));
            assert!(matches!(
                read_record(&buf[..cut], &mut pos),
                RecordRead::Torn
            ));
        }
        // A flipped payload byte fails the checksum.
        let mut flipped = buf.clone();
        flipped[1] ^= 0x40;
        let mut pos = 0;
        assert!(matches!(read_record(&flipped, &mut pos), RecordRead::Torn));
    }

    #[test]
    fn durable_campaign_survives_reopen() {
        let dir = tempdir("reopen");
        let mut ledger = DurableLedger::create(&dir, config(), u64::MAX).unwrap();
        for round in 0..2 {
            ledger.admit_round(round, &[1, 2]).unwrap();
            ledger.commit_round(round).unwrap();
        }
        let digest = ledger.digest();
        drop(ledger);
        let (reopened, stats) = DurableLedger::open(&dir, 1, u64::MAX).unwrap();
        assert_eq!(reopened.digest(), digest);
        assert_eq!(stats.commits_replayed, 2);
        assert_eq!(stats.charges_discarded, 0);
        assert_eq!(reopened.state().round_index(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_round_is_discarded_on_recovery() {
        let dir = tempdir("discard");
        let mut ledger = DurableLedger::create(&dir, config(), u64::MAX).unwrap();
        ledger.admit_round(0, &[1, 2]).unwrap();
        ledger.commit_round(0).unwrap();
        let committed = ledger.digest();
        // Round 1 admitted (charges on disk) but never committed.
        ledger.admit_round(1, &[1, 2]).unwrap();
        drop(ledger);
        let (reopened, stats) = DurableLedger::open(&dir, 1, u64::MAX).unwrap();
        assert_eq!(reopened.digest(), committed, "uncommitted round discarded");
        assert_eq!(stats.charges_discarded, 2);
        assert_eq!(reopened.state().round_index(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_stale_wal_never_double_folds() {
        let dir = tempdir("stale-wal");
        let mut ledger = DurableLedger::create(&dir, config(), u64::MAX).unwrap();
        ledger.admit_round(0, &[4]).unwrap();
        ledger.commit_round(0).unwrap();
        let wal = fs::read(wal_path(&dir, 1)).unwrap();
        // Simulate a crash between snapshot rename and WAL truncation: the
        // snapshot already contains round 0, and the WAL still lists it.
        ledger.flush_snapshot().unwrap();
        drop(ledger);
        fs::write(wal_path(&dir, 1), &wal).unwrap();
        let (reopened, stats) = DurableLedger::open(&dir, 1, u64::MAX).unwrap();
        assert_eq!(
            reopened.state().ledger().account(4).bits,
            1,
            "not re-folded"
        );
        assert_eq!(stats.commits_replayed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_or_create_enforces_policy_match() {
        let dir = tempdir("policy");
        let (ledger, recovered) = DurableLedger::open_or_create(&dir, config(), 4).unwrap();
        assert!(recovered.is_none());
        drop(ledger);
        let (_, recovered) = DurableLedger::open_or_create(&dir, config(), 4).unwrap();
        assert!(recovered.is_some());
        let other = CampaignMessage {
            epsilon_per_round: 0.75,
            ..config()
        };
        assert_eq!(
            DurableLedger::open_or_create(&dir, other, 4).map(|_| ()),
            Err(DurableError::ConfigMismatch)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_unrecoverable() {
        let dir = tempdir("corrupt-snap");
        drop(DurableLedger::create(&dir, config(), 4).unwrap());
        let path = snap_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            DurableLedger::open(&dir, 1, 4),
            Err(DurableError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_lists_campaigns() {
        let dir = tempdir("scan");
        drop(DurableLedger::create(&dir, config(), 4).unwrap());
        drop(
            DurableLedger::create(
                &dir,
                CampaignMessage {
                    campaign_id: 42,
                    ..config()
                },
                4,
            )
            .unwrap(),
        );
        fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        assert_eq!(DurableLedger::scan(&dir).unwrap(), vec![1, 42]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_cadence_truncates_the_wal() {
        let dir = tempdir("cadence");
        let mut ledger = DurableLedger::create(&dir, config(), 2).unwrap();
        ledger.admit_round(0, &[1]).unwrap();
        ledger.commit_round(0).unwrap();
        assert!(fs::metadata(wal_path(&dir, 1)).unwrap().len() > 0);
        ledger.admit_round(1, &[1]).unwrap();
        ledger.commit_round(1).unwrap();
        // Second commit hit the cadence: snapshot written, WAL truncated.
        assert_eq!(fs::metadata(wal_path(&dir, 1)).unwrap().len(), 0);
        let digest = ledger.digest();
        drop(ledger);
        let (reopened, stats) = DurableLedger::open(&dir, 1, 2).unwrap();
        assert_eq!(reopened.digest(), digest);
        assert_eq!(stats.wal_records, 0, "recovered from snapshot alone");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_mode_matches_durable_digests() {
        let dir = tempdir("parity");
        let mut mem = DurableLedger::in_memory(config());
        let mut disk = DurableLedger::create(&dir, config(), 3).unwrap();
        for round in 0..5 {
            let a = mem.admit_round(round, &[1, 2, 3]).unwrap();
            let b = disk.admit_round(round, &[1, 2, 3]).unwrap();
            assert_eq!(a, b);
            assert_eq!(
                mem.commit_round(round).unwrap(),
                disk.commit_round(round).unwrap()
            );
        }
        assert_eq!(mem.digest(), disk.digest());
        let _ = fs::remove_dir_all(&dir);
    }
}
