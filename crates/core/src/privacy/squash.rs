//! Bit squashing: thresholding noisy bit means (Section 3.3, Figure 4).
//!
//! Under DP noise "we cannot rely on the bit means of unused bits to be
//! zero. Instead, we apply filtering to determine which bits are mostly
//! noise and should have their weight reduced... if the value of a bit mean
//! is below an absolute threshold, we assume that this bit is capturing
//! noise and 'squash' it". Figure 4a sweeps the threshold as a multiple of
//! the expected DP noise standard deviation and finds 0.05–0.2 recovers
//! almost two orders of magnitude of accuracy.

use fednum_ldp::RandomizedResponse;
use serde::{Deserialize, Serialize};

/// A bit-squashing rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BitSquash {
    /// Zero any bit mean strictly below this absolute value.
    Absolute(f64),
    /// Zero any bit mean below `multiple ×` the expected DP-noise standard
    /// deviation of that bit's mean estimate (which depends on the per-bit
    /// report count) — the x-axis of Figure 4a.
    NoiseMultiple(f64),
}

impl BitSquash {
    /// Resolves the per-bit absolute thresholds given the randomizer and the
    /// per-bit report counts.
    ///
    /// For [`BitSquash::Absolute`], counts and randomizer are ignored.
    ///
    /// # Panics
    /// Panics if `NoiseMultiple` is used without a randomizer.
    #[must_use]
    pub fn thresholds(&self, rr: Option<&RandomizedResponse>, counts: &[u64]) -> Vec<f64> {
        match *self {
            BitSquash::Absolute(t) => vec![t; counts.len()],
            BitSquash::NoiseMultiple(mult) => {
                let rr = rr.expect("NoiseMultiple squashing requires a randomizer");
                counts
                    .iter()
                    .map(|&c| mult * rr.noise_std_for_mean(c as usize))
                    .collect()
            }
        }
    }

    /// Applies squashing: bit means below their threshold become 0; all
    /// means are clamped into `[0, 1]` (debiased estimates can stray
    /// outside, Figure 4b).
    ///
    /// # Panics
    /// Panics if lengths differ, or `NoiseMultiple` without randomizer.
    #[must_use]
    pub fn apply(
        &self,
        means: &[f64],
        counts: &[u64],
        rr: Option<&RandomizedResponse>,
    ) -> Vec<f64> {
        assert_eq!(means.len(), counts.len(), "length mismatch");
        let thresholds = self.thresholds(rr, counts);
        means
            .iter()
            .zip(&thresholds)
            .map(|(&m, &t)| if m < t { 0.0 } else { m.clamp(0.0, 1.0) })
            .collect()
    }

    /// The bit indices a squash pass would zero — round 2 of the adaptive
    /// protocol under DP stops sampling exactly these.
    #[must_use]
    pub fn squashed_bits(
        &self,
        means: &[f64],
        counts: &[u64],
        rr: Option<&RandomizedResponse>,
    ) -> Vec<u32> {
        let thresholds = self.thresholds(rr, counts);
        means
            .iter()
            .zip(&thresholds)
            .enumerate()
            .filter(|(_, (&m, &t))| m < t)
            .map(|(j, _)| j as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_squash_zeroes_small_means() {
        let s = BitSquash::Absolute(0.05);
        let means = vec![0.4, 0.04, -0.02, 0.051];
        let counts = vec![100; 4];
        let out = s.apply(&means, &counts, None);
        assert_eq!(out, vec![0.4, 0.0, 0.0, 0.051]);
    }

    #[test]
    fn squash_clamps_overshoot() {
        // Figure 4b: noisy estimates can exceed 1.0 or fall below 0.0.
        let s = BitSquash::Absolute(0.05);
        let out = s.apply(&[1.3, 0.9], &[10, 10], None);
        assert_eq!(out, vec![1.0, 0.9]);
    }

    #[test]
    fn noise_multiple_scales_with_count() {
        let rr = RandomizedResponse::from_epsilon(2.0);
        let s = BitSquash::NoiseMultiple(2.0);
        let t = s.thresholds(Some(&rr), &[100, 10_000]);
        // 100 reports → 10x the noise std of 10 000 reports.
        assert!((t[0] / t[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn noise_multiple_squashes_noise_keeps_signal() {
        let rr = RandomizedResponse::from_epsilon(2.0);
        // With 1000 reports per bit, noise std ≈ sqrt(e^2/(e^2-1)^2 / 1000).
        let noise_std = rr.noise_std_for_mean(1000);
        let s = BitSquash::NoiseMultiple(3.0);
        let means = vec![noise_std * 1.0, noise_std * 10.0, 0.5];
        let out = s.apply(&means, &[1000, 1000, 1000], Some(&rr));
        assert_eq!(out[0], 0.0, "1-sigma bump is squashed");
        assert!(out[1] > 0.0, "10-sigma signal survives");
        assert!((out[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn squashed_bits_reports_indices() {
        let s = BitSquash::Absolute(0.1);
        let bits = s.squashed_bits(&[0.5, 0.01, 0.02, 0.3], &[1; 4], None);
        assert_eq!(bits, vec![1, 2]);
    }

    #[test]
    fn zero_count_bits_get_infinite_threshold() {
        let rr = RandomizedResponse::from_epsilon(1.0);
        let s = BitSquash::NoiseMultiple(1.0);
        // A bit that received no reports can never clear the noise bar.
        let out = s.apply(&[0.9], &[0], Some(&rr));
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "requires a randomizer")]
    fn noise_multiple_requires_rr() {
        let _ = BitSquash::NoiseMultiple(1.0).apply(&[0.5], &[10], None);
    }
}
