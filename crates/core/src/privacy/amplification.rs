//! Amplification by shuffling: local ε, cohort size → central (ε, δ).
//!
//! The shuffle model sits between pure LDP and secure aggregation: each
//! client runs an ε₀-LDP randomizer (here, per-bit randomized response),
//! a shuffler strips identity and permutes the batch, and the analyst
//! only sees the anonymized multiset. Feldman, McMillan & Talwar
//! ("Hiding among the clones", FOCS 2021) give the closed-form bound
//! this module implements: shuffling `n` ε₀-LDP reports satisfies
//! central (ε, δ)-DP with
//!
//! ```text
//! ε ≤ ln(1 + (e^ε₀ − 1)/(e^ε₀ + 1) ·
//!          (8·√(e^ε₀·ln(4/δ))/√n + 8·e^ε₀/n))
//! ```
//!
//! valid when `n ≥ 16·e^ε₀·ln(2/δ)`. Everything here is deterministic
//! IEEE-754 arithmetic — the same `(ε₀, n, δ)` always produces the same
//! bit pattern, which is what lets the durable campaign ledger charge
//! amplified epsilons and still replay digests bit-identically, and
//! what the CI regression check pins to 1e-12.
//!
//! **Fail-closed fallback.** Below the validity threshold (or whenever
//! the formula fails to beat the local guarantee) [`Amplification::charge`]
//! returns the *local* ε₀ unchanged: the ledger never records a privacy
//! level the bound does not actually certify.

/// A rejected amplification parameter: the offending field and value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AmplificationError {
    /// The local ε₀ was non-finite or non-positive.
    InvalidEpsilon(f64),
    /// δ was outside the open interval (0, 1).
    InvalidDelta(f64),
}

impl std::fmt::Display for AmplificationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmplificationError::InvalidEpsilon(e) => {
                write!(f, "local epsilon must be finite and positive, got {e}")
            }
            AmplificationError::InvalidDelta(d) => {
                write!(f, "delta must lie in (0, 1), got {d}")
            }
        }
    }
}

impl std::error::Error for AmplificationError {}

/// What a shuffled round actually charges: the certified central ε at
/// the round's δ, and whether amplification applied or the conservative
/// local fallback was used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShuffleCharge {
    /// The ε to record in the privacy ledger.
    pub epsilon: f64,
    /// The δ the guarantee holds at (0 on the local fallback — the
    /// local randomizer is pure ε₀-DP).
    pub delta: f64,
    /// Whether the amplification bound applied (`false` = local ε₀
    /// fallback: `n` below the validity threshold, or the bound did not
    /// improve on ε₀).
    pub amplified: bool,
}

/// The amplification-by-shuffling accountant for one local randomizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Amplification {
    local_epsilon: f64,
    delta: f64,
}

impl Amplification {
    /// An accountant for an ε₀-LDP local randomizer at failure
    /// probability δ.
    ///
    /// # Errors
    /// [`AmplificationError`] when ε₀ is non-finite or non-positive, or
    /// δ is outside (0, 1) — fail-closed: no accountant, no charge.
    pub fn try_new(local_epsilon: f64, delta: f64) -> Result<Self, AmplificationError> {
        if !local_epsilon.is_finite() || local_epsilon <= 0.0 {
            return Err(AmplificationError::InvalidEpsilon(local_epsilon));
        }
        if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
            return Err(AmplificationError::InvalidDelta(delta));
        }
        Ok(Self {
            local_epsilon,
            delta,
        })
    }

    /// The local randomizer's ε₀.
    #[must_use]
    pub fn local_epsilon(&self) -> f64 {
        self.local_epsilon
    }

    /// The failure probability δ the central guarantee is stated at.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The smallest cohort size the bound is valid for:
    /// `⌈16·e^ε₀·ln(2/δ)⌉`.
    #[must_use]
    pub fn min_cohort(&self) -> u64 {
        let raw = 16.0 * self.local_epsilon.exp() * (2.0 / self.delta).ln();
        // Beyond u64 range the bound is unattainable by any real cohort.
        if raw >= u64::MAX as f64 {
            u64::MAX
        } else {
            raw.ceil() as u64
        }
    }

    /// The raw closed-form bound at cohort size `n`, with no validity or
    /// improvement check — [`Amplification::charge`] is the fail-closed
    /// entry point; this is exposed for analysis and the regression pin.
    #[must_use]
    pub fn amplified_epsilon(&self, n: u64) -> f64 {
        if n == 0 {
            return f64::INFINITY;
        }
        let e0 = self.local_epsilon.exp();
        let nf = n as f64;
        let tail = 8.0 * (e0 * (4.0 / self.delta).ln()).sqrt() / nf.sqrt() + 8.0 * e0 / nf;
        ((e0 - 1.0) / (e0 + 1.0) * tail).ln_1p()
    }

    /// The ε a shuffled round over `n` reports may charge: the amplified
    /// central ε when `n` meets the validity threshold *and* the bound
    /// beats ε₀, otherwise the conservative local ε₀ (with δ = 0, since
    /// the local guarantee is pure).
    #[must_use]
    pub fn charge(&self, n: u64) -> ShuffleCharge {
        if n >= self.min_cohort() {
            let amplified = self.amplified_epsilon(n);
            if amplified < self.local_epsilon {
                return ShuffleCharge {
                    epsilon: amplified,
                    delta: self.delta,
                    amplified: true,
                };
            }
        }
        ShuffleCharge {
            epsilon: self.local_epsilon,
            delta: 0.0,
            amplified: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters_fail_closed() {
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    Amplification::try_new(eps, 1e-6),
                    Err(AmplificationError::InvalidEpsilon(e)) if e.to_bits() == eps.to_bits()
                ),
                "eps {eps}"
            );
        }
        for delta in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
            assert!(
                matches!(
                    Amplification::try_new(1.0, delta),
                    Err(AmplificationError::InvalidDelta(d)) if d.to_bits() == delta.to_bits()
                ),
                "delta {delta}"
            );
        }
        assert!(Amplification::try_new(f64::NAN, f64::NAN).is_err());
        let e = Amplification::try_new(0.0, 1e-6).unwrap_err();
        assert!(e.to_string().contains("epsilon"));
        let e = Amplification::try_new(1.0, 0.0).unwrap_err();
        assert!(e.to_string().contains("delta"));
    }

    #[test]
    fn amplified_epsilon_shrinks_with_n() {
        let amp = Amplification::try_new(1.0, 1e-6).unwrap();
        let small = amp.amplified_epsilon(1_000);
        let medium = amp.amplified_epsilon(100_000);
        let large = amp.amplified_epsilon(10_000_000);
        assert!(small > medium && medium > large, "{small} {medium} {large}");
        // Asymptotically the bound behaves like O(1/sqrt(n)): a 100x
        // bigger cohort shrinks it by roughly 10x.
        assert!(medium / large > 8.0 && medium / large < 12.0);
    }

    #[test]
    fn charge_above_threshold_is_strictly_below_local() {
        let amp = Amplification::try_new(1.0, 1e-6).unwrap();
        let n = amp.min_cohort();
        let charge = amp.charge(n);
        assert!(charge.amplified);
        assert!(charge.epsilon < amp.local_epsilon());
        assert_eq!(charge.delta, 1e-6);
        // And it matches the raw bound exactly.
        assert_eq!(charge.epsilon.to_bits(), amp.amplified_epsilon(n).to_bits());
    }

    #[test]
    fn charge_below_threshold_falls_back_to_local() {
        let amp = Amplification::try_new(1.0, 1e-6).unwrap();
        let n = amp.min_cohort() - 1;
        let charge = amp.charge(n);
        assert!(!charge.amplified);
        assert_eq!(charge.epsilon.to_bits(), 1.0f64.to_bits());
        assert_eq!(charge.delta, 0.0);
        // Zero reports: same fallback, never a NaN or negative charge.
        let zero = amp.charge(0);
        assert!(!zero.amplified);
        assert_eq!(zero.epsilon.to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn high_local_epsilon_pushes_the_threshold_out() {
        // e^ε₀ grows the validity threshold; at ε₀ = 30 no u64 cohort
        // qualifies and the fallback must hold without overflow panics.
        let amp = Amplification::try_new(30.0, 1e-9).unwrap();
        assert!(amp.min_cohort() > 1 << 40);
        let charge = amp.charge(1_000_000);
        assert!(!charge.amplified);
        assert_eq!(charge.epsilon.to_bits(), 30.0f64.to_bits());
        // Extreme ε₀ saturates rather than wrapping.
        let extreme = Amplification::try_new(500.0, 1e-9).unwrap();
        assert_eq!(extreme.min_cohort(), u64::MAX);
    }

    #[test]
    fn determinism_same_inputs_same_bits() {
        let a = Amplification::try_new(1.25, 1e-8).unwrap();
        let b = Amplification::try_new(1.25, 1e-8).unwrap();
        for n in [1_000u64, 31_337, 1_000_000] {
            assert_eq!(
                a.amplified_epsilon(n).to_bits(),
                b.amplified_epsilon(n).to_bits()
            );
            assert_eq!(a.charge(n), b.charge(n));
        }
    }

    /// The CI anchor: known (ε₀, n, δ) triples pinned to 1e-12. The
    /// expected values are the formula evaluated once on this host and
    /// frozen — any change to the arithmetic (reordering, fusing,
    /// "simplifying") that drifts past 1e-12 fails the gate.
    #[test]
    fn regression_amplified_epsilon_pinned_to_1e12() {
        let cases: [(f64, u64, f64, f64); 3] = [
            (1.0, 100_000, 1e-6, 7.255_492_488_700_484e-2),
            (2.0, 1_000_000, 1e-8, 7.116_040_530_398_722e-2),
            (0.5, 10_000, 1e-6, 9.386_816_185_202_895e-2),
        ];
        for (eps0, n, delta, expected) in cases {
            let amp = Amplification::try_new(eps0, delta).unwrap();
            let got = amp.amplified_epsilon(n);
            assert!(
                (got - expected).abs() < 1e-12,
                "(ε₀={eps0}, n={n}, δ={delta}): got {got}, expected {expected}"
            );
            assert!(n >= amp.min_cohort(), "case must sit above the threshold");
            assert!(got < eps0, "amplification must beat the local guarantee");
        }
    }
}
