//! Differential-privacy composition accounting.
//!
//! The metering ledger (Section 1.1) tracks ε by *simple* composition
//! (ε's add). Over many rounds — a client answering daily telemetry
//! queries for months — the advanced composition theorem (Dwork & Roth,
//! Theorem 3.20) gives a much tighter bound at the cost of a δ:
//!
//! `ε_total = ε√(2k ln(1/δ')) + k·ε·(e^ε − 1)` for `k` ε-DP mechanisms.
//!
//! The accountant reports both bounds so a privacy dashboard can show the
//! honest number.

use serde::{Deserialize, Serialize};

/// A rejected ε: non-finite or non-positive. The release was *not*
/// recorded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidEpsilon {
    /// The offending value.
    pub epsilon: f64,
}

impl std::fmt::Display for InvalidEpsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epsilon must be positive and finite, got {}",
            self.epsilon
        )
    }
}

impl std::error::Error for InvalidEpsilon {}

/// Accumulates per-release ε values and reports composed guarantees.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompositionAccountant {
    epsilons: Vec<f64>,
}

impl CompositionAccountant {
    /// Creates an empty accountant.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one ε-DP release, rejecting non-finite or non-positive ε
    /// with a typed error — the orchestration-path entry point (the
    /// crate-wide convention: runtime conditions fail closed and typed,
    /// never by panicking).
    ///
    /// # Errors
    /// [`InvalidEpsilon`] unless `epsilon > 0` and finite; nothing is
    /// recorded on rejection.
    pub fn try_record(&mut self, epsilon: f64) -> Result<(), InvalidEpsilon> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(InvalidEpsilon { epsilon });
        }
        self.epsilons.push(epsilon);
        Ok(())
    }

    /// Records one ε-DP release. Thin panicking wrapper over
    /// [`CompositionAccountant::try_record`] for tests and interactive
    /// use.
    ///
    /// # Panics
    /// Panics unless `epsilon > 0` and finite.
    pub fn record(&mut self, epsilon: f64) {
        self.try_record(epsilon)
            .expect("epsilon must be positive and finite");
    }

    /// Number of recorded releases.
    #[must_use]
    pub fn releases(&self) -> usize {
        self.epsilons.len()
    }

    /// Simple (basic) composition: `Σ ε_i` — a pure ε-DP guarantee.
    #[must_use]
    pub fn simple_epsilon(&self) -> f64 {
        self.epsilons.iter().sum()
    }

    /// Advanced composition for homogeneous ε (uses the maximum recorded ε
    /// as the per-release level, which is sound): the composed mechanism is
    /// `(ε_total, δ)`-DP with
    /// `ε_total = ε√(2k ln(1/δ)) + k·ε·(e^ε − 1)`.
    ///
    /// Returns `0` when nothing was recorded.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    #[must_use]
    pub fn advanced_epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let k = self.epsilons.len();
        if k == 0 {
            return 0.0;
        }
        let eps = self.epsilons.iter().copied().fold(0.0, f64::max);
        let k_f = k as f64;
        eps * (2.0 * k_f * (1.0 / delta).ln()).sqrt() + k_f * eps * (eps.exp() - 1.0)
    }

    /// The tighter of the two bounds at the given δ — what a dashboard
    /// should display.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    #[must_use]
    pub fn best_epsilon(&self, delta: f64) -> f64 {
        self.simple_epsilon().min(self.advanced_epsilon(delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accountant_is_zero() {
        let a = CompositionAccountant::new();
        assert_eq!(a.simple_epsilon(), 0.0);
        assert_eq!(a.advanced_epsilon(1e-6), 0.0);
        assert_eq!(a.releases(), 0);
    }

    #[test]
    fn simple_composition_adds() {
        let mut a = CompositionAccountant::new();
        a.record(0.5);
        a.record(1.0);
        a.record(0.25);
        assert!((a.simple_epsilon() - 1.75).abs() < 1e-12);
        assert_eq!(a.releases(), 3);
    }

    #[test]
    fn advanced_beats_simple_for_many_small_releases() {
        // 200 releases at ε = 0.1: simple gives 20; advanced with δ = 1e-6
        // gives ~ 0.1·√(400·13.8) + 200·0.1·0.105 ≈ 9.5.
        let mut a = CompositionAccountant::new();
        for _ in 0..200 {
            a.record(0.1);
        }
        let simple = a.simple_epsilon();
        let advanced = a.advanced_epsilon(1e-6);
        assert!((simple - 20.0).abs() < 1e-9);
        assert!(
            advanced < simple * 0.6,
            "advanced {advanced} should be far below simple {simple}"
        );
        assert_eq!(a.best_epsilon(1e-6), advanced.min(simple));
    }

    #[test]
    fn simple_beats_advanced_for_few_releases() {
        let mut a = CompositionAccountant::new();
        a.record(1.0);
        a.record(1.0);
        // k = 2: the √(2k ln 1/δ) term dominates.
        assert!(a.simple_epsilon() < a.advanced_epsilon(1e-6));
        assert_eq!(a.best_epsilon(1e-6), a.simple_epsilon());
    }

    #[test]
    fn advanced_formula_hand_check() {
        let mut a = CompositionAccountant::new();
        for _ in 0..100 {
            a.record(0.1);
        }
        let delta = 1e-5_f64;
        let expected =
            0.1 * (2.0 * 100.0 * (1.0 / delta).ln()).sqrt() + 100.0 * 0.1 * (0.1f64.exp() - 1.0);
        assert!((a.advanced_epsilon(delta) - expected).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_uses_max_epsilon_soundly() {
        let mut a = CompositionAccountant::new();
        a.record(0.1);
        a.record(0.5); // max
        let delta = 1e-6_f64;
        let expected =
            0.5 * (2.0 * 2.0 * (1.0 / delta).ln()).sqrt() + 2.0 * 0.5 * (0.5f64.exp() - 1.0);
        assert!((a.advanced_epsilon(delta) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_epsilon() {
        CompositionAccountant::new().record(0.0);
    }

    #[test]
    fn try_record_rejects_typed_without_recording() {
        let mut a = CompositionAccountant::new();
        for bad in [0.0, -0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = a.try_record(bad).unwrap_err();
            assert_eq!(err.epsilon.to_bits(), bad.to_bits(), "echoes the value");
            assert!(err.to_string().contains("positive and finite"));
        }
        assert_eq!(a.releases(), 0, "rejected releases must not accumulate");
        a.try_record(0.25).unwrap();
        assert_eq!(a.releases(), 1);
        assert!((a.simple_epsilon() - 0.25).abs() < 1e-12);
    }
}
