//! Privacy metering: per-client accounting of disclosed bits and ε.
//!
//! Bit-pushing "supports novel privacy controls where private data is
//! metered not at the value level... but at the bit level" (Section 1.1).
//! The ledger records, per client, how many private bits have been disclosed
//! and how much ε has been spent, and can enforce hard budgets — the
//! worst-case guarantee that sits alongside the probabilistic DP guarantee.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Hard per-client disclosure limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyBudget {
    /// Maximum number of private bits a client may disclose (`None` =
    /// unlimited).
    pub max_bits: Option<u64>,
    /// Maximum total ε a client may spend (`None` = unlimited).
    pub max_epsilon: Option<f64>,
}

impl PrivacyBudget {
    /// A budget with no limits (metering only).
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            max_bits: None,
            max_epsilon: None,
        }
    }

    /// The paper's headline promise: at most one bit per value; callers
    /// charge per aggregation task.
    #[must_use]
    pub fn bits(max_bits: u64) -> Self {
        Self {
            max_bits: Some(max_bits),
            max_epsilon: None,
        }
    }
}

/// Error returned when a charge would exceed a client's budget. The charge
/// is *not* applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetExceeded {
    /// The client whose budget would be exceeded.
    pub client: u64,
    /// Bits already disclosed by this client.
    pub bits_spent: u64,
    /// ε already spent by this client.
    pub epsilon_spent: f64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exceeded for client {}: {} bits / ε = {} already spent",
            self.client, self.bits_spent, self.epsilon_spent
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Per-client disclosure account.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientAccount {
    /// Private bits disclosed so far.
    pub bits: u64,
    /// Total ε spent so far (simple composition).
    pub epsilon: f64,
    /// The last round identifier charged through
    /// [`PrivacyLedger::charge_round`]; re-charges for the same round are
    /// no-ops, so retry waves that re-send an already-disclosed report never
    /// double-bill.
    pub last_round: Option<u64>,
}

/// The metering ledger.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivacyLedger {
    budget: Option<PrivacyBudget>,
    accounts: HashMap<u64, ClientAccount>,
}

impl PrivacyLedger {
    /// A ledger that only meters (no enforcement).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A ledger that enforces the given budget on every charge.
    #[must_use]
    pub fn with_budget(budget: PrivacyBudget) -> Self {
        Self {
            budget: Some(budget),
            accounts: HashMap::new(),
        }
    }

    /// Records a disclosure of `bits` private bits at privacy level
    /// `epsilon` for `client`, enforcing the budget if one is set.
    ///
    /// On rejection the account is unchanged.
    ///
    /// # Errors
    /// [`BudgetExceeded`] when the charge would push the client past either
    /// limit.
    pub fn charge(&mut self, client: u64, bits: u64, epsilon: f64) -> Result<(), BudgetExceeded> {
        let account = self.accounts.entry(client).or_default();
        if let Some(budget) = &self.budget {
            let over_bits = budget.max_bits.is_some_and(|max| account.bits + bits > max);
            let over_eps = budget
                .max_epsilon
                .is_some_and(|max| account.epsilon + epsilon > max + 1e-12);
            if over_bits || over_eps {
                return Err(BudgetExceeded {
                    client,
                    bits_spent: account.bits,
                    epsilon_spent: account.epsilon,
                });
            }
        }
        account.bits += bits;
        account.epsilon += epsilon;
        Ok(())
    }

    /// Idempotent per-round variant of [`PrivacyLedger::charge`]: the first
    /// charge for `(client, round)` is applied; subsequent charges for the
    /// same round — e.g. when a secure-aggregation retry wave re-sends the
    /// same masked report, which discloses nothing new — are no-ops.
    ///
    /// A client is assumed to participate in one round at a time; only the
    /// most recent round id is tracked.
    ///
    /// # Errors
    /// [`BudgetExceeded`] when a *new* round's charge would push the client
    /// past either limit. The account (including its round marker) is
    /// unchanged on rejection.
    pub fn charge_round(
        &mut self,
        client: u64,
        round: u64,
        bits: u64,
        epsilon: f64,
    ) -> Result<(), BudgetExceeded> {
        if self.accounts.get(&client).and_then(|a| a.last_round) == Some(round) {
            return Ok(());
        }
        self.charge(client, bits, epsilon)?;
        self.accounts.entry(client).or_default().last_round = Some(round);
        Ok(())
    }

    /// A client's current account (zero if never charged).
    #[must_use]
    pub fn account(&self, client: u64) -> ClientAccount {
        self.accounts.get(&client).copied().unwrap_or_default()
    }

    /// Number of clients with at least one charge.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.accounts.len()
    }

    /// Total private bits disclosed across all clients.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.accounts.values().map(|a| a.bits).sum()
    }

    /// The largest per-client bit disclosure — the number a privacy-metering
    /// UI would surface.
    #[must_use]
    pub fn max_bits_per_client(&self) -> u64 {
        self.accounts.values().map(|a| a.bits).max().unwrap_or(0)
    }

    /// The largest per-client ε spend.
    #[must_use]
    pub fn max_epsilon_per_client(&self) -> f64 {
        self.accounts
            .values()
            .map(|a| a.epsilon)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metering_without_budget() {
        let mut ledger = PrivacyLedger::new();
        ledger.charge(1, 1, 0.5).unwrap();
        ledger.charge(1, 1, 0.5).unwrap();
        ledger.charge(2, 1, 2.0).unwrap();
        assert_eq!(ledger.account(1).bits, 2);
        assert!((ledger.account(1).epsilon - 1.0).abs() < 1e-12);
        assert_eq!(ledger.clients(), 2);
        assert_eq!(ledger.total_bits(), 3);
        assert_eq!(ledger.max_bits_per_client(), 2);
        assert!((ledger.max_epsilon_per_client() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bit_budget_enforced() {
        let mut ledger = PrivacyLedger::with_budget(PrivacyBudget::bits(1));
        ledger.charge(7, 1, 1.0).unwrap();
        let err = ledger.charge(7, 1, 1.0).unwrap_err();
        assert_eq!(err.client, 7);
        assert_eq!(err.bits_spent, 1);
        // Rejected charge did not mutate the account.
        assert_eq!(ledger.account(7).bits, 1);
        // Other clients unaffected.
        ledger.charge(8, 1, 1.0).unwrap();
    }

    #[test]
    fn epsilon_budget_enforced() {
        let budget = PrivacyBudget {
            max_bits: None,
            max_epsilon: Some(1.0),
        };
        let mut ledger = PrivacyLedger::with_budget(budget);
        ledger.charge(1, 1, 0.6).unwrap();
        assert!(ledger.charge(1, 1, 0.6).is_err());
        ledger.charge(1, 1, 0.4).unwrap(); // exactly exhausts
        assert!(ledger.charge(1, 1, 1e-6).is_err());
    }

    #[test]
    fn unknown_client_has_zero_account() {
        let ledger = PrivacyLedger::new();
        assert_eq!(ledger.account(42), ClientAccount::default());
        assert_eq!(ledger.max_bits_per_client(), 0);
    }

    #[test]
    fn round_charges_are_idempotent_within_a_round() {
        let mut ledger = PrivacyLedger::new();
        ledger.charge_round(1, 10, 1, 0.5).unwrap();
        // Retry waves of the same round re-send the same disclosure.
        ledger.charge_round(1, 10, 1, 0.5).unwrap();
        ledger.charge_round(1, 10, 1, 0.5).unwrap();
        assert_eq!(ledger.account(1).bits, 1);
        assert!((ledger.account(1).epsilon - 0.5).abs() < 1e-12);
        // A new round charges again.
        ledger.charge_round(1, 11, 1, 0.5).unwrap();
        assert_eq!(ledger.account(1).bits, 2);
        assert_eq!(ledger.account(1).last_round, Some(11));
    }

    #[test]
    fn round_charges_respect_budgets() {
        let mut ledger = PrivacyLedger::with_budget(PrivacyBudget::bits(1));
        ledger.charge_round(7, 1, 1, 0.0).unwrap();
        // Same round: free. New round: over budget, account untouched.
        ledger.charge_round(7, 1, 1, 0.0).unwrap();
        let err = ledger.charge_round(7, 2, 1, 0.0).unwrap_err();
        assert_eq!(err.client, 7);
        assert_eq!(ledger.account(7).bits, 1);
        assert_eq!(ledger.account(7).last_round, Some(1));
    }

    #[test]
    fn round_and_plain_charges_compose() {
        let mut ledger = PrivacyLedger::new();
        ledger.charge(3, 1, 0.1).unwrap();
        assert_eq!(ledger.account(3).last_round, None);
        ledger.charge_round(3, 5, 1, 0.1).unwrap();
        assert_eq!(ledger.account(3).bits, 2);
        assert_eq!(ledger.account(3).last_round, Some(5));
    }

    #[test]
    fn error_displays_context() {
        let e = BudgetExceeded {
            client: 3,
            bits_spent: 2,
            epsilon_spent: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("client 3"));
        assert!(msg.contains("2 bits"));
    }
}
