//! Privacy metering: per-client accounting of disclosed bits and ε.
//!
//! Bit-pushing "supports novel privacy controls where private data is
//! metered not at the value level... but at the bit level" (Section 1.1).
//! The ledger records, per client, how many private bits have been disclosed
//! and how much ε has been spent, and can enforce hard budgets — the
//! worst-case guarantee that sits alongside the probabilistic DP guarantee.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::wire::{self, WireError};

/// Hard per-client disclosure limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyBudget {
    /// Maximum number of private bits a client may disclose (`None` =
    /// unlimited).
    pub max_bits: Option<u64>,
    /// Maximum total ε a client may spend (`None` = unlimited).
    pub max_epsilon: Option<f64>,
}

impl PrivacyBudget {
    /// A budget with no limits (metering only).
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            max_bits: None,
            max_epsilon: None,
        }
    }

    /// Appends this budget as a `core::wire` record fragment: one presence
    /// byte per optional limit, ε as its exact bit pattern.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self.max_bits {
            Some(v) => {
                out.push(1);
                wire::push_varint(out, v);
            }
            None => out.push(0),
        }
        match self.max_epsilon {
            Some(v) => {
                out.push(1);
                wire::push_f64(out, v);
            }
            None => out.push(0),
        }
    }

    /// Decodes an [`PrivacyBudget::encode_into`] fragment starting at
    /// `*pos`, advancing `*pos` past it.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let max_bits = match wire::read_bytes(buf, pos, 1)?[0] {
            0 => None,
            1 => Some(wire::read_varint(buf, pos)?),
            _ => return Err(WireError::InvalidField("max_bits flag")),
        };
        let max_epsilon = match wire::read_bytes(buf, pos, 1)?[0] {
            0 => None,
            1 => Some(wire::read_f64(buf, pos)?),
            _ => return Err(WireError::InvalidField("max_epsilon flag")),
        };
        Ok(Self {
            max_bits,
            max_epsilon,
        })
    }

    /// The paper's headline promise: at most one bit per value; callers
    /// charge per aggregation task.
    #[must_use]
    pub fn bits(max_bits: u64) -> Self {
        Self {
            max_bits: Some(max_bits),
            max_epsilon: None,
        }
    }
}

/// Error returned when a charge would exceed a client's budget. The charge
/// is *not* applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetExceeded {
    /// The client whose budget would be exceeded.
    pub client: u64,
    /// Bits already disclosed by this client.
    pub bits_spent: u64,
    /// ε already spent by this client.
    pub epsilon_spent: f64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exceeded for client {}: {} bits / ε = {} already spent",
            self.client, self.bits_spent, self.epsilon_spent
        )
    }
}

impl std::error::Error for BudgetExceeded {}

impl BudgetExceeded {
    /// Appends the full rejection context as a `core::wire` record
    /// fragment, so a coordinator can relay *why* a client was denied
    /// without re-deriving it from the ledger.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        wire::push_varint(out, self.client);
        wire::push_varint(out, self.bits_spent);
        wire::push_f64(out, self.epsilon_spent);
    }

    /// Encodes to a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    /// Decodes an [`BudgetExceeded::encode_into`] fragment starting at
    /// `*pos`, advancing `*pos` past it.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        Ok(Self {
            client: wire::read_varint(buf, pos)?,
            bits_spent: wire::read_varint(buf, pos)?,
            epsilon_spent: wire::read_f64(buf, pos)?,
        })
    }

    /// Decodes, requiring the buffer to be fully consumed.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0;
        let msg = Self::decode_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }
}

/// Per-client disclosure account.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientAccount {
    /// Private bits disclosed so far.
    pub bits: u64,
    /// Total ε spent so far (simple composition).
    pub epsilon: f64,
    /// The last round identifier charged through
    /// [`PrivacyLedger::charge_round`]; re-charges for the same round are
    /// no-ops, so retry waves that re-send an already-disclosed report never
    /// double-bill.
    pub last_round: Option<u64>,
}

impl ClientAccount {
    /// Appends this account as a `core::wire` record fragment.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        wire::push_varint(out, self.bits);
        wire::push_f64(out, self.epsilon);
        match self.last_round {
            Some(r) => {
                out.push(1);
                wire::push_varint(out, r);
            }
            None => out.push(0),
        }
    }

    /// Decodes an [`ClientAccount::encode_into`] fragment starting at
    /// `*pos`, advancing `*pos` past it.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let bits = wire::read_varint(buf, pos)?;
        let epsilon = wire::read_f64(buf, pos)?;
        let last_round = match wire::read_bytes(buf, pos, 1)?[0] {
            0 => None,
            1 => Some(wire::read_varint(buf, pos)?),
            _ => return Err(WireError::InvalidField("last_round flag")),
        };
        Ok(Self {
            bits,
            epsilon,
            last_round,
        })
    }
}

/// The metering ledger.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivacyLedger {
    budget: Option<PrivacyBudget>,
    accounts: HashMap<u64, ClientAccount>,
}

impl PrivacyLedger {
    /// A ledger that only meters (no enforcement).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A ledger that enforces the given budget on every charge.
    #[must_use]
    pub fn with_budget(budget: PrivacyBudget) -> Self {
        Self {
            budget: Some(budget),
            accounts: HashMap::new(),
        }
    }

    /// Records a disclosure of `bits` private bits at privacy level
    /// `epsilon` for `client`, enforcing the budget if one is set.
    ///
    /// On rejection the account is unchanged.
    ///
    /// # Errors
    /// [`BudgetExceeded`] when the charge would push the client past either
    /// limit.
    pub fn charge(&mut self, client: u64, bits: u64, epsilon: f64) -> Result<(), BudgetExceeded> {
        let account = self.accounts.entry(client).or_default();
        if let Some(budget) = &self.budget {
            let over_bits = budget.max_bits.is_some_and(|max| account.bits + bits > max);
            let over_eps = budget
                .max_epsilon
                .is_some_and(|max| account.epsilon + epsilon > max + 1e-12);
            if over_bits || over_eps {
                return Err(BudgetExceeded {
                    client,
                    bits_spent: account.bits,
                    epsilon_spent: account.epsilon,
                });
            }
        }
        account.bits += bits;
        account.epsilon += epsilon;
        Ok(())
    }

    /// Idempotent per-round variant of [`PrivacyLedger::charge`]: the first
    /// charge for `(client, round)` is applied; subsequent charges for the
    /// same round — e.g. when a secure-aggregation retry wave re-sends the
    /// same masked report, which discloses nothing new — are no-ops.
    ///
    /// A client is assumed to participate in one round at a time; only the
    /// most recent round id is tracked.
    ///
    /// # Errors
    /// [`BudgetExceeded`] when a *new* round's charge would push the client
    /// past either limit. The account (including its round marker) is
    /// unchanged on rejection.
    pub fn charge_round(
        &mut self,
        client: u64,
        round: u64,
        bits: u64,
        epsilon: f64,
    ) -> Result<(), BudgetExceeded> {
        if self.accounts.get(&client).and_then(|a| a.last_round) == Some(round) {
            return Ok(());
        }
        self.charge(client, bits, epsilon)?;
        self.accounts.entry(client).or_default().last_round = Some(round);
        Ok(())
    }

    /// A client's current account (zero if never charged).
    #[must_use]
    pub fn account(&self, client: u64) -> ClientAccount {
        self.accounts.get(&client).copied().unwrap_or_default()
    }

    /// Number of clients with at least one charge.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.accounts.len()
    }

    /// Total private bits disclosed across all clients.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.accounts.values().map(|a| a.bits).sum()
    }

    /// The largest per-client bit disclosure — the number a privacy-metering
    /// UI would surface.
    #[must_use]
    pub fn max_bits_per_client(&self) -> u64 {
        self.accounts.values().map(|a| a.bits).max().unwrap_or(0)
    }

    /// The largest per-client ε spend.
    #[must_use]
    pub fn max_epsilon_per_client(&self) -> f64 {
        self.accounts
            .values()
            .map(|a| a.epsilon)
            .fold(0.0, f64::max)
    }

    /// The enforced budget, if any.
    #[must_use]
    pub fn budget(&self) -> Option<PrivacyBudget> {
        self.budget
    }

    /// Iterates every `(client, account)` pair, in unspecified order (use
    /// [`PrivacyLedger::encode`] when a deterministic order matters).
    pub fn accounts(&self) -> impl Iterator<Item = (u64, ClientAccount)> + '_ {
        self.accounts.iter().map(|(&c, &a)| (c, a))
    }

    /// Whether a charge of `bits`/`epsilon` for `client` would be accepted
    /// by [`PrivacyLedger::charge`] — the non-mutating admission check the
    /// longitudinal round scheduler runs before staging a round.
    #[must_use]
    pub fn can_charge(&self, client: u64, bits: u64, epsilon: f64) -> bool {
        let Some(budget) = &self.budget else {
            return true;
        };
        let account = self.account(client);
        let over_bits = budget.max_bits.is_some_and(|max| account.bits + bits > max);
        let over_eps = budget
            .max_epsilon
            .is_some_and(|max| account.epsilon + epsilon > max + 1e-12);
        !(over_bits || over_eps)
    }

    /// Appends the whole ledger as a `core::wire` record fragment:
    /// `budget-presence · [budget] · varint(clients) · clients ×
    /// (varint(id) · account)`, accounts sorted by client id so equal
    /// ledgers always produce identical bytes (the durable snapshot digest
    /// depends on this).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match &self.budget {
            Some(b) => {
                out.push(1);
                b.encode_into(out);
            }
            None => out.push(0),
        }
        let mut ids: Vec<u64> = self.accounts.keys().copied().collect();
        ids.sort_unstable();
        wire::push_varint(out, ids.len() as u64);
        for id in ids {
            wire::push_varint(out, id);
            self.accounts[&id].encode_into(out);
        }
    }

    /// Encodes to a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.accounts.len() * 16);
        self.encode_into(&mut out);
        out
    }

    /// Decodes an [`PrivacyLedger::encode_into`] fragment starting at
    /// `*pos`, advancing `*pos` past it.
    ///
    /// # Errors
    /// See [`WireError`]; duplicate client ids are rejected as
    /// [`WireError::InvalidField`] (a well-formed encoder never emits them,
    /// and silently merging would corrupt balances).
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let budget = match wire::read_bytes(buf, pos, 1)?[0] {
            0 => None,
            1 => Some(PrivacyBudget::decode_from(buf, pos)?),
            _ => return Err(WireError::InvalidField("budget flag")),
        };
        let count =
            usize::try_from(wire::read_varint(buf, pos)?).map_err(|_| WireError::Truncated)?;
        // Each account is at least 10 bytes; an absurd count cannot be
        // backed by the remaining buffer.
        if count > buf.len().saturating_sub(*pos) {
            return Err(WireError::Truncated);
        }
        let mut accounts = HashMap::with_capacity(count);
        for _ in 0..count {
            let client = wire::read_varint(buf, pos)?;
            let account = ClientAccount::decode_from(buf, pos)?;
            if accounts.insert(client, account).is_some() {
                return Err(WireError::InvalidField("duplicate client id"));
            }
        }
        Ok(Self { budget, accounts })
    }

    /// Decodes, requiring the buffer to be fully consumed.
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut pos = 0;
        let ledger = Self::decode_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metering_without_budget() {
        let mut ledger = PrivacyLedger::new();
        ledger.charge(1, 1, 0.5).unwrap();
        ledger.charge(1, 1, 0.5).unwrap();
        ledger.charge(2, 1, 2.0).unwrap();
        assert_eq!(ledger.account(1).bits, 2);
        assert!((ledger.account(1).epsilon - 1.0).abs() < 1e-12);
        assert_eq!(ledger.clients(), 2);
        assert_eq!(ledger.total_bits(), 3);
        assert_eq!(ledger.max_bits_per_client(), 2);
        assert!((ledger.max_epsilon_per_client() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bit_budget_enforced() {
        let mut ledger = PrivacyLedger::with_budget(PrivacyBudget::bits(1));
        ledger.charge(7, 1, 1.0).unwrap();
        let err = ledger.charge(7, 1, 1.0).unwrap_err();
        assert_eq!(err.client, 7);
        assert_eq!(err.bits_spent, 1);
        // Rejected charge did not mutate the account.
        assert_eq!(ledger.account(7).bits, 1);
        // Other clients unaffected.
        ledger.charge(8, 1, 1.0).unwrap();
    }

    #[test]
    fn epsilon_budget_enforced() {
        let budget = PrivacyBudget {
            max_bits: None,
            max_epsilon: Some(1.0),
        };
        let mut ledger = PrivacyLedger::with_budget(budget);
        ledger.charge(1, 1, 0.6).unwrap();
        assert!(ledger.charge(1, 1, 0.6).is_err());
        ledger.charge(1, 1, 0.4).unwrap(); // exactly exhausts
        assert!(ledger.charge(1, 1, 1e-6).is_err());
    }

    #[test]
    fn unknown_client_has_zero_account() {
        let ledger = PrivacyLedger::new();
        assert_eq!(ledger.account(42), ClientAccount::default());
        assert_eq!(ledger.max_bits_per_client(), 0);
    }

    #[test]
    fn round_charges_are_idempotent_within_a_round() {
        let mut ledger = PrivacyLedger::new();
        ledger.charge_round(1, 10, 1, 0.5).unwrap();
        // Retry waves of the same round re-send the same disclosure.
        ledger.charge_round(1, 10, 1, 0.5).unwrap();
        ledger.charge_round(1, 10, 1, 0.5).unwrap();
        assert_eq!(ledger.account(1).bits, 1);
        assert!((ledger.account(1).epsilon - 0.5).abs() < 1e-12);
        // A new round charges again.
        ledger.charge_round(1, 11, 1, 0.5).unwrap();
        assert_eq!(ledger.account(1).bits, 2);
        assert_eq!(ledger.account(1).last_round, Some(11));
    }

    #[test]
    fn round_charges_respect_budgets() {
        let mut ledger = PrivacyLedger::with_budget(PrivacyBudget::bits(1));
        ledger.charge_round(7, 1, 1, 0.0).unwrap();
        // Same round: free. New round: over budget, account untouched.
        ledger.charge_round(7, 1, 1, 0.0).unwrap();
        let err = ledger.charge_round(7, 2, 1, 0.0).unwrap_err();
        assert_eq!(err.client, 7);
        assert_eq!(ledger.account(7).bits, 1);
        assert_eq!(ledger.account(7).last_round, Some(1));
    }

    #[test]
    fn round_and_plain_charges_compose() {
        let mut ledger = PrivacyLedger::new();
        ledger.charge(3, 1, 0.1).unwrap();
        assert_eq!(ledger.account(3).last_round, None);
        ledger.charge_round(3, 5, 1, 0.1).unwrap();
        assert_eq!(ledger.account(3).bits, 2);
        assert_eq!(ledger.account(3).last_round, Some(5));
    }

    #[test]
    fn ledger_round_trips_through_wire_bytes() {
        let mut ledger = PrivacyLedger::with_budget(PrivacyBudget {
            max_bits: Some(10),
            max_epsilon: Some(3.5),
        });
        ledger.charge(3, 2, 0.25).unwrap();
        ledger.charge_round(7, 41, 1, 0.5).unwrap();
        ledger.charge(u64::MAX, 1, 1e-9).unwrap();
        let bytes = ledger.encode();
        let back = PrivacyLedger::decode(&bytes).unwrap();
        assert_eq!(back, ledger);
        // Balances are bit-identical, not merely approximately equal.
        for (client, account) in ledger.accounts() {
            let got = back.account(client);
            assert_eq!(got.bits, account.bits);
            assert_eq!(got.epsilon.to_bits(), account.epsilon.to_bits());
            assert_eq!(got.last_round, account.last_round);
        }
        // Sorted encoding is canonical: re-encoding the decode is identical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn empty_and_unbudgeted_ledgers_round_trip() {
        let ledger = PrivacyLedger::new();
        assert_eq!(PrivacyLedger::decode(&ledger.encode()).unwrap(), ledger);
        let mut metered = PrivacyLedger::new();
        metered.charge(1, 0, 0.0).unwrap();
        assert_eq!(PrivacyLedger::decode(&metered.encode()).unwrap(), metered);
    }

    #[test]
    fn ledger_decode_rejects_malformed_bytes() {
        let mut ledger = PrivacyLedger::new();
        ledger.charge(1, 1, 0.5).unwrap();
        ledger.charge(2, 1, 0.5).unwrap();
        let bytes = ledger.encode();
        for cut in 0..bytes.len() {
            assert!(
                PrivacyLedger::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(9);
        assert_eq!(
            PrivacyLedger::decode(&trailing),
            Err(WireError::TrailingBytes)
        );
        // Duplicate client ids must be rejected, not merged.
        let mut dup = Vec::new();
        dup.push(0); // no budget
        wire::push_varint(&mut dup, 2);
        for _ in 0..2 {
            wire::push_varint(&mut dup, 5);
            ClientAccount::default().encode_into(&mut dup);
        }
        assert_eq!(
            PrivacyLedger::decode(&dup),
            Err(WireError::InvalidField("duplicate client id"))
        );
        // Hostile count fails before allocating.
        let mut hostile = vec![0u8];
        wire::push_varint(&mut hostile, u64::MAX);
        assert_eq!(PrivacyLedger::decode(&hostile), Err(WireError::Truncated));
    }

    #[test]
    fn budget_exceeded_round_trips_with_context() {
        let err = BudgetExceeded {
            client: 1 << 40,
            bits_spent: 17,
            epsilon_spent: 2.125,
        };
        let back = BudgetExceeded::decode(&err.encode()).unwrap();
        assert_eq!(back.client, err.client);
        assert_eq!(back.bits_spent, err.bits_spent);
        assert_eq!(back.epsilon_spent.to_bits(), err.epsilon_spent.to_bits());
        let mut trailing = err.encode();
        trailing.push(0);
        assert_eq!(
            BudgetExceeded::decode(&trailing),
            Err(WireError::TrailingBytes)
        );
    }

    #[test]
    fn can_charge_mirrors_charge_exactly() {
        let budget = PrivacyBudget {
            max_bits: Some(2),
            max_epsilon: Some(1.0),
        };
        let mut ledger = PrivacyLedger::with_budget(budget);
        ledger.charge(1, 1, 0.6).unwrap();
        for (bits, eps) in [(1u64, 0.4f64), (1, 0.6), (2, 0.0), (0, 1e-6)] {
            assert_eq!(
                ledger.can_charge(1, bits, eps),
                ledger.clone().charge(1, bits, eps).is_ok(),
                "bits={bits} eps={eps}"
            );
        }
        // Unbudgeted ledgers admit anything.
        assert!(PrivacyLedger::new().can_charge(9, u64::MAX, f64::MAX));
    }

    #[test]
    fn error_displays_context() {
        let e = BudgetExceeded {
            client: 3,
            bits_spent: 2,
            epsilon_spent: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("client 3"));
        assert!(msg.contains("2 bits"));
    }
}
