//! Privacy layers for bit-pushing (Section 3.3).
//!
//! * Randomized response (re-exported from `fednum-ldp`) provides the ε-LDP
//!   guarantee: every transmitted bit is flipped with probability
//!   `1/(1+e^ε)` on the client and debiased at the server.
//! * [`squash`] — bit squashing: post-processing that zeroes bit means that
//!   are indistinguishable from DP noise (Figures 4a–4c).
//! * [`distributed`] — distributed DP on the per-bit histograms:
//!   sample-and-threshold (Bharadwaj–Cormode) and Bernoulli noise addition
//!   (Balcer–Cheu style).
//! * [`metering`] — the bit-level privacy ledger of Section 1.1: per-client
//!   accounting of disclosed private bits and ε spent, with enforceable
//!   budgets.
//! * [`durable`] — the crash-safe cross-round form of that ledger: a
//!   campaign state machine (admit → commit) persisted through a
//!   write-ahead log plus periodic snapshots, so a coordinator restart
//!   resumes a longitudinal campaign without re-granting budget.
//! * [`amplification`] — amplification by shuffling: the closed-form
//!   (local ε₀, n, δ) → central ε bound a shuffled round charges, with a
//!   conservative local-ε fallback below the bound's validity threshold.

pub mod accountant;
pub mod amplification;
pub mod distributed;
pub mod durable;
pub mod metering;
pub mod squash;

pub use accountant::{CompositionAccountant, InvalidEpsilon};
pub use amplification::{Amplification, AmplificationError, ShuffleCharge};
pub use distributed::{BernoulliNoise, SampleThreshold};
pub use durable::{
    Admission, CampaignState, CommitSummary, DurableError, DurableLedger, LedgerRecord,
    RecoveryStats,
};
pub use fednum_ldp::RandomizedResponse;
pub use metering::{BudgetExceeded, PrivacyBudget, PrivacyLedger};
pub use squash::BitSquash;
