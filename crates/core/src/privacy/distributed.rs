//! Distributed differential privacy on bit histograms (Section 3.3).
//!
//! In the distributed model each client adds only a little noise, and the
//! aggregate noise matches the central model. Bit-pushing's server state is
//! a pair of counts per bit index (ones and totals), i.e. binary histograms,
//! "for which accurate protocols exist under distributed privacy":
//!
//! * [`SampleThreshold`] — Bharadwaj & Cormode (AISTATS 2022): each report
//!   is included with probability `q` and the server removes very small
//!   counts; sampling alone then provides DP. The paper's deployment uses
//!   this ("adding distributed noise via sampling") and found the threshold
//!   "introduced a negligible amount of noise compared to the
//!   non-thresholded sample".
//! * [`BernoulliNoise`] — Balcer & Cheu (SODA 2021) style: augment each
//!   histogram cell with Binomial(n, λ) phantom counts contributed by the
//!   clients, debiased by the server. Expected absolute error for the
//!   histogram is `O((1/ε²) log 1/δ)`.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::accumulator::BitAccumulator;

/// Draws a Binomial(n, p) variate: exact Bernoulli summation for small `n`,
/// normal approximation (rounded, clamped) for large `n`.
pub fn binomial(n: u64, p: f64, rng: &mut dyn Rng) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 || n == 0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if n <= 4096 {
        (0..n).filter(|_| rng.random_bool(p)).count() as u64
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as u64
    }
}

/// Sample-and-threshold distributed DP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleThreshold {
    /// Per-report inclusion probability `q ∈ (0, 1]`.
    pub q: f64,
    /// Counts at or below this value are zeroed ("very small counts are
    /// removed from the reporting").
    pub threshold: u64,
}

impl SampleThreshold {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics unless `0 < q <= 1`.
    #[must_use]
    pub fn new(q: f64, threshold: u64) -> Self {
        assert!(q > 0.0 && q <= 1.0, "q must be in (0, 1]");
        Self { q, threshold }
    }

    /// Applies sampling + thresholding to an accumulator of raw (0/1) bit
    /// reports, returning the privatized accumulator with sums rescaled by
    /// `1/q` so downstream estimates stay unbiased (up to thresholding).
    ///
    /// Must be applied to *unit* reports (no randomized-response debiasing
    /// yet), since it subsamples count histograms.
    pub fn apply(&self, acc: &BitAccumulator, rng: &mut dyn Rng) -> BitAccumulator {
        let mut sums = Vec::with_capacity(acc.bits() as usize);
        let mut counts = Vec::with_capacity(acc.bits() as usize);
        for j in 0..acc.bits() as usize {
            let ones = acc.sums()[j].round().max(0.0) as u64;
            let total = acc.counts()[j];
            let zeros = total.saturating_sub(ones);
            // Subsample ones and zeros independently.
            let kept_ones = binomial(ones, self.q, rng);
            let kept_zeros = binomial(zeros, self.q, rng);
            // Threshold tiny cells.
            let kept_ones = if kept_ones <= self.threshold {
                0
            } else {
                kept_ones
            };
            let kept_zeros = if kept_zeros <= self.threshold {
                0
            } else {
                kept_zeros
            };
            sums.push(kept_ones as f64);
            counts.push(kept_ones + kept_zeros);
        }
        BitAccumulator::from_parts(sums, counts)
    }
}

/// Bernoulli/binomial noise addition on histogram cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BernoulliNoise {
    /// Per-client probability of contributing one phantom count to each
    /// histogram cell.
    pub lambda: f64,
}

impl BernoulliNoise {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics unless `0 <= lambda <= 1`.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda in [0, 1]");
        Self { lambda }
    }

    /// Calibrates λ for an (ε, δ) guarantee over `n` clients using the
    /// standard binomial-mechanism bound `λ ≥ c·ln(1/δ)/(n ε²)` (capped at
    /// 1/2), with `c = 8`.
    ///
    /// # Panics
    /// Panics unless `epsilon > 0`, `0 < delta < 1`, `n > 0`.
    #[must_use]
    pub fn calibrate(epsilon: f64, delta: f64, n: usize) -> Self {
        assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0 && n > 0);
        let lambda = (8.0 * (1.0 / delta).ln() / (n as f64 * epsilon * epsilon)).min(0.5);
        Self::new(lambda)
    }

    /// Applies phantom-count noise: each of the `n` clients adds a phantom
    /// 1-count with probability λ and a phantom 0-count with probability λ,
    /// to each bit cell; the server then subtracts the expectation
    /// (`n λ` ones and `2 n λ` total) to stay unbiased in expectation.
    pub fn apply(&self, acc: &BitAccumulator, n: usize, rng: &mut dyn Rng) -> BitAccumulator {
        let mut sums = Vec::with_capacity(acc.bits() as usize);
        let mut counts = Vec::with_capacity(acc.bits() as usize);
        for j in 0..acc.bits() as usize {
            let phantom_ones = binomial(n as u64, self.lambda, rng) as f64;
            let phantom_zeros = binomial(n as u64, self.lambda, rng) as f64;
            let expected = n as f64 * self.lambda;
            // Noisy observed cells, debiased by the known expectation. Sums
            // stay real-valued; counts track actual reports only, so the
            // mean estimate uses the debiased sum over true counts.
            let debiased_ones = acc.sums()[j] + phantom_ones - expected;
            let _ = phantom_zeros; // zero-cell noise cancels in the mean
            sums.push(debiased_ones);
            counts.push(acc.counts()[j]);
        }
        BitAccumulator::from_parts(sums, counts)
    }

    /// Standard deviation of the phantom-count noise on a cell of `n`
    /// clients.
    #[must_use]
    pub fn noise_std(&self, n: usize) -> f64 {
        (n as f64 * self.lambda * (1.0 - self.lambda)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_moments_small_and_large() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, p) in &[(100u64, 0.3), (100_000u64, 0.2)] {
            let trials = 2000;
            let mean: f64 = (0..trials)
                .map(|_| binomial(n, p, &mut rng) as f64)
                .sum::<f64>()
                / f64::from(trials);
            let expected = n as f64 * p;
            assert!(
                (mean / expected - 1.0).abs() < 0.02,
                "n={n} p={p} mean {mean}"
            );
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(binomial(0, 0.5, &mut rng), 0);
        assert_eq!(binomial(100, 0.0, &mut rng), 0);
        assert_eq!(binomial(100, 1.0, &mut rng), 100);
        let v = binomial(1_000_000, 0.5, &mut rng);
        assert!(v <= 1_000_000);
    }

    fn acc_with(ones: u64, zeros: u64) -> BitAccumulator {
        BitAccumulator::from_parts(vec![ones as f64], vec![ones + zeros])
    }

    #[test]
    fn sample_threshold_preserves_mean_in_expectation() {
        let st = SampleThreshold::new(0.5, 2);
        let acc = acc_with(6000, 4000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut mean_sum = 0.0;
        let trials = 500;
        for _ in 0..trials {
            let out = st.apply(&acc, &mut rng);
            mean_sum += out.bit_means()[0];
        }
        let avg = mean_sum / f64::from(trials);
        assert!((avg - 0.6).abs() < 0.01, "avg bit mean {avg}");
    }

    #[test]
    fn sample_threshold_removes_small_counts() {
        let st = SampleThreshold::new(1.0, 5);
        // 3 ones (≤ threshold) and 100 zeros.
        let out = st.apply(&acc_with(3, 100), &mut StdRng::seed_from_u64(4));
        assert_eq!(out.sums()[0], 0.0);
        assert_eq!(out.counts()[0], 100);
    }

    #[test]
    fn sample_threshold_subsamples_counts() {
        let st = SampleThreshold::new(0.25, 0);
        let out = st.apply(&acc_with(40_000, 40_000), &mut StdRng::seed_from_u64(5));
        let total = out.counts()[0] as f64;
        assert!((total / 20_000.0 - 1.0).abs() < 0.05, "kept {total}");
    }

    #[test]
    fn bernoulli_noise_is_unbiased() {
        let bn = BernoulliNoise::new(0.1);
        let acc = acc_with(700, 300);
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 2000;
        let mut sum = 0.0;
        for _ in 0..trials {
            sum += bn.apply(&acc, 1000, &mut rng).bit_means()[0];
        }
        let avg = sum / f64::from(trials);
        assert!((avg - 0.7).abs() < 0.005, "avg {avg}");
    }

    #[test]
    fn bernoulli_noise_std_formula() {
        let bn = BernoulliNoise::new(0.25);
        assert!((bn.noise_std(1600) - (1600.0f64 * 0.25 * 0.75).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn calibrate_shrinks_with_n_and_epsilon() {
        let a = BernoulliNoise::calibrate(1.0, 1e-6, 1000);
        let b = BernoulliNoise::calibrate(1.0, 1e-6, 100_000);
        assert!(b.lambda < a.lambda);
        let c = BernoulliNoise::calibrate(4.0, 1e-6, 1000);
        assert!(c.lambda < a.lambda);
        // Capped at 1/2 in the tiny-cohort regime.
        let tiny = BernoulliNoise::calibrate(0.01, 1e-6, 10);
        assert_eq!(tiny.lambda, 0.5);
    }

    #[test]
    fn distributed_noise_much_smaller_than_local() {
        // The point of the distributed model: aggregate noise ~ sqrt(n·λ)
        // on a count of n, versus local RR noise ~ sqrt(n · Var_RR).
        let n = 10_000;
        let bn = BernoulliNoise::calibrate(1.0, 1e-6, n);
        let rr = fednum_ldp::RandomizedResponse::from_epsilon(1.0);
        let local_noise_on_count = (n as f64 * rr.fixed_bit_variance()).sqrt();
        assert!(bn.noise_std(n) < local_noise_on_count / 5.0);
    }

    #[test]
    #[should_panic(expected = "q must be in")]
    fn sample_threshold_rejects_zero_q() {
        let _ = SampleThreshold::new(0.0, 1);
    }
}
