//! Fixed-point / integer encoding of client values.
//!
//! Bit-pushing operates on `b`-bit unsigned integers (Section 3.1: "we work
//! with b-bit integer and fixed-point values"). This module maps real client
//! values into that domain:
//!
//! * `encoded = round((x - offset) * scale)`, clamped into `[0, 2^b - 1]`;
//! * the clamp *is* the winsorization/clipping the deployment section
//!   recommends for heavy-tailed metrics ("clipping the inputs to a fixed
//!   number of bits b — say, 8 or 16 — so that large values are truncated to
//!   2^b − 1", Section 4.3);
//! * signed ranges are handled with offset binary (an explicit `offset`),
//!   because signed binary expansions are not linear in the sign bit
//!   (footnote 1 of the paper).

use serde::{Deserialize, Serialize};

/// Maximum supported bit depth: `2^52` keeps every encoded integer exactly
/// representable in `f64`, which the reconstruction arithmetic relies on.
pub const MAX_BITS: u32 = 52;

/// A `b`-bit unsigned fixed-point codec with clipping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPointCodec {
    bits: u32,
    scale: f64,
    offset: f64,
}

/// Whether an encode operation had to clip its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Clip {
    /// Value was representable without clamping.
    None,
    /// Value fell below the encodable range and was clamped to 0.
    Low,
    /// Value exceeded the encodable range and was clamped to `2^b - 1`.
    High,
}

impl FixedPointCodec {
    /// A codec for nonnegative integers in `[0, 2^bits - 1]`
    /// (`scale = 1`, `offset = 0`).
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 52`.
    #[must_use]
    pub fn integer(bits: u32) -> Self {
        Self::new(bits, 1.0, 0.0)
    }

    /// A codec with `frac_bits` binary fraction digits: values are encoded
    /// at resolution `2^-frac_bits` over `[0, 2^(bits - frac_bits))`.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 52` and `frac_bits < bits`.
    #[must_use]
    pub fn fixed_point(bits: u32, frac_bits: u32) -> Self {
        assert!(frac_bits < bits, "frac_bits must be < bits");
        Self::new(bits, (1u64 << frac_bits) as f64, 0.0)
    }

    /// A codec spanning `[lo, hi]` with full `bits`-bit resolution
    /// (offset binary: `lo` maps to 0, `hi` to `2^bits - 1`).
    ///
    /// # Panics
    /// Panics unless `lo < hi` (finite) and `1 <= bits <= 52`.
    #[must_use]
    pub fn spanning(bits: u32, lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "need lo < hi");
        let max = ((1u64 << bits) - 1) as f64;
        Self::new(bits, max / (hi - lo), lo)
    }

    /// General constructor: `encoded = round((x - offset) * scale)`.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 52`, `scale > 0` and finite, `offset`
    /// finite.
    #[must_use]
    pub fn new(bits: u32, scale: f64, offset: f64) -> Self {
        assert!(
            (1..=MAX_BITS).contains(&bits),
            "bits must be in 1..={MAX_BITS}, got {bits}"
        );
        assert!(scale > 0.0 && scale.is_finite(), "scale must be > 0");
        assert!(offset.is_finite(), "offset must be finite");
        Self {
            bits,
            scale,
            offset,
        }
    }

    /// Bit depth `b`.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest encodable integer, `2^b - 1`.
    #[must_use]
    pub fn max_encoded(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Largest decodable value, `decode(2^b - 1)`.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.decode(self.max_encoded())
    }

    /// Smallest decodable value, `decode(0)`.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        self.offset
    }

    /// Encodes a value, clipping into the representable range.
    #[must_use]
    pub fn encode(&self, x: f64) -> u64 {
        self.encode_checked(x).0
    }

    /// Encodes a value, additionally reporting whether clipping occurred.
    #[must_use]
    pub fn encode_checked(&self, x: f64) -> (u64, Clip) {
        let raw = (x - self.offset) * self.scale;
        let max = self.max_encoded();
        if raw.is_nan() || raw < 0.0 {
            return (0, Clip::Low);
        }
        let rounded = raw.round();
        if rounded > max as f64 {
            (max, Clip::High)
        } else {
            (rounded as u64, Clip::None)
        }
    }

    /// Decodes an encoded integer back to the value domain.
    #[must_use]
    pub fn decode(&self, v: u64) -> f64 {
        self.decode_float(v as f64)
    }

    /// Decodes a *fractional* encoded-domain value — reconstructed means
    /// `Σ 2^j m_j` are real numbers in encoded units.
    #[must_use]
    pub fn decode_float(&self, v: f64) -> f64 {
        v / self.scale + self.offset
    }

    /// Encodes a whole population, returning the codes and the fraction of
    /// values that were clipped (a deployment health signal).
    #[must_use]
    pub fn encode_all(&self, values: &[f64]) -> (Vec<u64>, f64) {
        let mut clipped = 0usize;
        let codes = values
            .iter()
            .map(|&x| {
                let (v, c) = self.encode_checked(x);
                if c != Clip::None {
                    clipped += 1;
                }
                v
            })
            .collect();
        let frac = if values.is_empty() {
            0.0
        } else {
            clipped as f64 / values.len() as f64
        };
        (codes, frac)
    }

    /// The exact mean of the population *after* encoding (clipping +
    /// rounding) in the value domain: the ground truth a clipped protocol
    /// should be compared against.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    #[must_use]
    pub fn encoded_mean(&self, values: &[f64]) -> f64 {
        assert!(!values.is_empty(), "need at least one value");
        let sum: f64 = values.iter().map(|&x| self.encode(x) as f64).sum();
        self.decode_float(sum / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_codec_round_trips() {
        let c = FixedPointCodec::integer(8);
        for v in [0u64, 1, 37, 128, 255] {
            assert_eq!(c.encode(v as f64), v);
            assert_eq!(c.decode(v), v as f64);
        }
        assert_eq!(c.max_encoded(), 255);
        assert_eq!(c.bits(), 8);
    }

    #[test]
    fn clipping_high_and_low() {
        let c = FixedPointCodec::integer(8);
        assert_eq!(c.encode_checked(300.0), (255, Clip::High));
        assert_eq!(c.encode_checked(-5.0), (0, Clip::Low));
        assert_eq!(c.encode_checked(255.0), (255, Clip::None));
        assert_eq!(c.encode_checked(0.0), (0, Clip::None));
    }

    #[test]
    fn nan_clips_low() {
        let c = FixedPointCodec::integer(8);
        assert_eq!(c.encode_checked(f64::NAN), (0, Clip::Low));
    }

    #[test]
    fn rounding_is_nearest() {
        let c = FixedPointCodec::integer(8);
        assert_eq!(c.encode(10.4), 10);
        assert_eq!(c.encode(10.6), 11);
    }

    #[test]
    fn fixed_point_resolution() {
        // 10 bits with 2 fraction bits: resolution 0.25, range [0, 255.75].
        let c = FixedPointCodec::fixed_point(10, 2);
        assert_eq!(c.encode(1.25), 5);
        assert!((c.decode(5) - 1.25).abs() < 1e-12);
        assert!((c.max_value() - 255.75).abs() < 1e-12);
    }

    #[test]
    fn spanning_codec_maps_endpoints() {
        let c = FixedPointCodec::spanning(8, -10.0, 10.0);
        assert_eq!(c.encode(-10.0), 0);
        assert_eq!(c.encode(10.0), 255);
        assert!((c.decode(0) - -10.0).abs() < 1e-12);
        assert!((c.decode(255) - 10.0).abs() < 1e-12);
        // Midpoint encodes near the centre code.
        let mid = c.encode(0.0);
        assert!((127..=128).contains(&mid));
    }

    #[test]
    fn spanning_round_trip_error_bounded_by_half_step() {
        let c = FixedPointCodec::spanning(12, 0.0, 100.0);
        let step = 100.0 / 4095.0;
        for i in 0..1000 {
            let x = i as f64 * 0.1;
            let err = (c.decode(c.encode(x)) - x).abs();
            assert!(err <= step / 2.0 + 1e-12, "x={x} err={err}");
        }
    }

    #[test]
    fn decode_float_handles_fractional_means() {
        let c = FixedPointCodec::fixed_point(8, 1);
        // Encoded-domain mean 10.5 → value 5.25.
        assert!((c.decode_float(10.5) - 5.25).abs() < 1e-12);
    }

    #[test]
    fn encode_all_reports_clip_fraction() {
        let c = FixedPointCodec::integer(4); // max 15
        let (codes, frac) = c.encode_all(&[1.0, 20.0, 7.0, 100.0]);
        assert_eq!(codes, vec![1, 15, 7, 15]);
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn encoded_mean_accounts_for_clipping() {
        let c = FixedPointCodec::integer(4);
        // Values 10 and 30 → encoded 10 and 15 → mean 12.5.
        assert!((c.encoded_mean(&[10.0, 30.0]) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn one_bit_codec() {
        let c = FixedPointCodec::integer(1);
        assert_eq!(c.max_encoded(), 1);
        assert_eq!(c.encode(0.6), 1);
        assert_eq!(c.encode(0.4), 0);
    }

    #[test]
    fn max_bits_codec_is_exact() {
        let c = FixedPointCodec::integer(MAX_BITS);
        let big = c.max_encoded();
        assert_eq!(c.encode(big as f64), big);
        assert_eq!(c.decode(big), big as f64);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_zero_bits() {
        let _ = FixedPointCodec::integer(0);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_oversized_bits() {
        let _ = FixedPointCodec::integer(53);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_nonpositive_scale() {
        let _ = FixedPointCodec::new(8, 0.0, 0.0);
    }
}
