//! Multi-feature aggregation with one bit per client *total*.
//!
//! The conclusions note that "in settings where each client sends multiple
//! bits, or reveals information about multiple features, the communication
//! benefits become more apparent" (Section 5). This module estimates the
//! means of `d` features simultaneously while each client still discloses a
//! single bit of a single feature: the server first apportions clients to
//! features (QMC, optionally weighted), then runs bit-pushing inside each
//! feature cohort.

use fednum_ldp::RandomizedResponse;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::privacy::squash::BitSquash;
use crate::protocol::basic::{BasicBitPushing, BasicConfig, Outcome};
use crate::sampling::{AssignmentMode, BitSampling};

/// Per-feature protocol description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Display name.
    pub name: String,
    /// The feature's bit-pushing round configuration.
    pub protocol: BasicConfig,
    /// Relative share of clients this feature receives (need not be
    /// normalized).
    pub weight: f64,
}

impl FeatureSpec {
    /// Creates a spec with weight 1.
    #[must_use]
    pub fn new(name: impl Into<String>, protocol: BasicConfig) -> Self {
        Self {
            name: name.into(),
            protocol,
            weight: 1.0,
        }
    }

    /// Overrides the client-share weight.
    ///
    /// # Panics
    /// Panics unless `weight > 0`.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0 && weight.is_finite(), "weight must be > 0");
        self.weight = weight;
        self
    }
}

/// Result for one feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureOutcome {
    /// Feature name.
    pub name: String,
    /// Cohort size this feature received.
    pub cohort: usize,
    /// The bit-pushing outcome.
    pub outcome: Outcome,
}

/// Aggregates `d` features, one disclosed bit per client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFeatureBitPushing {
    features: Vec<FeatureSpec>,
}

impl MultiFeatureBitPushing {
    /// Creates the aggregator.
    ///
    /// # Panics
    /// Panics if `features` is empty.
    #[must_use]
    pub fn new(features: Vec<FeatureSpec>) -> Self {
        assert!(!features.is_empty(), "need at least one feature");
        Self { features }
    }

    /// Convenience: `d` features sharing one protocol configuration and
    /// equal weights.
    #[must_use]
    pub fn uniform(names: &[&str], protocol: BasicConfig) -> Self {
        Self::new(
            names
                .iter()
                .map(|&n| FeatureSpec::new(n, protocol.clone()))
                .collect(),
        )
    }

    /// Number of features.
    #[must_use]
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// Runs the aggregation. `columns[f][i]` is client `i`'s value for
    /// feature `f`; every column must have one value per client.
    ///
    /// # Panics
    /// Panics on column-count/length mismatches or when some feature's
    /// cohort would be empty.
    pub fn run(&self, columns: &[Vec<f64>], rng: &mut dyn Rng) -> Vec<FeatureOutcome> {
        assert_eq!(columns.len(), self.features.len(), "one column per feature");
        let n = columns[0].len();
        assert!(n > 0, "need at least one client");
        assert!(
            columns.iter().all(|c| c.len() == n),
            "all feature columns must have the same length"
        );

        // Apportion clients to features by weight (largest remainder), then
        // a random matching of who serves which feature.
        let weights: Vec<f64> = self.features.iter().map(|f| f.weight).collect();
        let feature_sampling = BitSampling::custom(weights);
        let assignment = feature_sampling.assign_qmc(n, rng);
        assert!(
            self.features.len() <= 52,
            "at most 52 features per aggregation"
        );

        let mut outcomes = Vec::with_capacity(self.features.len());
        for (f, spec) in self.features.iter().enumerate() {
            let cohort: Vec<f64> = assignment
                .iter()
                .enumerate()
                .filter(|(_, &a)| a as usize == f)
                .map(|(i, _)| columns[f][i])
                .collect();
            assert!(
                !cohort.is_empty(),
                "feature '{}' received no clients; increase n or its weight",
                spec.name
            );
            let protocol = BasicBitPushing::new(spec.protocol.clone());
            let outcome = protocol.run(&cohort, rng);
            outcomes.push(FeatureOutcome {
                name: spec.name.clone(),
                cohort: cohort.len(),
                outcome,
            });
        }
        outcomes
    }
}

/// Builds a standard per-feature config: `bits`-bit integer codec, geometric
/// sampling, optional shared privacy and squashing.
#[must_use]
pub fn standard_feature_config(
    bits: u32,
    gamma: f64,
    privacy: Option<RandomizedResponse>,
    squash: Option<BitSquash>,
) -> BasicConfig {
    let mut cfg = BasicConfig::new(
        crate::encoding::FixedPointCodec::integer(bits),
        BitSampling::geometric(bits, gamma),
    )
    .with_assignment(AssignmentMode::CentralQmc);
    if let Some(rr) = privacy {
        cfg = cfg.with_privacy(rr);
    }
    if let Some(sq) = squash {
        cfg = cfg.with_squash(sq);
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn columns(n: usize) -> Vec<Vec<f64>> {
        vec![
            (0..n).map(|i| (i % 100) as f64).collect(),
            (0..n).map(|i| 200.0 + (i % 50) as f64).collect(),
            (0..n).map(|i| (i % 10) as f64).collect(),
        ]
    }

    fn truth(col: &[f64]) -> f64 {
        col.iter().sum::<f64>() / col.len() as f64
    }

    #[test]
    fn three_features_estimated_with_one_bit_each() {
        let n = 60_000;
        let cols = columns(n);
        let agg = MultiFeatureBitPushing::uniform(
            &["latency", "memory", "errors"],
            standard_feature_config(9, 1.0, None, None),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let outcomes = agg.run(&cols, &mut rng);
        assert_eq!(outcomes.len(), 3);
        let total_reports: u64 = outcomes
            .iter()
            .map(|o| o.outcome.accumulator.total_reports())
            .sum();
        assert_eq!(total_reports, n as u64, "exactly one bit per client");
        for (o, col) in outcomes.iter().zip(&cols) {
            let t = truth(col);
            assert!(
                (o.outcome.estimate - t).abs() / t.max(1.0) < 0.1,
                "{}: est {} truth {t}",
                o.name,
                o.outcome.estimate
            );
        }
    }

    #[test]
    fn weights_skew_cohort_sizes() {
        let n = 10_000;
        let cols = columns(n);
        let cfg = standard_feature_config(9, 1.0, None, None);
        let agg = MultiFeatureBitPushing::new(vec![
            FeatureSpec::new("a", cfg.clone()).with_weight(3.0),
            FeatureSpec::new("b", cfg.clone()),
            FeatureSpec::new("c", cfg),
        ]);
        let mut rng = StdRng::seed_from_u64(2);
        let outcomes = agg.run(&cols, &mut rng);
        assert_eq!(outcomes[0].cohort, 6000);
        assert_eq!(outcomes[1].cohort, 2000);
        assert_eq!(outcomes[2].cohort, 2000);
    }

    #[test]
    fn privacy_applies_per_feature() {
        let n = 90_000;
        let cols = columns(n);
        let rr = RandomizedResponse::from_epsilon(2.0);
        let agg = MultiFeatureBitPushing::uniform(
            &["a", "b", "c"],
            standard_feature_config(9, 2.0, Some(rr), None),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let outcomes = agg.run(&cols, &mut rng);
        for (o, col) in outcomes.iter().zip(&cols) {
            let t = truth(col);
            // DP noise at eps=2 over ~30k-client cohorts in a 9-bit domain
            // leaves absolute errors of a few units on small-magnitude
            // features (the RR variance is independent of the bit means).
            assert!(
                (o.outcome.estimate - t).abs() < 0.5 * t.max(20.0),
                "{}: est {} truth {t}",
                o.name,
                o.outcome.estimate
            );
        }
    }

    #[test]
    #[should_panic(expected = "one column per feature")]
    fn rejects_column_mismatch() {
        let agg = MultiFeatureBitPushing::uniform(
            &["a", "b"],
            standard_feature_config(4, 1.0, None, None),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let _ = agg.run(&[vec![1.0]], &mut rng);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn rejects_ragged_columns() {
        let agg = MultiFeatureBitPushing::uniform(
            &["a", "b"],
            standard_feature_config(4, 1.0, None, None),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let _ = agg.run(&[vec![1.0, 2.0], vec![1.0]], &mut rng);
    }
}
