//! Upper-bound tracking and heavy-tail / non-stationarity flagging.
//!
//! Section 1.1: "mean estimation is not so meaningful for quantities with
//! high skew... Instead, our method can report an upper bound on the
//! aggregated samples, and flag when this bound changes significantly over
//! time, indicating a heavy-tail and/or non-stationary distribution."
//!
//! The tracker also implements the deployment guidance for "deciding the
//! number of bits" (Section 4.3): choose the clipping depth from the
//! observed magnitude rather than from a guessed tight range.

use serde::{Deserialize, Serialize};

/// Streaming per-round upper-bound monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpperBoundTracker {
    history: Vec<f64>,
    /// Consecutive-round growth factor above which the metric is flagged.
    factor: f64,
}

impl UpperBoundTracker {
    /// Creates a tracker flagging when the observed bound grows by more than
    /// `factor` between consecutive rounds.
    ///
    /// # Panics
    /// Panics unless `factor > 1`.
    #[must_use]
    pub fn new(factor: f64) -> Self {
        assert!(factor > 1.0 && factor.is_finite(), "factor must be > 1");
        Self {
            history: Vec::new(),
            factor,
        }
    }

    /// Records the maximum value observed in one aggregation round.
    ///
    /// # Panics
    /// Panics on non-finite or negative bounds.
    pub fn record_round(&mut self, max_observed: f64) {
        assert!(
            max_observed.is_finite() && max_observed >= 0.0,
            "bound must be finite and nonnegative"
        );
        self.history.push(max_observed);
    }

    /// The most recent bound (`None` before any round).
    #[must_use]
    pub fn latest(&self) -> Option<f64> {
        self.history.last().copied()
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.history.len()
    }

    /// True if the latest round's bound exceeded the previous round's by
    /// more than the configured factor — the heavy-tail / non-stationarity
    /// flag.
    #[must_use]
    pub fn flagged(&self) -> bool {
        let n = self.history.len();
        if n < 2 {
            return false;
        }
        let prev = self.history[n - 2];
        let cur = self.history[n - 1];
        cur > prev.max(f64::MIN_POSITIVE) * self.factor
    }

    /// True if *any* consecutive pair in the history tripped the flag.
    #[must_use]
    pub fn ever_flagged(&self) -> bool {
        self.history
            .windows(2)
            .any(|w| w[1] > w[0].max(f64::MIN_POSITIVE) * self.factor)
    }

    /// The clipping bit depth suggested by the observed history: enough bits
    /// to represent the largest bound seen, i.e. `ceil(log2(max + 1))`,
    /// clamped into `1..=52`. Returns `None` before any round.
    #[must_use]
    pub fn suggested_bits(&self) -> Option<u32> {
        let max = self
            .history
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if max.is_finite() {
            Some(bits_for_magnitude(max))
        } else {
            None
        }
    }
}

/// The smallest bit depth whose clipping bound `2^b - 1` covers
/// `magnitude`, clamped into `1..=52`.
///
/// # Panics
/// Panics on negative or non-finite magnitudes.
#[must_use]
pub fn bits_for_magnitude(magnitude: f64) -> u32 {
    assert!(
        magnitude.is_finite() && magnitude >= 0.0,
        "magnitude must be finite and nonnegative"
    );
    let mut bits = 1u32;
    while bits < 52 && (((1u64 << bits) - 1) as f64) < magnitude {
        bits += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_bounds_do_not_flag() {
        let mut t = UpperBoundTracker::new(2.0);
        for b in [100.0, 105.0, 98.0, 110.0] {
            t.record_round(b);
        }
        assert!(!t.flagged());
        assert!(!t.ever_flagged());
        assert_eq!(t.latest(), Some(110.0));
        assert_eq!(t.rounds(), 4);
    }

    #[test]
    fn jump_flags() {
        let mut t = UpperBoundTracker::new(2.0);
        t.record_round(100.0);
        t.record_round(100.0);
        assert!(!t.flagged());
        t.record_round(1e6); // heavy-tail client appeared
        assert!(t.flagged());
        t.record_round(1e6); // stabilized again
        assert!(!t.flagged());
        assert!(t.ever_flagged());
    }

    #[test]
    fn single_round_never_flags() {
        let mut t = UpperBoundTracker::new(1.5);
        t.record_round(5.0);
        assert!(!t.flagged());
        assert_eq!(t.latest(), Some(5.0));
    }

    #[test]
    fn zero_previous_bound_flags_on_any_growth() {
        let mut t = UpperBoundTracker::new(2.0);
        t.record_round(0.0);
        t.record_round(1.0);
        assert!(t.flagged());
    }

    #[test]
    fn suggested_bits_covers_max() {
        let mut t = UpperBoundTracker::new(2.0);
        assert_eq!(t.suggested_bits(), None);
        t.record_round(200.0);
        assert_eq!(t.suggested_bits(), Some(8)); // 255 >= 200
        t.record_round(300.0);
        assert_eq!(t.suggested_bits(), Some(9));
    }

    #[test]
    fn bits_for_magnitude_boundaries() {
        assert_eq!(bits_for_magnitude(0.0), 1);
        assert_eq!(bits_for_magnitude(1.0), 1);
        assert_eq!(bits_for_magnitude(2.0), 2);
        assert_eq!(bits_for_magnitude(255.0), 8);
        assert_eq!(bits_for_magnitude(256.0), 9);
        assert_eq!(bits_for_magnitude(1e300), 52); // clamped
    }

    #[test]
    #[should_panic(expected = "factor must be > 1")]
    fn rejects_trivial_factor() {
        let _ = UpperBoundTracker::new(1.0);
    }
}
