//! Federated feature normalization.
//!
//! "Having estimates of the mean and the variance immediately enables
//! *feature normalization* in federated learning" (Section 3.4). This
//! module packages that use case: estimate a feature's mean and standard
//! deviation privately, then normalize values *client-side* — the raw
//! feature never leaves the device at full precision.

use fednum_ldp::MeanMechanism;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::variance::VarianceViaCentered;

/// A fitted normalizer: `z = (x - mean) / std`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureNormalizer {
    /// Estimated feature mean.
    pub mean: f64,
    /// Estimated feature standard deviation (floored at a small positive
    /// value so constant features normalize to 0 instead of dividing by 0).
    pub std: f64,
}

impl FeatureNormalizer {
    /// Minimum standard deviation used in the denominator.
    pub const STD_FLOOR: f64 = 1e-9;

    /// Fits a normalizer by federated estimation: the mean from
    /// `mean_est`, the variance by the centered reduction of Lemma 3.5
    /// (`mean_est` doubles as the pilot, `dev_est` estimates the squared
    /// deviations; its codec must span the squared-deviation domain).
    ///
    /// # Panics
    /// Panics if fewer than two clients.
    pub fn fit<M, D>(values: &[f64], mean_est: &M, dev_est: &D, rng: &mut dyn Rng) -> Self
    where
        M: MeanMechanism + Clone,
        D: MeanMechanism + Clone,
    {
        assert!(values.len() >= 2, "need at least two clients");
        let mean = mean_est.estimate_mean(values, rng);
        let variance = VarianceViaCentered::new(mean_est.clone(), dev_est.clone())
            .estimate_variance(values, rng);
        Self {
            mean,
            std: variance.sqrt().max(Self::STD_FLOOR),
        }
    }

    /// Builds a normalizer from known statistics (e.g. a previous round's
    /// fit, broadcast to clients).
    ///
    /// # Panics
    /// Panics on non-finite statistics or negative std.
    #[must_use]
    pub fn from_stats(mean: f64, std: f64) -> Self {
        assert!(mean.is_finite() && std.is_finite() && std >= 0.0);
        Self {
            mean,
            std: std.max(Self::STD_FLOOR),
        }
    }

    /// Client-side normalization.
    #[must_use]
    pub fn normalize(&self, x: f64) -> f64 {
        (x - self.mean) / self.std
    }

    /// Inverse transform.
    #[must_use]
    pub fn denormalize(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }

    /// Normalizes a whole column.
    #[must_use]
    pub fn normalize_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&x| self.normalize(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::FixedPointCodec;
    use crate::protocol::basic::{BasicBitPushing, BasicConfig};
    use crate::sampling::BitSampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bitpush(bits: u32) -> BasicBitPushing {
        BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, 1.0),
        ))
    }

    #[test]
    fn fit_recovers_population_statistics() {
        // Values in [100, 300): mean 199.5, std ≈ 57.7.
        let values: Vec<f64> = (0..60_000).map(|i| 100.0 + (i % 200) as f64).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        let mut rng = StdRng::seed_from_u64(1);
        // Deviations² ≤ 100² → 14 bits.
        let norm = FeatureNormalizer::fit(&values, &bitpush(9), &bitpush(14), &mut rng);
        assert!((norm.mean / mean - 1.0).abs() < 0.03, "mean {}", norm.mean);
        assert!(
            (norm.std / var.sqrt() - 1.0).abs() < 0.1,
            "std {} vs {}",
            norm.std,
            var.sqrt()
        );
    }

    #[test]
    fn normalized_column_is_standardized() {
        let values: Vec<f64> = (0..40_000).map(|i| 50.0 + (i % 100) as f64).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let norm = FeatureNormalizer::fit(&values, &bitpush(8), &bitpush(12), &mut rng);
        let z = norm.normalize_all(&values);
        let zm = z.iter().sum::<f64>() / z.len() as f64;
        let zv = z.iter().map(|v| (v - zm).powi(2)).sum::<f64>() / z.len() as f64;
        assert!(zm.abs() < 0.1, "normalized mean {zm}");
        assert!((zv - 1.0).abs() < 0.2, "normalized var {zv}");
    }

    #[test]
    fn round_trips() {
        let norm = FeatureNormalizer::from_stats(10.0, 2.0);
        for x in [0.0, 10.0, 13.5, -4.0] {
            assert!((norm.denormalize(norm.normalize(x)) - x).abs() < 1e-12);
        }
        assert_eq!(norm.normalize(12.0), 1.0);
    }

    #[test]
    fn constant_feature_does_not_divide_by_zero() {
        let norm = FeatureNormalizer::from_stats(5.0, 0.0);
        let z = norm.normalize(5.0);
        assert!(z.is_finite());
        assert_eq!(z, 0.0);
    }
}
