//! Property tests for the streaming frame codec (ISSUE satellite: the
//! incremental [`FrameDecoder`] must be byte-for-byte equivalent to the
//! blocking one-shot reader no matter how the TCP stack slices the stream).
//!
//! Invariants pinned here:
//! * feeding the concatenated stream in arbitrary split/partial/coalesced
//!   chunks yields exactly the frames `read_frame` yields from the whole
//!   buffer, in order;
//! * chunk boundaries may straddle varint headers and payloads freely;
//! * a trailing partial frame is held back (never emitted truncated) and
//!   `pending()` accounts for every unconsumed byte;
//! * an oversized length prefix fails closed on both paths.

use fednum_core::wire::{read_frame, write_frame, FrameDecoder, MAX_FRAME_LEN};
use proptest::prelude::*;

/// Encodes `frames` into one contiguous wire stream.
fn encode_stream(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for f in frames {
        write_frame(&mut stream, f).expect("frames under MAX_FRAME_LEN always encode");
    }
    stream
}

/// Decodes every frame from `stream` with the blocking one-shot reader.
fn oneshot_decode(stream: &[u8]) -> Vec<Vec<u8>> {
    let mut cursor = std::io::Cursor::new(stream);
    let mut out = Vec::new();
    while let Some(frame) = read_frame(&mut cursor).expect("well-formed stream") {
        out.push(frame);
    }
    out
}

/// Splits `stream` at the given cut points (interpreted modulo the stream
/// length, deduplicated, sorted) and feeds each piece to the decoder,
/// draining complete frames after every feed.
fn streaming_decode(stream: &[u8], cuts: &[usize]) -> (Vec<Vec<u8>>, usize) {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|c| {
            if stream.is_empty() {
                0
            } else {
                c % stream.len()
            }
        })
        .collect();
    points.push(0);
    points.push(stream.len());
    points.sort_unstable();
    points.dedup();

    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    for pair in points.windows(2) {
        dec.feed(&stream[pair[0]..pair[1]]);
        while let Some(frame) = dec.next_frame().expect("well-formed stream") {
            out.push(frame);
        }
    }
    (out, dec.pending())
}

/// Arbitrary frame payloads: sizes span the interesting varint-header
/// widths (0, 1-byte, and 2-byte length prefixes).
fn frames_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Split/partial/coalesced feeds are invisible: the incremental decoder
    /// emits exactly the one-shot reader's frames, in order, with nothing
    /// left pending once the stream is fully consumed.
    #[test]
    fn chunked_decode_matches_oneshot(
        frames in frames_strategy(),
        cuts in prop::collection::vec(any::<usize>(), 0..24),
    ) {
        let stream = encode_stream(&frames);
        let expected = oneshot_decode(&stream);
        prop_assert_eq!(&expected, &frames);

        let (got, pending) = streaming_decode(&stream, &cuts);
        prop_assert_eq!(got, expected);
        prop_assert_eq!(pending, 0);
    }

    /// Degenerate chunking — one byte at a time — still reproduces the
    /// one-shot decode even though every header and payload straddles
    /// chunk boundaries.
    #[test]
    fn byte_at_a_time_matches_oneshot(frames in frames_strategy()) {
        let stream = encode_stream(&frames);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for byte in &stream {
            dec.feed(std::slice::from_ref(byte));
            while let Some(frame) = dec.next_frame().expect("well-formed stream") {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, oneshot_decode(&stream));
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A truncated tail is held back, never emitted as a short frame, and
    /// `pending()` accounts for every byte of it.
    #[test]
    fn truncated_tail_is_withheld(
        frames in frames_strategy(),
        tail in prop::collection::vec(any::<u8>(), 1..200),
        cuts in prop::collection::vec(any::<usize>(), 0..24),
    ) {
        let mut stream = encode_stream(&frames);
        // A partial frame: full header promising more bytes than we send.
        let mut partial = Vec::new();
        write_frame(&mut partial, &vec![0xAB; tail.len() + 1]).unwrap();
        partial.truncate(partial.len() - 1);
        stream.extend_from_slice(&partial);

        let (got, pending) = streaming_decode(&stream, &cuts);
        prop_assert_eq!(got, frames);
        prop_assert_eq!(pending, partial.len());
    }

    /// Fail-closed length bound: a header advertising more than
    /// MAX_FRAME_LEN errors on both decode paths instead of allocating.
    #[test]
    fn oversized_length_prefix_fails_closed(excess in 1u64..1_000_000) {
        let bogus = MAX_FRAME_LEN as u64 + excess;
        let mut header = Vec::new();
        let mut v = bogus;
        while v >= 0x80 {
            header.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        header.push(v as u8);

        let mut dec = FrameDecoder::new();
        dec.feed(&header);
        prop_assert!(dec.next_frame().is_err());

        let mut cursor = std::io::Cursor::new(header);
        prop_assert!(read_frame(&mut cursor).is_err());
    }
}
