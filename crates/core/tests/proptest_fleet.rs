//! Property tests for the fleet control frames (ISSUE satellite: the
//! rendezvous/heartbeat/cohort wire frames must satisfy the same codec
//! contract the campaign frames do).
//!
//! Invariants pinned here:
//! * encode → decode reproduces every frame exactly, for every variant;
//! * the encoding is canonical: decode → re-encode yields the same bytes,
//!   and `encoded_len` agrees with the actual encoding (the fleet traffic
//!   ledger depends on this);
//! * `decode_from` consumes exactly the frame and leaves trailing bytes,
//!   while strict `decode` rejects them — independent of what follows;
//! * every strict prefix of a valid encoding fails typed;
//! * arbitrary bytes never panic the decoder — they fail typed.
//!
//! The vendored proptest has no combinators (`prop_map`, `option::of`),
//! so strategies generate raw primitives and the bodies assemble them.

use fednum_core::wire::{FleetMessage, WireError};
use proptest::prelude::*;

/// Builds one frame from raw material: `kind` selects the variant, the
/// integers fill its fields (truncated to each field's width).
fn build_fleet(kind: u8, a: u64, b: u64, c: u64, d: u64, flag: bool) -> FleetMessage {
    match kind % 11 {
        0 => FleetMessage::Rendezvous {
            client_id: a,
            capabilities: b,
        },
        1 => FleetMessage::RendezvousAck {
            session_token: a,
            heartbeat_ms: b,
            liveness_ms: c,
        },
        2 => FleetMessage::Heartbeat {
            session_token: a,
            seq: b,
        },
        3 => FleetMessage::HeartbeatAck { seq: a },
        4 => FleetMessage::CohortAssign {
            round: a,
            bit_index: b as u32,
            bits: c as u32,
            value_seed: d,
            deadline_ms: c,
        },
        5 => FleetMessage::CohortWait {
            round: a,
            retry_ms: b,
        },
        6 => FleetMessage::Report {
            session_token: a,
            round: b,
            bit_index: c as u32,
            bit: flag,
        },
        7 => FleetMessage::ReportAck { round: a },
        8 => FleetMessage::Done { rounds: a },
        9 => FleetMessage::Resume {
            client_id: a,
            session_token: b,
            report_nonce: c,
        },
        10 => FleetMessage::Busy { retry_after_ms: a },
        _ => FleetMessage::DoneAck { session_token: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fleet_frames_round_trip_canonically(
        kind in 0u8..12,
        fields in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        flag in any::<bool>(),
    ) {
        let msg = build_fleet(kind, fields.0, fields.1, fields.2, fields.3, flag);
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        let decoded = FleetMessage::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, msg);
        // Canonical: re-encoding the decoded frame reproduces the bytes.
        prop_assert_eq!(decoded.encode(), bytes);
        // Direction classification survives the codec.
        prop_assert_eq!(decoded.is_uplink(), msg.is_uplink());
    }

    #[test]
    fn fleet_decode_from_is_order_independent_of_trailing_bytes(
        kind in 0u8..12,
        fields in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        flag in any::<bool>(),
        trailer in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        // Whatever bytes follow a frame — another frame, garbage, nothing —
        // `decode_from` consumes exactly the frame and no more.
        let msg = build_fleet(kind, fields.0, fields.1, fields.2, fields.3, flag);
        let bytes = msg.encode();
        let mut framed = bytes.clone();
        framed.extend_from_slice(&trailer);
        let mut pos = 0;
        let decoded = FleetMessage::decode_from(&framed, &mut pos).expect("decodes embedded");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(pos, bytes.len());
        if !trailer.is_empty() {
            prop_assert_eq!(FleetMessage::decode(&framed), Err(WireError::TrailingBytes));
        }
    }

    #[test]
    fn truncated_fleet_frames_fail_typed(
        kind in 0u8..12,
        fields in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        flag in any::<bool>(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = build_fleet(kind, fields.0, fields.1, fields.2, fields.3, flag);
        let bytes = msg.encode();
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(FleetMessage::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn hostile_bytes_fail_typed_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        // May succeed on lucky bytes; must never panic. When it fails, the
        // error is one of the typed codec errors.
        if let Err(e) = FleetMessage::decode(&bytes) {
            prop_assert!(matches!(
                e,
                WireError::Truncated
                    | WireError::VarintOverflow
                    | WireError::TrailingBytes
                    | WireError::UnknownTag(_)
                    | WireError::InvalidField(_)
            ));
        }
    }
}
