//! Property tests for the shuffle-tier control frames (ISSUE satellite:
//! the submit/batch wire frames must satisfy the same codec contract the
//! campaign and fleet frames do).
//!
//! Invariants pinned here:
//! * encode → decode reproduces every frame exactly, for both variants;
//! * the encoding is canonical: decode → re-encode yields the same bytes,
//!   and `encoded_len` agrees with the actual encoding (the shuffle
//!   traffic ledger depends on this);
//! * a batch's encoded length is independent of entry order — the
//!   permutation-invariance contract: whatever seed shuffled the wave,
//!   the coordinator's traffic ledger charges the same bytes;
//! * `decode_from` consumes exactly the frame and leaves trailing bytes,
//!   while strict `decode` rejects them;
//! * every strict prefix of a valid encoding fails typed;
//! * arbitrary bytes never panic the decoder — they fail typed.
//!
//! The vendored proptest has no combinators (`prop_map`, `option::of`),
//! so strategies generate raw primitives and the bodies assemble them.

use fednum_core::wire::{ShuffleMessage, WireError};
use proptest::prelude::*;

/// Builds one frame from raw material: `kind` selects the variant, the raw
/// bytes become batch entries (low bit = report bit, high bits = index).
fn build_shuffle(kind: u8, round_id: u64, index: u8, flag: bool, raw: &[u8]) -> ShuffleMessage {
    if kind.is_multiple_of(2) {
        ShuffleMessage::Submit {
            round_id,
            bit_index: index,
            bit: flag,
        }
    } else {
        ShuffleMessage::Batch {
            round_id,
            entries: raw.iter().map(|b| (b >> 1, b & 1 == 1)).collect(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn shuffle_frames_round_trip_canonically(
        kind in 0u8..2,
        round_id in any::<u64>(),
        index in any::<u8>(),
        flag in any::<bool>(),
        raw in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let msg = build_shuffle(kind, round_id, index, flag, &raw);
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        let decoded = ShuffleMessage::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &msg);
        // Canonical: re-encoding the decoded frame reproduces the bytes.
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn batch_encoded_length_is_order_independent(
        round_id in any::<u64>(),
        raw in proptest::collection::vec(any::<u8>(), 0..64),
        rotation in any::<usize>(),
    ) {
        // Same multiset of entries in two different orders: identical
        // encoded length (and identical bytes up to entry order). This is
        // what makes the per-phase traffic ledger bit-identical across
        // permutation seeds.
        let entries: Vec<(u8, bool)> = raw.iter().map(|b| (b >> 1, b & 1 == 1)).collect();
        let mut rotated = entries.clone();
        if !rotated.is_empty() {
            let mid = rotation % rotated.len();
            rotated.rotate_left(mid);
        }
        let forward = ShuffleMessage::Batch { round_id, entries };
        let shuffled = ShuffleMessage::Batch { round_id, entries: rotated };
        prop_assert_eq!(forward.encoded_len(), shuffled.encoded_len());
        prop_assert_eq!(forward.encode().len(), shuffled.encode().len());
    }

    #[test]
    fn shuffle_decode_from_is_order_independent_of_trailing_bytes(
        kind in 0u8..2,
        round_id in any::<u64>(),
        index in any::<u8>(),
        flag in any::<bool>(),
        raw in proptest::collection::vec(any::<u8>(), 0..32),
        trailer in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        // Whatever bytes follow a frame — another frame, garbage, nothing —
        // `decode_from` consumes exactly the frame and no more.
        let msg = build_shuffle(kind, round_id, index, flag, &raw);
        let bytes = msg.encode();
        let mut framed = bytes.clone();
        framed.extend_from_slice(&trailer);
        let mut pos = 0;
        let decoded = ShuffleMessage::decode_from(&framed, &mut pos).expect("decodes embedded");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(pos, bytes.len());
        if !trailer.is_empty() {
            prop_assert_eq!(ShuffleMessage::decode(&framed), Err(WireError::TrailingBytes));
        }
    }

    #[test]
    fn truncated_shuffle_frames_fail_typed(
        kind in 0u8..2,
        round_id in any::<u64>(),
        index in any::<u8>(),
        flag in any::<bool>(),
        raw in proptest::collection::vec(any::<u8>(), 0..32),
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = build_shuffle(kind, round_id, index, flag, &raw);
        let bytes = msg.encode();
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(ShuffleMessage::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn hostile_bytes_fail_typed_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        // May succeed on lucky bytes; must never panic. When it fails, the
        // error is one of the typed codec errors.
        if let Err(e) = ShuffleMessage::decode(&bytes) {
            prop_assert!(matches!(
                e,
                WireError::Truncated
                    | WireError::VarintOverflow
                    | WireError::TrailingBytes
                    | WireError::UnknownTag(_)
                    | WireError::InvalidField(_)
            ));
        }
    }
}
