//! Property tests on the bit-pushing protocols and supporting machinery.

use fednum_core::encoding::FixedPointCodec;
use fednum_core::privacy::RandomizedResponse;
use fednum_core::protocol::adaptive::{AdaptiveBitPushing, AdaptiveConfig};
use fednum_core::protocol::basic::{BasicBitPushing, BasicConfig};
use fednum_core::quantile::{QuantileConfig, QuantileEstimator};
use fednum_core::sampling::BitSampling;
use fednum_core::wire::ReportMessage;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The one-bit invariant: report count equals client count, for any
    /// population, sampling exponent, and assignment mode.
    #[test]
    fn one_report_per_client(
        n in 1usize..2000,
        gamma in 0.0f64..2.0,
        seed in any::<u64>(),
        local in any::<bool>(),
    ) {
        use fednum_core::sampling::AssignmentMode;
        let mode = if local { AssignmentMode::Local } else { AssignmentMode::CentralQmc };
        let protocol = BasicBitPushing::new(
            BasicConfig::new(FixedPointCodec::integer(10), BitSampling::geometric(10, gamma))
                .with_assignment(mode),
        );
        let values: Vec<f64> = (0..n).map(|i| (i % 700) as f64).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = protocol.run(&values, &mut rng);
        prop_assert_eq!(out.accumulator.total_reports(), n as u64);
    }

    /// The estimate is always within the decodable range (no amplification
    /// beyond the domain), privacy off.
    #[test]
    fn estimate_within_domain(n in 2usize..800, seed in any::<u64>(), hi in 1u64..4000) {
        let protocol = BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::integer(12),
            BitSampling::uniform(12),
        ));
        let values: Vec<f64> = (0..n).map(|i| (i as u64 % hi.max(1)) as f64).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = protocol.run(&values, &mut rng);
        prop_assert!(out.estimate >= 0.0);
        prop_assert!(out.estimate <= 4095.0 + 1e-9);
    }

    /// Adaptive never sends more total reports than clients, and pools
    /// exactly the two rounds.
    #[test]
    fn adaptive_report_budget(n in 8usize..1500, delta in 0.1f64..0.9, seed in any::<u64>()) {
        let protocol = AdaptiveBitPushing::new(
            AdaptiveConfig::new(FixedPointCodec::integer(8)).with_delta(delta),
        );
        let values: Vec<f64> = (0..n).map(|i| (i % 200) as f64).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = protocol.run(&values, &mut rng);
        let total = out.round1.accumulator.total_reports()
            + out.round2.accumulator.total_reports();
        prop_assert_eq!(total, n as u64);
    }

    /// Quantile bracket always contains a value whose empirical rank is
    /// near q, and the bracket never inverts.
    #[test]
    fn quantile_bracket_sane(
        q in 0.05f64..0.95,
        seed in any::<u64>(),
        spread in 10u64..1000,
    ) {
        let values: Vec<f64> = (0..20_000).map(|i| (i as u64 % spread) as f64).collect();
        let est = QuantileEstimator::new(QuantileConfig::new(FixedPointCodec::integer(10), q));
        let mut rng = StdRng::seed_from_u64(seed);
        let out = est.run(&values, &mut rng);
        prop_assert!(out.bracket.0 <= out.bracket.1);
        prop_assert!(out.estimate >= 0.0 && out.estimate <= 1023.0);
        // Rank check with generous sampling slack.
        let below = values.iter().filter(|&&v| v <= out.estimate).count() as f64
            / values.len() as f64;
        prop_assert!((below - q).abs() < 0.15, "rank {below} target {q}");
    }

    /// Debiased DP estimates stay unbiased for arbitrary ε: averaging many
    /// debiased flips of a fixed bit recovers the bit.
    #[test]
    fn rr_protocol_debias_centers(eps in 0.3f64..6.0, bit in any::<bool>(), seed in any::<u64>()) {
        let rr = RandomizedResponse::from_epsilon(eps);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 60_000;
        let mean: f64 = (0..n)
            .map(|_| rr.debias(rr.flip(bit, &mut rng)))
            .sum::<f64>() / f64::from(n);
        let target = f64::from(u8::from(bit));
        // Tolerance scales with the RR noise at this ε.
        let tol = 6.0 * (rr.fixed_bit_variance() / f64::from(n)).sqrt() + 0.01;
        prop_assert!((mean - target).abs() < tol, "mean {mean} target {target} tol {tol}");
    }

    /// Wire format: arbitrary messages round-trip.
    #[test]
    fn wire_round_trip(
        task_id in any::<u64>(),
        reports in prop::collection::vec((any::<u8>(), any::<bool>()), 0..64),
    ) {
        let msg = ReportMessage { task_id, reports };
        prop_assert_eq!(ReportMessage::decode(&msg.encode()).unwrap(), msg);
    }

    /// Codec + protocol: clipping never produces an estimate above the
    /// clip bound even for wildly out-of-range inputs.
    #[test]
    fn clipping_is_a_hard_ceiling(seed in any::<u64>(), scale in 1.0f64..1e9) {
        let protocol = BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::integer(8),
            BitSampling::uniform(8),
        ));
        let values: Vec<f64> = (0..500).map(|i| i as f64 * scale).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = protocol.run(&values, &mut rng);
        prop_assert!(out.estimate <= 255.0 + 1e-9);
        prop_assert!(out.clip_fraction > 0.0 || scale < 1.0);
    }
}
