//! Property tests for cross-round ledger serialization (ISSUE satellite:
//! `PrivacyLedger` and `BudgetExceeded` must round-trip through the
//! `core::wire` codec with **identical balances**, and the encoding must
//! be canonical so ledger digests are comparable across processes).
//!
//! Invariants pinned here:
//! * encode → decode reproduces every client account exactly (bits, ε
//!   bit-pattern, last charged round) and the budget;
//! * the encoding is canonical: decode → re-encode yields the same bytes,
//!   and charge arrival order does not change them;
//! * `CampaignMessage` and `BudgetExceeded` survive the codec exactly;
//! * arbitrary bytes never panic any of the decoders — they fail typed.
//!
//! The vendored proptest has no combinators (`prop_map`, `option::of`),
//! so strategies generate raw primitives and the bodies assemble them.

use fednum_core::privacy::durable::LedgerRecord;
use fednum_core::privacy::{BudgetExceeded, PrivacyBudget, PrivacyLedger};
use fednum_core::wire::CampaignMessage;
use proptest::prelude::*;

/// One client's history: (client id, per-round charges).
type Charges = Vec<(u64, Vec<(u64, f64)>)>;

fn charges_strategy() -> impl Strategy<Value = Charges> {
    proptest::collection::vec(
        (
            0u64..50,
            proptest::collection::vec((0u64..1000, 0.0f64..4.0), 0..6),
        ),
        0..20,
    )
}

/// Raw material for `Option<PrivacyBudget>`: `kind` 0 = no budget,
/// 1 = ε-only, 2 = bits + ε. Bounds are generous so the strategy's
/// charges always fit.
fn build_budget(kind: u8, max_bits: u64, max_epsilon: f64) -> Option<PrivacyBudget> {
    match kind {
        0 => None,
        1 => Some(PrivacyBudget {
            max_bits: None,
            max_epsilon: Some(max_epsilon),
        }),
        _ => Some(PrivacyBudget {
            max_bits: Some(max_bits),
            max_epsilon: Some(max_epsilon),
        }),
    }
}

/// Builds a ledger by applying `charges` in the given order; rounds are
/// assigned sequentially per client so `charge_round` never rejects for
/// cooldown reasons.
fn build_ledger(budget: &Option<PrivacyBudget>, charges: &Charges) -> PrivacyLedger {
    let mut ledger = match budget {
        Some(b) => PrivacyLedger::with_budget(*b),
        None => PrivacyLedger::new(),
    };
    for (client, rounds) in charges {
        for (i, &(bits, epsilon)) in rounds.iter().enumerate() {
            // Budgets in the strategy are generous; a rejected charge is
            // simply skipped (the invariant under test is serialization,
            // not admission).
            let _ = ledger.charge_round(*client, i as u64, bits, epsilon);
        }
    }
    ledger
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ledger_round_trips_with_identical_balances(
        budget_raw in (0u8..3, 1_000_000u64..u64::MAX, 1e3f64..1e9),
        charges in charges_strategy(),
    ) {
        let budget = build_budget(budget_raw.0, budget_raw.1, budget_raw.2);
        let ledger = build_ledger(&budget, &charges);
        let bytes = ledger.encode();
        let decoded = PrivacyLedger::decode(&bytes).expect("own encoding decodes");

        prop_assert_eq!(decoded.clients(), ledger.clients());
        prop_assert_eq!(decoded.budget(), ledger.budget());
        for (client, account) in ledger.accounts() {
            let got = decoded.account(client);
            prop_assert_eq!(got.bits, account.bits, "client {} bits", client);
            prop_assert_eq!(
                got.epsilon.to_bits(),
                account.epsilon.to_bits(),
                "client {} epsilon bit-pattern", client
            );
            prop_assert_eq!(got.last_round, account.last_round, "client {}", client);
        }
        // Canonical: re-encoding the decoded ledger reproduces the bytes,
        // so digests computed in different processes are comparable.
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn charge_order_does_not_change_the_encoding(
        budget_raw in (0u8..3, 1_000_000u64..u64::MAX, 1e3f64..1e9),
        charges in charges_strategy(),
    ) {
        // Only valid when client ids are unique across entries —
        // duplicate entries genuinely interleave differently.
        let mut ids: Vec<u64> = charges.iter().map(|(c, _)| *c).collect();
        ids.sort_unstable();
        prop_assume!(ids.windows(2).all(|w| w[0] != w[1]));
        let budget = build_budget(budget_raw.0, budget_raw.1, budget_raw.2);
        let forward = build_ledger(&budget, &charges);
        let mut reversed_input = charges.clone();
        reversed_input.reverse();
        let reversed = build_ledger(&budget, &reversed_input);
        prop_assert_eq!(forward.encode(), reversed.encode());
    }

    #[test]
    fn budget_exceeded_round_trips_exactly(
        client in any::<u64>(),
        bits_spent in any::<u64>(),
        epsilon_spent in 0.0f64..1e12,
    ) {
        let err = BudgetExceeded { client, bits_spent, epsilon_spent };
        let decoded = BudgetExceeded::decode(&err.encode()).expect("decodes");
        prop_assert_eq!(decoded.client, err.client);
        prop_assert_eq!(decoded.bits_spent, err.bits_spent);
        prop_assert_eq!(decoded.epsilon_spent.to_bits(), err.epsilon_spent.to_bits());
    }

    #[test]
    fn campaign_message_round_trips_exactly(
        ids in (any::<u64>(), any::<u64>(), 0u64..100, any::<u64>()),
        limits in (any::<bool>(), any::<u64>(), any::<bool>(), 0.0f64..1e9),
        epsilon_per_round in 0.0f64..100.0,
    ) {
        let msg = CampaignMessage {
            campaign_id: ids.0,
            round_index: ids.1,
            cooldown_rounds: ids.2,
            bits_per_round: ids.3,
            max_bits: limits.0.then_some(limits.1),
            max_epsilon: limits.2.then_some(limits.3),
            epsilon_per_round,
        };
        let decoded = CampaignMessage::decode(&msg.encode()).expect("decodes");
        prop_assert_eq!(decoded, msg);
        prop_assert!(decoded.policy_matches(&msg));
    }

    #[test]
    fn hostile_bytes_fail_typed_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Any of these may succeed on lucky bytes; none may panic.
        let _ = PrivacyLedger::decode(&bytes);
        let _ = BudgetExceeded::decode(&bytes);
        let _ = CampaignMessage::decode(&bytes);
        let _ = LedgerRecord::decode(&bytes);
    }

    #[test]
    fn truncated_ledger_encodings_fail_typed(
        budget_raw in (0u8..3, 1_000_000u64..u64::MAX, 1e3f64..1e9),
        charges in charges_strategy(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let budget = build_budget(budget_raw.0, budget_raw.1, budget_raw.2);
        let ledger = build_ledger(&budget, &charges);
        let bytes = ledger.encode();
        prop_assume!(bytes.len() > 1);
        let cut = 1 + ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(PrivacyLedger::decode(&bytes[..cut]).is_err());
    }
}
