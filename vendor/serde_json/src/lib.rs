//! Offline vendored `serde_json` stand-in: renders and parses the
//! [`serde::Value`] tree used by the workspace's vendored serde.
//!
//! Output matches upstream's conventions where the workspace depends on them:
//! compact (`to_string`) and 2-space-indented (`to_string_pretty`) forms,
//! floats printed via Rust's shortest round-trip `Display`, and non-finite
//! floats rendered as `null` (upstream errors on those; the stand-in keeps
//! statistical tables total instead).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into a deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a raw [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display is the shortest representation that parses
                // back to the same f64; integral floats print without a dot
                // and re-enter as integers, which float deserialization
                // accepts.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Handle UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 leaves pos past the digits; skip the
                            // outer `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<f64>("-2.25e2").unwrap(), -225.0);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\tπ \\ end".to_string();
        let j = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let j = to_string(&v).unwrap();
        assert_eq!(j, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&j).unwrap(), v);

        let opt: Vec<Option<f64>> = vec![Some(1.0), None];
        let j = to_string(&opt).unwrap();
        assert_eq!(j, "[1,null]");
        // Option<f64> absorbs null as None (checked before f64's NaN rule).
        assert_eq!(from_str::<Vec<Option<f64>>>(&j).unwrap(), opt);
    }

    #[test]
    fn pretty_output_shape() {
        let v: Vec<Vec<u64>> = vec![vec![1], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  [\n    1\n  ],\n  []\n]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<Vec<u64>>("[1] trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
