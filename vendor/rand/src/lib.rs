//! Minimal, dependency-free subset of the `rand` crate API, vendored so the
//! workspace builds in fully offline environments.
//!
//! Only the surface this workspace actually uses is provided:
//!
//! * [`Rng`] — the dyn-safe core trait (`next_u32` / `next_u64` /
//!   `fill_bytes`);
//! * [`RngExt`] — generic convenience methods (`random`, `random_bool`,
//!   `random_range`), blanket-implemented for every `Rng` including trait
//!   objects;
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64`;
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator (not the
//!   upstream ChaCha12; streams differ from upstream `rand`, which is fine
//!   for this workspace's seeded simulations);
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Determinism is part of the contract: the same seed always yields the same
//! stream, across runs and platforms.

/// Dyn-safe random number generator core.
pub trait Rng {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types samplable from the "standard" distribution: `u32`/`u64` uniform
/// over the full range, `f64` uniform in `[0, 1)`, `bool` fair.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard multiply-by-2^-53 scheme.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type the range produces.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer draw in `[0, span)` without modulo bias.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && (end as u64) == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Generic convenience methods over any [`Rng`], including `dyn Rng`.
pub trait RngExt: Rng {
    /// Draws a value from the standard distribution for `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 — the same
    /// expansion upstream `rand` uses, so small seeds still produce
    /// well-mixed states.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = sm.next().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*
    /// (Blackman–Vigna), 256-bit state, passes BigCrush. Not the upstream
    /// ChaCha12 `StdRng` — seeded streams differ from upstream `rand`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl Rng for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence utilities.

    use super::{uniform_below, Rng};

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 1e5;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn range_sampling_is_in_bounds_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 / 10_000.0 - 1.0).abs() < 0.05,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_object_safety() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let u: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&u));
        assert_eq!(dyn_rng.random_range(3..4u64), 3);
        assert!(!dyn_rng.random_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn inclusive_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw = [false; 3];
        for _ in 0..200 {
            saw[rng.random_range(0..=2usize)] = true;
        }
        assert!(saw.iter().all(|&s| s));
    }
}
