//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The workspace's serde stand-in (see `vendor/serde`) models serialization as
//! conversion to/from a `serde::Value` tree, so the derive only needs the
//! *shape* of a type — field names, variant names, payload arities — never the
//! field types (those resolve through trait dispatch at the use site). That
//! lets this crate parse the item with a small hand-written token walker
//! instead of depending on `syn`/`quote`, which the container cannot download.
//!
//! Supported: non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple, or struct-like; the `#[serde(skip)]` field
//! attribute (skip on serialize, `Default::default()` on deserialize).
//! Enums use serde's externally-tagged JSON representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// Consume any number of `#[...]` attributes at position `i`; returns whether
/// one of them was `#[serde(skip)]` (or any `serde(...)` list naming `skip`).
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        // Inner attributes (`#![...]`) cannot appear here; the next token is
        // always the bracket group.
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde"
                        && args
                            .stream()
                            .into_iter()
                            .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip"))
                    {
                        skip = true;
                    }
                }
                *i += 1;
            }
        }
    }
    skip
}

/// Consume `pub` / `pub(...)` visibility at position `i`.
fn eat_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Consume tokens until a comma at angle-bracket depth zero (used to skip a
/// type or a discriminant expression). Leaves `i` past the comma.
fn eat_until_top_level_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(g: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        eat_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        eat_until_top_level_comma(&toks, &mut i);
        out.push(Field { name, skip });
    }
    out
}

/// Number of comma-separated items in a tuple payload, ignoring commas nested
/// inside angle brackets (parenthesized/bracketed nesting is already opaque:
/// those arrive as single `Group` tokens).
fn tuple_arity(g: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1usize;
    let mut trailing_comma = false;
    for t in &toks {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(g: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < toks.len() {
        eat_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(pg)) if pg.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(tuple_arity(pg));
                i += 1;
                k
            }
            Some(TokenTree::Group(bg)) if bg.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Struct(parse_named_fields(bg));
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant and/or the separating comma.
        eat_until_top_level_comma(&toks, &mut i);
        out.push(Variant { name, kind });
    }
    out
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    eat_attrs(&toks, &mut i);
    eat_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported; `{name}` is generic");
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde derive: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

/// `{ let mut __fields = ...; push each non-skipped field; Value::Object }`
/// where each field value expression is produced by `access` (e.g. `&self.a`
/// for structs, the match binding for struct variants).
fn named_to_object(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut s = String::from(
        "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new(); ",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        s.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value({a})));",
            n = f.name,
            a = access(&f.name)
        ));
    }
    s.push_str(" ::serde::Value::Object(__fields) }");
    s
}

/// `{ a: field(__obj, "a")?, skipped: Default::default(), ... }`
fn named_from_object(fields: &[Field], ty_label: &str) -> String {
    let mut s = String::from("{ ");
    for f in fields {
        if f.skip {
            s.push_str(&format!("{}: ::std::default::Default::default(), ", f.name));
        } else {
            s.push_str(&format!(
                "{n}: ::serde::__private::field(__obj, \"{n}\", \"{ty_label}\")?, ",
                n = f.name
            ));
        }
    }
    s.push('}');
    s
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Shape::NamedStruct(fields) => named_to_object(fields, |f| format!("&self.{f}")),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(__f0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(::std::vec![{e}]))]),",
                            b = binds.join(", "),
                            e = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.clone())
                            .collect();
                        let obj = named_to_object(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b}, .. }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {obj})]),",
                            b = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("serde derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::UnitStruct => format!(
            "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             _ => ::std::result::Result::Err(::serde::DeError::invalid_type(\"null (unit \
             struct {name})\", __v)) }}"
        ),
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                .collect();
            format!(
                "{{ let __arr = ::serde::__private::as_array(__v, \"{name}\")?; \
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"wrong tuple arity for {name}\")); }} \
                 ::std::result::Result::Ok({name}({e})) }}",
                e = elems.join(", ")
            )
        }
        Shape::NamedStruct(fields) => format!(
            "{{ let __obj = ::serde::__private::as_object(__v, \"{name}\")?; \
             ::std::result::Result::Ok({name} {f}) }}",
            f = named_from_object(fields, &name)
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __arr = ::serde::__private::as_array(__inner, \
                             \"{name}::{vn}\")?; if __arr.len() != {n} {{ return \
                             ::std::result::Result::Err(::serde::DeError::custom(\
                             \"wrong payload arity for {name}::{vn}\")); }} \
                             ::std::result::Result::Ok({name}::{vn}({e})) }}",
                            e = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{ let __obj = ::serde::__private::as_object(__inner, \
                         \"{name}::{vn}\")?; ::std::result::Result::Ok({name}::{vn} {f}) }}",
                        f = named_from_object(fields, &format!("{name}::{vn}"))
                    )),
                }
            }
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, \"{name}\")) }}, \
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                 let (__tag, __inner) = (&__pairs[0].0, &__pairs[0].1); \
                 match __tag.as_str() {{ {data_arms} \
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, \"{name}\")) }} }}, \
                 _ => ::std::result::Result::Err(\
                 ::serde::DeError::invalid_type(\"externally tagged enum {name}\", __v)) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
    .parse()
    .expect("serde derive: generated Deserialize impl failed to parse")
}
