//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! This container has no registry access, so the workspace carries a minimal
//! stand-in that supports the idioms the benches use: `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. It runs a short calibrated timing loop and prints median ns/iter —
//! enough to compare kernels locally, with none of upstream's statistics,
//! plotting, or CLI machinery.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results accumulated for `CRITERION_JSON` output, shared across the
/// per-group `Criterion` instances of one bench binary.
static RESULTS: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

/// When the `CRITERION_JSON` environment variable names a path, append this
/// measurement and rewrite the file as a complete JSON array — the file is
/// valid after every benchmark, however many groups the binary runs.
fn record_json(id: &str, ns_per_iter: f64, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let mut results = RESULTS.lock().expect("criterion json lock");
    results.push((id.to_string(), ns_per_iter, iters));
    let mut out = String::from("[\n");
    for (i, (id, ns, it)) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"id\": \"{id}\", \"ns_per_iter\": {ns:.1}, \"iters\": {it}}}"
        ));
    }
    out.push_str("\n]\n");
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(&path, out);
}

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Total wall-clock spent in the measured closure across all sample runs.
    elapsed: Duration,
    /// Number of closure invocations that contributed to `elapsed`.
    iters: u64,
}

impl Bencher {
    /// Time `f` repeatedly: a warm-up phase sizes the batch so one sample
    /// takes a measurable slice of time, then several samples accumulate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: find a batch size that takes at least ~1ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Measurement: fixed number of samples at the calibrated batch size,
        // bounded by a total time budget so slow benches still terminate.
        let budget = Duration::from_millis(200);
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..32 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            spent += start.elapsed();
            iters += batch;
            if spent >= budget {
                break;
            }
        }
        self.elapsed = spent;
        self.iters = iters;
    }
}

/// Benchmark registry/driver; a far smaller cousin of upstream's type.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!("{id:<40} {ns_per_iter:>12.1} ns/iter ({} iters)", b.iters);
            record_json(id, ns_per_iter, b.iters);
        } else {
            println!("{id:<40} (no measurement)");
        }
        self
    }
}

/// Bundle benchmark functions into a single runner function, mirroring
/// upstream's plain `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
