//! Offline vendored proptest stand-in.
//!
//! This container has no registry access, so the workspace carries a minimal
//! replacement for the proptest API surface its suites use: the `proptest!`
//! macro (with `#![proptest_config(...)]`), `prop_assert*`/`prop_assume!`,
//! integer/float range strategies, `any::<T>()`, tuple strategies, the
//! `prop::collection::{vec, hash_set, btree_set}` constructors, and simple
//! `[class]{m,n}` string patterns.
//!
//! Deliberate divergences from upstream: no shrinking (a failing case prints
//! its full inputs instead of a minimized one) and a fixed per-test seed
//! derived from the test's module path (upstream defaults to OS entropy plus
//! a regression file). Every run is therefore deterministic; set
//! `PROPTEST_CASES` to scale case counts up or down.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Subset of upstream's config: only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; it is re-drawn, not failed.
        Reject(String),
        /// `prop_assert*` failed; the test panics with this message.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed from the test's identity and the case index, so each test has
        /// its own reproducible stream and each case is independent.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }
    }

    impl Rng for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    /// Case count after the `PROPTEST_CASES` environment override.
    pub fn effective_cases(configured: u32) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(configured),
            Err(_) => configured,
        }
    }

    /// Drive one property: draw cases until `cases` of them ran (rejections
    /// are re-drawn with a budget), panicking on the first failure with the
    /// generated inputs attached. Called by the `proptest!` expansion.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
    {
        let cases = effective_cases(config.cases);
        let mut runs: u32 = 0;
        let mut rejects: u32 = 0;
        let mut case_idx: u64 = 0;
        while runs < cases {
            if rejects > cases.saturating_mul(16).max(256) {
                panic!("proptest `{name}`: too many prop_assume! rejections ({rejects})");
            }
            let mut rng = TestRng::for_case(name, case_idx);
            case_idx += 1;
            let (result, inputs) = case(&mut rng);
            match result {
                Ok(()) => runs += 1,
                Err(TestCaseError::Reject(_)) => rejects += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest `{name}` failed at case #{}:\n    {msg}\n    inputs: {inputs}",
                    case_idx - 1
                ),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating one value of `Self::Value` per test case.
    /// Unlike upstream there is no value tree: no shrinking, just sampling.
    pub trait Strategy {
        type Value: fmt::Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// Marker returned by [`any`]; the `T`s it supports are the primitive
    /// impls below.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// `any::<T>()` — uniform over `T`'s whole domain.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any {
        ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }
        )*};
    }

    impl_any! {
        u8 => |rng| (rng.random::<u32>() & 0xFF) as u8;
        u16 => |rng| (rng.random::<u32>() & 0xFFFF) as u16;
        u32 => |rng| rng.random::<u32>();
        u64 => |rng| rng.random::<u64>();
        usize => |rng| rng.random::<u64>() as usize;
        i32 => |rng| rng.random::<u32>() as i32;
        i64 => |rng| rng.random::<u64>() as i64;
        bool => |rng| rng.random::<bool>();
        f64 => |rng| rng.random::<f64>();
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// String patterns: either a literal with no regex metacharacters, or a
    /// single character class with a bounded repetition, `[class]{m,n}`.
    /// Anything fancier panics so an unsupported pattern is caught loudly.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((alphabet, min, max)) = parse_class_repeat(self) {
                let len = rng.random_range(min..=max);
                (0..len)
                    .map(|_| alphabet[rng.random_range(0..alphabet.len())])
                    .collect()
            } else if !self.contains(['[', ']', '{', '}', '*', '+', '?', '|', '(', ')', '\\']) {
                (*self).to_string()
            } else {
                panic!("vendored proptest: unsupported string pattern `{self}`");
            }
        }
    }

    /// Parse `[a-z0_]{m,n}` into (alphabet, m, n).
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let rest = rest.strip_prefix('{')?;
        let bounds = rest.strip_suffix('}')?;
        let (min, max) = bounds.split_once(',')?;
        let (min, max): (usize, usize) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                for c in (lo as u32)..=(hi as u32) {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        (!alphabet.is_empty() && min <= max).then_some((alphabet, min, max))
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;
    use std::collections::{BTreeSet, HashSet};
    use std::fmt;
    use std::hash::Hash;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn hash_set<S: Strategy>(elem: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash + fmt::Debug,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.random_range(self.size.clone());
            let mut out = HashSet::new();
            // Duplicates don't grow the set; cap the attempts so a
            // low-entropy element strategy cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 50 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord + fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.random_range(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 50 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Upstream exposes strategy constructors under `proptest::prop`; mirror the
/// pieces the workspace uses.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current case (returns `Err(TestCaseError::Fail)` from the body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            __l, __r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            __l,
            __r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Discard the current case without failing (it is re-drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// The `proptest!` block: expands each `fn name(pat in strategy, ...) { .. }`
/// into a deterministic multi-case test driven by
/// [`test_runner::run_cases`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &($cfg),
                |__rng| {
                    let __vals = ($($crate::strategy::Strategy::generate(&($s), __rng),)+);
                    let __inputs = ::std::format!("{:?}", __vals);
                    let ($($p,)+) = __vals;
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            let _: () = $body;
                            ::std::result::Result::Ok(())
                        })();
                    (__result, __inputs)
                },
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            a in 3u32..10,
            b in 5u64..=9,
            x in -2.0f64..2.0,
            n in 1usize..4,
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((5..=9).contains(&b));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u64..100, 2..6),
            hs in prop::collection::hash_set("[a-z]{3,8}", 1..5),
            bs in prop::collection::btree_set(1u32..1000, 1..8),
            pair in (0u32..4, any::<bool>()),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!hs.is_empty() && hs.len() < 5);
            prop_assert!(hs.iter().all(|s| (3..=8).contains(&s.len())));
            prop_assert!(hs.iter().all(|s| s.chars().all(|c| c.is_ascii_lowercase())));
            prop_assert!(!bs.is_empty() && bs.len() < 8);
            prop_assert!(pair.0 < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Rejections re-draw instead of failing; equality macros fire.
        #[test]
        fn assume_and_eq_macros(mut a in 0u32..100, b in any::<u32>()) {
            prop_assume!(a != 1);
            a += 0;
            prop_assert_ne!(a, 1);
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 3..9);
        let a = s.generate(&mut TestRng::for_case("x", 7));
        let b = s.generate(&mut TestRng::for_case("x", 7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case #0")]
    fn failing_property_panics_with_inputs() {
        crate::proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(v in 0u64..10) {
                prop_assert!(v > 100, "v was {v}");
            }
        }
        always_fails();
    }
}
