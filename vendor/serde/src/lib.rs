//! Offline vendored serde stand-in.
//!
//! This container has no registry access, so the workspace carries a minimal
//! replacement for the serde API surface it uses. The model is deliberately
//! simpler than upstream's visitor architecture: serialization is conversion
//! to a [`Value`] tree (`Serialize::to_value`), deserialization is conversion
//! back (`Deserialize::from_value`), and `serde_json` renders/parses that
//! tree. The derive macros (`features = ["derive"]`, see `vendor/serde_derive`)
//! generate exactly those two methods from a type's shape.
//!
//! JSON-visible behavior matches upstream where the workspace depends on it:
//! externally tagged enums, structs as objects, integer-keyed maps with
//! stringified keys. One deliberate divergence: non-finite floats serialize to
//! `Null` and `Null` deserializes to `f64::NAN` (upstream errors), which keeps
//! round-trips of statistical tables total.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// A JSON-shaped value tree. Object entries preserve insertion order so
/// serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a message describing what failed to convert.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` for `{ty}`"))
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for enum `{ty}`"))
    }

    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        DeError(format!(
            "invalid type: expected {expected}, got {}",
            got.kind()
        ))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    _ => return Err(DeError::invalid_type(stringify!($t), v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        DeError::custom(format!("integer {u} out of range for i64"))
                    })?,
                    _ => return Err(DeError::invalid_type(stringify!($t), v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // Non-finite floats serialize to null; restore as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::invalid_type(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::invalid_type("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::invalid_type("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::invalid_type("single-character string", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::invalid_type("array", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::invalid_type("tuple array", v)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys must render as JSON object keys (strings) and parse back.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| {
                    DeError::custom(format!(
                        "invalid map key `{s}` for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output regardless of hash order.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::invalid_type("object", v)),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::invalid_type("object", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code
// ---------------------------------------------------------------------------

pub mod __private {
    use super::{DeError, Deserialize, Value};

    pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
        match v {
            Value::Object(pairs) => Ok(pairs),
            _ => Err(DeError::invalid_type(ty, v)),
        }
    }

    pub fn as_array<'v>(v: &'v Value, ty: &str) -> Result<&'v [Value], DeError> {
        match v {
            Value::Array(items) => Ok(items),
            _ => Err(DeError::invalid_type(ty, v)),
        }
    }

    /// Look up `key` in an object's pairs and deserialize it. A missing key
    /// deserializes from `Null`, so `Option` fields default to `None`; types
    /// that reject `Null` surface a missing-field error instead.
    pub fn field<T: Deserialize>(
        pairs: &[(String, Value)],
        key: &str,
        ty: &str,
    ) -> Result<T, DeError> {
        match pairs.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::from_value(v)
                .map_err(|e| DeError::custom(format!("field `{key}` of `{ty}`: {e}"))),
            None => T::from_value(&Value::Null).map_err(|_| DeError::missing_field(key, ty)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn nan_round_trips_via_null() {
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn option_and_missing_field() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        let a: Option<u64> =
            __private::field(__private::as_object(&obj, "T").unwrap(), "a", "T").unwrap();
        assert_eq!(a, Some(1));
        let b: Option<u64> =
            __private::field(__private::as_object(&obj, "T").unwrap(), "b", "T").unwrap();
        assert_eq!(b, None);
        let err: Result<u64, _> =
            __private::field(__private::as_object(&obj, "T").unwrap(), "b", "T");
        assert!(err.is_err());
    }

    #[test]
    fn maps_use_string_keys() {
        let mut m: HashMap<u64, u32> = HashMap::new();
        m.insert(10, 1);
        m.insert(2, 2);
        let v = m.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("10".into(), Value::UInt(1)),
                ("2".into(), Value::UInt(2)),
            ])
        );
        let back: HashMap<u64, u32> = HashMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
