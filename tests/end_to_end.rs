//! End-to-end integration tests spanning all crates: workloads → fedsim →
//! secagg → core → metrics.

use fednum::core::encoding::FixedPointCodec;
use fednum::core::privacy::{BitSquash, RandomizedResponse};
use fednum::core::protocol::adaptive::{AdaptiveBitPushing, AdaptiveConfig};
use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
use fednum::core::sampling::BitSampling;
use fednum::fedsim::round::{FederatedMeanConfig, SecAggSettings};
use fednum::fedsim::{DropoutModel, ElicitStrategy, LatencyModel, Population};
use fednum::metrics::{run_repetitions, Repetitions};
use fednum::workloads::{CensusAges, Dataset, Exponential, Normal, Sampler, Uniform};
use fednum::RoundBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn headline_claim_three_percent_nrmse_at_a_few_thousand_clients() {
    // Section 1.1: "gathering reports from a few thousand users is
    // sufficient to achieve a normalized RMSE of around 3% for a 10-bit
    // quantity, and ten thousand reports ensure that the error level is
    // comfortably below 1%".
    let dist = Uniform::new(0.0, 1000.0); // genuinely 10-bit data
    let nrmse_at = |n: usize| {
        let summary = run_repetitions(Repetitions::new(60, 0xC1A1), |seed| {
            let ds = Dataset::draw(&dist, n, seed);
            let adaptive =
                AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(10)));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            (adaptive.run(ds.values(), &mut rng).estimate, ds.mean())
        });
        summary.nrmse
    };
    let few_thousand = nrmse_at(3000);
    let ten_thousand = nrmse_at(10_000);
    assert!(
        few_thousand < 0.05,
        "3k clients should give a few percent NRMSE, got {few_thousand}"
    );
    assert!(
        ten_thousand < 0.01,
        "10k clients should be comfortably below 1%, got {ten_thousand}"
    );
}

#[test]
fn full_stack_census_survey_with_dp_and_secagg() {
    // The complete deployment pipeline on census ages.
    let ages = Dataset::draw(&CensusAges::new(), 30_000, 9);
    let truth = ages.mean();
    let protocol = BasicConfig::new(FixedPointCodec::integer(8), BitSampling::geometric(8, 2.0))
        .with_privacy(RandomizedResponse::from_epsilon(2.0))
        .with_squash(BitSquash::Absolute(0.05));
    let config = FederatedMeanConfig::new(protocol)
        .with_dropout(DropoutModel::phased(0.1, 0.05))
        .with_secagg(SecAggSettings {
            threshold_fraction: 0.5,
            ..SecAggSettings::default()
        })
        .with_latency(LatencyModel::typical_fleet());
    let out = RoundBuilder::new(config)
        .seed(17)
        .run(ages.values())
        .expect("round succeeds")
        .flat()
        .expect("flat round")
        .clone();
    assert!(
        (out.outcome.estimate - truth).abs() / truth < 0.2,
        "estimate {} vs truth {truth}",
        out.outcome.estimate
    );
    assert!(out.completion_time > 0.0);
    let secagg = out.secagg.expect("secagg enabled");
    assert!(secagg.contributors > 25_000);
    assert!(secagg.recovered_pairwise > 1_000); // ~10% of 30k dropped early
}

#[test]
fn multi_value_clients_sampling_semantics() {
    // Clients hold several observations; eliciting by sampling targets the
    // per-client mean.
    let mut rng = StdRng::seed_from_u64(3);
    let dist = Normal::new(200.0, 30.0);
    let clients = (0..5000u64)
        .map(|id| {
            let k = 1 + (id % 5) as usize;
            fednum::fedsim::Client::new(id, 0, dist.sample_n(&mut rng, k))
        })
        .collect();
    let population = Population::new(clients);
    let elicited = population.elicit(ElicitStrategy::Sample, &mut rng);
    let protocol = BasicBitPushing::new(BasicConfig::new(
        FixedPointCodec::integer(9),
        BitSampling::geometric(9, 1.0),
    ));
    let est = protocol.run(&elicited, &mut rng).estimate;
    let truth = population.per_client_mean();
    assert!(
        (est - truth).abs() / truth < 0.05,
        "est {est} truth {truth}"
    );
}

#[test]
fn adaptive_oblivious_to_bit_depth_weighted_is_not() {
    // Figures 1c/2c end-to-end: increase the declared depth from 10 to 18
    // with data fixed below 2^9.
    let dist = Exponential::new(1.0 / 150.0);
    let err_of = |bits: u32, adaptive: bool| {
        run_repetitions(Repetitions::new(40, 0xF1C), |seed| {
            let ds = Dataset::draw(&dist, 8_000, seed);
            let clipped: Vec<f64> = ds
                .values()
                .iter()
                .map(|v| v.min(((1u64 << bits) - 1) as f64))
                .collect();
            let truth = clipped.iter().sum::<f64>() / clipped.len() as f64;
            let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
            let est = if adaptive {
                AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(bits)))
                    .run(&clipped, &mut rng)
                    .estimate
            } else {
                BasicBitPushing::new(BasicConfig::new(
                    FixedPointCodec::integer(bits),
                    BitSampling::geometric(bits, 2.0),
                ))
                .run(&clipped, &mut rng)
                .estimate
            };
            (est, truth)
        })
        .nrmse
    };
    let adaptive_growth = err_of(18, true) / err_of(10, true);
    let weighted_growth = err_of(18, false) / err_of(10, false);
    assert!(
        weighted_growth > 2.0 * adaptive_growth,
        "weighted growth {weighted_growth} should dwarf adaptive growth {adaptive_growth}"
    );
}

#[test]
fn estimates_are_reproducible_across_identical_runs() {
    let ds = Dataset::draw(&Normal::new(300.0, 50.0), 5000, 1);
    let protocol = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(10)));
    let run = || {
        let mut rng = StdRng::seed_from_u64(55);
        protocol.run(ds.values(), &mut rng).estimate
    };
    assert_eq!(run(), run());
}

#[test]
fn one_bit_per_client_invariant_holds() {
    // The paper's headline worst-case guarantee: with b_send = 1, exactly
    // one bit report per responding client.
    let ds = Dataset::draw(&Uniform::new(0.0, 500.0), 7_000, 2);
    let protocol = BasicBitPushing::new(BasicConfig::new(
        FixedPointCodec::integer(9),
        BitSampling::geometric(9, 1.0),
    ));
    let mut rng = StdRng::seed_from_u64(5);
    let out = protocol.run(ds.values(), &mut rng);
    assert_eq!(out.accumulator.total_reports(), 7_000);
}
