//! Property-based tests on the workspace's core invariants.

use fednum::core::accumulator::BitAccumulator;
use fednum::core::bits::{bit_f64, exact_bit_means, reconstruct};
use fednum::core::encoding::FixedPointCodec;
use fednum::core::privacy::RandomizedResponse;
use fednum::core::sampling::BitSampling;
use fednum::ldp::ValueRange;
use fednum::secagg::field::{Fe, MODULUS};
use fednum::secagg::shamir::{reconstruct as shamir_reconstruct, share};
use fednum::BitPlanes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

proptest! {
    /// Codec: encode∘decode is the identity on representable integers.
    #[test]
    fn codec_round_trips_integers(bits in 1u32..=32, v in 0u64..=u32::MAX as u64) {
        let codec = FixedPointCodec::integer(bits);
        let v = v & codec.max_encoded();
        prop_assert_eq!(codec.encode(v as f64), v);
        prop_assert_eq!(codec.decode(codec.encode(v as f64)), v as f64);
    }

    /// Codec: encoding is monotone (clipping preserves order).
    #[test]
    fn codec_is_monotone(bits in 2u32..=16, a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let codec = FixedPointCodec::integer(bits);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(codec.encode(lo) <= codec.encode(hi));
    }

    /// Linear decomposition: per-bit means reconstruct the exact mean.
    #[test]
    fn bit_decomposition_is_linear(values in prop::collection::vec(0u64..4096, 1..200)) {
        let means = exact_bit_means(&values, 12);
        let truth = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((reconstruct(&means) - truth).abs() < 1e-9);
    }

    /// Sampling: probabilities always normalize and apportionment sums to n.
    #[test]
    fn apportionment_sums_exactly(
        weights in prop::collection::vec(0.0f64..100.0, 1..20),
        n in 1usize..50_000,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let sampling = BitSampling::custom(weights);
        prop_assert!((sampling.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let counts = sampling.apportion(n);
        prop_assert_eq!(counts.iter().sum::<usize>(), n);
        // Largest-remainder: every count within 1 of the exact share.
        for (j, &c) in counts.iter().enumerate() {
            let exact = sampling.probs()[j] * n as f64;
            prop_assert!((c as f64 - exact).abs() < 1.0 + 1e-9);
        }
    }

    /// Randomized response: debiasing inverts the report expectation for
    /// every p and bit value.
    #[test]
    fn rr_debias_identity(eps in 0.05f64..8.0, bit in any::<bool>()) {
        let rr = RandomizedResponse::from_epsilon(eps);
        let p = rr.p();
        let y = f64::from(u8::from(bit));
        let q = p * y + (1.0 - p) * (1.0 - y); // P(report = 1)
        let expectation = q * rr.debias(true) + (1.0 - q) * rr.debias(false);
        prop_assert!((expectation - y).abs() < 1e-9);
    }

    /// GF(2^61−1): field laws hold for arbitrary elements.
    #[test]
    fn field_laws(a in 0u64..MODULUS, b in 0u64..MODULUS, c in 0u64..MODULUS) {
        let (a, b, c) = (Fe::new(a), Fe::new(b), Fe::new(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Fe::ZERO, a);
        prop_assert_eq!(a * Fe::ONE, a);
        prop_assert_eq!(a - a, Fe::ZERO);
    }

    /// Nonzero field elements have working inverses.
    #[test]
    fn field_inverse(a in 1u64..MODULUS) {
        let a = Fe::new(a);
        prop_assert_eq!(a * a.inv(), Fe::ONE);
    }

    /// Shamir: any k of n shares reconstruct the secret.
    #[test]
    fn shamir_round_trips(
        secret in 0u64..MODULUS,
        k in 1usize..6,
        extra in 0usize..5,
        seed in any::<u64>(),
        offset in 0usize..5,
    ) {
        let n = k + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let shares = share(Fe::new(secret), k, n, &mut rng);
        let start = offset % (n - k + 1);
        prop_assert_eq!(shamir_reconstruct(&shares[start..start + k]), Fe::new(secret));
    }

    /// Accumulator: merging is equivalent to recording everything in one.
    #[test]
    fn accumulator_merge_associative(
        reports in prop::collection::vec((0u32..8, 0.0f64..1.0), 1..100),
        at in 0usize..100,
    ) {
        let split = at % (reports.len() + 1);
        let mut whole = BitAccumulator::new(8);
        for &(j, v) in &reports {
            whole.record(j, v);
        }
        let mut left = BitAccumulator::new(8);
        for &(j, v) in &reports[..split] {
            left.record(j, v);
        }
        let mut right = BitAccumulator::new(8);
        for &(j, v) in &reports[split..] {
            right.record(j, v);
        }
        left.merge(&right);
        prop_assert_eq!(left.counts(), whole.counts());
        for (a, b) in left.sums().iter().zip(whole.sums()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// ValueRange: unit mapping round-trips inside the range.
    #[test]
    fn value_range_round_trip(lo in -1e6f64..1e6, width in 1e-3f64..1e6, t in 0.0f64..1.0) {
        let range = ValueRange::new(lo, lo + width);
        let x = range.from_unit(t);
        prop_assert!((range.to_unit(x) - t).abs() < 1e-6);
    }

    /// Bit extraction matches the arithmetic definition.
    #[test]
    fn bit_extraction_is_arithmetic(v in any::<u64>(), j in 0u32..52) {
        let expected = (v >> j) & 1;
        prop_assert_eq!(bit_f64(v, j), expected as f64);
    }

    /// Bit-plane packing: the `count_ones()` tally (`ones()` / `counts()`)
    /// equals the scalar one-report-at-a-time accumulation, and the masked
    /// variants equal the scalar tally restricted to kept slots — the
    /// invariant the batched aggregation path rests on.
    #[test]
    fn bit_planes_match_scalar_accumulation(
        bits in 1u32..=16,
        raw in prop::collection::vec((0u32..20, any::<bool>()), 1..200),
        mask_seed in any::<u64>(),
    ) {
        // j >= 16 marks a dropped-out slot (no report recorded).
        let reports: Vec<Option<(u32, bool)>> = raw
            .into_iter()
            .map(|(j, v)| (j < 16).then_some((j % bits, v)))
            .collect();
        let slots = reports.len();
        let mut planes = BitPlanes::new(bits, slots);
        let mut ones = vec![0u64; bits as usize];
        let mut counts = vec![0u64; bits as usize];
        for (slot, r) in reports.iter().enumerate() {
            if let Some((j, v)) = r {
                planes.record(slot, *j, *v);
                counts[*j as usize] += 1;
                if *v {
                    ones[*j as usize] += 1;
                }
            }
        }
        prop_assert_eq!(planes.ones(), ones);
        prop_assert_eq!(planes.counts(), counts);

        // Masked tally over a pseudo-random survivor bitmap.
        let mut rng = StdRng::seed_from_u64(mask_seed);
        let keep: Vec<u64> = (0..slots.div_ceil(64)).map(|_| rng.random::<u64>()).collect();
        let mut m_ones = vec![0u64; bits as usize];
        let mut m_counts = vec![0u64; bits as usize];
        for (slot, r) in reports.iter().enumerate() {
            if (keep[slot / 64] >> (slot % 64)) & 1 == 0 {
                continue;
            }
            if let Some((j, v)) = r {
                m_counts[*j as usize] += 1;
                if *v {
                    m_ones[*j as usize] += 1;
                }
            }
        }
        prop_assert_eq!(planes.ones_masked(&keep), m_ones);
        prop_assert_eq!(planes.counts_masked(&keep), m_counts);
    }

    /// Merging planes is exactly slot concatenation: packing two report
    /// sequences separately and merging equals packing them back to back.
    #[test]
    fn bit_planes_merge_is_concatenation(
        bits in 1u32..=8,
        left in prop::collection::vec((0u32..10, any::<bool>()), 0..100),
        right in prop::collection::vec((0u32..10, any::<bool>()), 0..100),
    ) {
        // j >= 8 marks a dropped-out slot (no report recorded).
        let pack = |reports: &[(u32, bool)]| {
            let mut planes = BitPlanes::new(bits, reports.len());
            for (slot, &(j, v)) in reports.iter().enumerate() {
                if j < 8 {
                    planes.record(slot, j % bits, v);
                }
            }
            planes
        };
        let mut merged = pack(&left);
        merged.merge(&pack(&right));
        let mut whole: Vec<(u32, bool)> = left;
        whole.extend(right);
        prop_assert_eq!(merged, pack(&whole));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Basic bit-pushing is exact for constant populations (all bit means
    /// deterministic) *provided every bit index receives at least one
    /// report* — guaranteed here by uniform sampling with `n ≥ bits`.
    /// (Bits with no reports default to mean 0, which is why skewed
    /// distributions need either enough clients or an adaptive first round.)
    #[test]
    fn constant_population_exact(v in 0u64..4096, seed in any::<u64>(), n in 24usize..500) {
        use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
        let protocol = BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::integer(12),
            BitSampling::uniform(12),
        ));
        let values = vec![v as f64; n];
        let mut rng = StdRng::seed_from_u64(seed);
        let out = protocol.run(&values, &mut rng);
        prop_assert!((out.estimate - v as f64).abs() < 1e-9);
    }

    /// With *any* sampling distribution, the constant-population estimate
    /// never exceeds the true value and misses exactly the weight of the
    /// unsampled one-bits.
    #[test]
    fn constant_population_underestimates_by_unsampled_bits(
        v in 0u64..4096,
        seed in any::<u64>(),
        n in 2usize..200,
    ) {
        use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
        let protocol = BasicBitPushing::new(BasicConfig::new(
            FixedPointCodec::integer(12),
            BitSampling::geometric(12, 1.0),
        ));
        let values = vec![v as f64; n];
        let mut rng = StdRng::seed_from_u64(seed);
        let out = protocol.run(&values, &mut rng);
        prop_assert!(out.estimate <= v as f64 + 1e-9);
        let missing: f64 = out
            .accumulator
            .counts()
            .iter()
            .enumerate()
            .filter(|(j, &c)| c == 0 && (v >> j) & 1 == 1)
            .map(|(j, _)| (1u64 << j) as f64)
            .sum();
        prop_assert!((out.estimate + missing - v as f64).abs() < 1e-9);
    }
}

/// Deterministic replay of the shrunk case recorded in
/// `tests/proptests.proptest-regressions` (`v = 945, seed = 0, n = 2`):
/// `ci.sh` runs this by name so the saved regression is exercised even in
/// environments where the proptest runner or its seed file is unavailable.
#[test]
fn regression_constant_population_v945_seed0_n2() {
    use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
    let (v, seed, n) = (945u64, 0u64, 2usize);
    let protocol = BasicBitPushing::new(BasicConfig::new(
        FixedPointCodec::integer(12),
        BitSampling::geometric(12, 1.0),
    ));
    let values = vec![v as f64; n];
    let mut rng = StdRng::seed_from_u64(seed);
    let out = protocol.run(&values, &mut rng);
    assert!(out.estimate <= v as f64 + 1e-9);
    let missing: f64 = out
        .accumulator
        .counts()
        .iter()
        .enumerate()
        .filter(|(j, &c)| c == 0 && (v >> j) & 1 == 1)
        .map(|(j, _)| (1u64 << j) as f64)
        .sum();
    assert!((out.estimate + missing - v as f64).abs() < 1e-9);
}
