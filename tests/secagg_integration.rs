//! Integration tests of bit-pushing over the secure-aggregation substrate.

use fednum::core::bits::exact_bit_means;
use fednum::core::encoding::FixedPointCodec;
use fednum::core::sampling::BitSampling;
use fednum::secagg::protocol::{run_secure_aggregation, DropoutPlan, SecAggConfig, SecAggError};
use fednum::workloads::{Dataset, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds per-client one-hot [ones | counts] vectors for an assignment.
fn bitpush_inputs(codes: &[u64], assignment: &[u32], bits: u32) -> Vec<Vec<u64>> {
    codes
        .iter()
        .zip(assignment)
        .map(|(&code, &j)| {
            let mut v = vec![0u64; 2 * bits as usize];
            v[j as usize] = (code >> j) & 1;
            v[bits as usize + j as usize] = 1;
            v
        })
        .collect()
}

#[test]
fn securely_aggregated_histograms_match_plaintext() {
    let bits = 10u32;
    let codec = FixedPointCodec::integer(bits);
    let ds = Dataset::draw(&Uniform::new(0.0, 900.0), 300, 1);
    let (codes, _) = codec.encode_all(ds.values());
    let sampling = BitSampling::geometric(bits, 1.0);
    let mut rng = StdRng::seed_from_u64(2);
    let assignment = sampling.assign_qmc(codes.len(), &mut rng);
    let inputs = bitpush_inputs(&codes, &assignment, bits);

    let config = SecAggConfig::new(codes.len(), 150, 2 * bits as usize, 7);
    let out = run_secure_aggregation(&config, &inputs, &DropoutPlan::none(), &mut rng).unwrap();

    // Plaintext tally.
    let mut ones = vec![0u64; bits as usize];
    let mut counts = vec![0u64; bits as usize];
    for (i, &j) in assignment.iter().enumerate() {
        ones[j as usize] += (codes[i] >> j) & 1;
        counts[j as usize] += 1;
    }
    assert_eq!(&out.sum[..bits as usize], ones.as_slice());
    assert_eq!(&out.sum[bits as usize..], counts.as_slice());
}

#[test]
fn mean_reconstruction_from_secure_sums() {
    // Server-side: rebuild the estimate purely from the secure sums, and
    // compare against the exact bit-mean reconstruction on a full census.
    let bits = 8u32;
    let codec = FixedPointCodec::integer(bits);
    let ds = Dataset::draw(&Uniform::new(0.0, 250.0), 1000, 3);
    let (codes, _) = codec.encode_all(ds.values());

    // Every client reports every bit (uniform full census for exactness).
    let mut inputs = Vec::new();
    for &code in &codes {
        let mut v = vec![0u64; 2 * bits as usize];
        for j in 0..bits {
            v[j as usize] = (code >> j) & 1;
            v[bits as usize + j as usize] = 1;
        }
        inputs.push(v);
    }
    let config = SecAggConfig::new(codes.len(), 500, 2 * bits as usize, 11);
    let mut rng = StdRng::seed_from_u64(4);
    let out = run_secure_aggregation(&config, &inputs, &DropoutPlan::none(), &mut rng).unwrap();

    let means: Vec<f64> = (0..bits as usize)
        .map(|j| out.sum[j] as f64 / out.sum[bits as usize + j] as f64)
        .collect();
    let estimate = codec.decode_float(fednum::core::bits::reconstruct(&means));
    let exact = codec.decode_float(fednum::core::bits::reconstruct(&exact_bit_means(
        &codes, bits,
    )));
    assert!((estimate - exact).abs() < 1e-9);
}

#[test]
fn dropout_recovery_excludes_only_the_dropped() {
    let bits = 6u32;
    let codec = FixedPointCodec::integer(bits);
    let ds = Dataset::draw(&Uniform::new(0.0, 60.0), 100, 5);
    let (codes, _) = codec.encode_all(ds.values());
    let sampling = BitSampling::uniform(bits);
    let mut rng = StdRng::seed_from_u64(6);
    let assignment = sampling.assign_qmc(codes.len(), &mut rng);
    let inputs = bitpush_inputs(&codes, &assignment, bits);

    let plan = DropoutPlan {
        before_masking: [5usize, 17, 44].into_iter().collect(),
        after_masking: [2usize, 60].into_iter().collect(),
    };
    let config = SecAggConfig::new(codes.len(), 50, 2 * bits as usize, 13);
    let out = run_secure_aggregation(&config, &inputs, &plan, &mut rng).unwrap();

    let mut counts = vec![0u64; bits as usize];
    for (i, &j) in assignment.iter().enumerate() {
        if !plan.before_masking.contains(&i) {
            counts[j as usize] += 1;
        }
    }
    assert_eq!(&out.sum[bits as usize..], counts.as_slice());
    assert_eq!(out.contributors.len(), 97);
    assert_eq!(out.pairwise_masks_reconstructed, 3);
}

#[test]
fn enclave_path_reproduces_bitpushing_estimate_with_central_dp() {
    use fednum::core::bits::reconstruct;
    use fednum::secagg::{EnclaveAggregator, Sanitizer};

    // Clients report bits into the enclave; the server only ever sees the
    // thresholded aggregate — Section 4.3's central-DP deployment mode.
    let bits = 8u32;
    let codec = FixedPointCodec::integer(bits);
    let ds = Dataset::draw(&Uniform::new(0.0, 200.0), 20_000, 21);
    let (codes, _) = codec.encode_all(ds.values());
    let sampling = BitSampling::geometric(bits, 1.0);
    let mut rng = StdRng::seed_from_u64(22);
    let assignment = sampling.assign_qmc(codes.len(), &mut rng);

    let mut enclave = EnclaveAggregator::new(bits as usize, Sanitizer::Threshold { min_count: 10 });
    for (i, &j) in assignment.iter().enumerate() {
        enclave.ingest(j as usize, (codes[i] >> j) & 1 == 1);
    }
    let released = enclave.release("mean-of-metric", &mut rng);
    assert_eq!(released.audit.reports_in, 20_000);

    let means: Vec<f64> = released
        .ones
        .iter()
        .zip(&released.totals)
        .map(|(&o, &t)| if t == 0 { 0.0 } else { o / t as f64 })
        .collect();
    let estimate = codec.decode_float(reconstruct(&means));
    let truth = ds.mean();
    assert!(
        (estimate - truth).abs() / truth < 0.1,
        "enclave estimate {estimate} vs truth {truth}"
    );
    // With geometric sampling over 20k clients, every bit cell is well
    // above the threshold, so thresholding cost nothing (the §4.3 finding).
    assert_eq!(released.audit.cells_suppressed, 0);
}

#[test]
fn threshold_failure_is_loud_not_wrong() {
    let bits = 4u32;
    let inputs: Vec<Vec<u64>> = (0..10).map(|_| vec![0u64; 2 * bits as usize]).collect();
    let config = SecAggConfig::new(10, 9, 2 * bits as usize, 17);
    let plan = DropoutPlan {
        before_masking: [0usize].into_iter().collect(),
        after_masking: [1usize].into_iter().collect(),
    };
    let mut rng = StdRng::seed_from_u64(7);
    let err = run_secure_aggregation(&config, &inputs, &plan, &mut rng).unwrap_err();
    assert!(matches!(
        err,
        SecAggError::TooFewSurvivors {
            survivors: 8,
            threshold: 9
        }
    ));
}
