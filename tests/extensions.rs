//! Integration tests for the extension surfaces: federated quantiles,
//! multi-feature aggregation, streaming/asynchronous aggregation, and the
//! nonlinear aggregates of Section 3.4.

use fednum::core::encoding::FixedPointCodec;
use fednum::core::moments::{geometric_mean, raw_moment};
use fednum::core::multifeature::{standard_feature_config, MultiFeatureBitPushing};
use fednum::core::privacy::RandomizedResponse;
use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
use fednum::core::quantile::{QuantileConfig, QuantileEstimator};
use fednum::core::sampling::BitSampling;
use fednum::fedsim::StreamingMean;
use fednum::workloads::{CensusAges, Dataset, LogNormal, Sampler, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn census_median_age_via_one_bit_bisection() {
    let ds = Dataset::draw(&CensusAges::new(), 60_000, 1);
    let mut sorted = ds.values().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let truth = sorted[sorted.len() / 2];
    let est = QuantileEstimator::new(QuantileConfig::new(FixedPointCodec::integer(7), 0.5));
    let mut rng = StdRng::seed_from_u64(2);
    let out = est.run(ds.values(), &mut rng);
    assert!(
        (out.estimate - truth).abs() <= 3.0,
        "median age {} vs truth {truth}",
        out.estimate
    );
    // Worst-case promise preserved: one bit per participating client.
    assert!(out.reports <= ds.len() as u64);
}

#[test]
fn quantiles_are_monotone_in_q() {
    let ds = Dataset::draw(&CensusAges::new(), 80_000, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let q_at = |q: f64, rng: &mut StdRng| {
        QuantileEstimator::new(QuantileConfig::new(FixedPointCodec::integer(7), q))
            .run(ds.values(), rng)
            .estimate
    };
    let p25 = q_at(0.25, &mut rng);
    let p50 = q_at(0.5, &mut rng);
    let p90 = q_at(0.9, &mut rng);
    assert!(p25 <= p50 && p50 <= p90, "p25 {p25}, p50 {p50}, p90 {p90}");
}

#[test]
fn device_dashboard_four_features_one_bit_each() {
    let n = 80_000;
    let mut rng = StdRng::seed_from_u64(5);
    let cols: Vec<Vec<f64>> = vec![
        Uniform::new(0.0, 400.0).sample_n(&mut rng, n),
        LogNormal::new(3.0, 0.4).sample_n(&mut rng, n),
        Uniform::new(0.0, 40.0).sample_n(&mut rng, n),
        Uniform::new(100.0, 500.0).sample_n(&mut rng, n),
    ];
    let agg = MultiFeatureBitPushing::uniform(
        &["cpu", "rss", "errors", "latency"],
        standard_feature_config(9, 1.0, None, None),
    );
    let outcomes = agg.run(&cols, &mut rng);
    let total: u64 = outcomes
        .iter()
        .map(|o| o.outcome.accumulator.total_reports())
        .sum();
    assert_eq!(total, n as u64, "exactly one disclosed bit per client");
    for (o, col) in outcomes.iter().zip(&cols) {
        let truth = col.iter().sum::<f64>() / n as f64;
        assert!(
            (o.outcome.estimate - truth).abs() / truth < 0.1,
            "{}: {} vs {truth}",
            o.name,
            o.outcome.estimate
        );
    }
}

#[test]
fn streaming_matches_batch_protocol() {
    // The asynchronous path converges to the same estimate as a batch round
    // over the same population.
    let ds = Dataset::draw(&Uniform::new(0.0, 500.0), 50_000, 6);
    let truth = ds.mean();
    let codec = FixedPointCodec::integer(9);
    let sampling = BitSampling::geometric(9, 1.0);

    let mut stream = StreamingMean::new(codec, sampling.clone(), None);
    let mut rng = StdRng::seed_from_u64(7);
    for &v in ds.values() {
        stream.ingest(v, &mut rng);
    }
    let streamed = stream.estimate().unwrap();

    let batch = BasicBitPushing::new(BasicConfig::new(codec, sampling));
    let batched = batch.run(ds.values(), &mut rng).estimate;

    assert!((streamed - truth).abs() / truth < 0.05, "stream {streamed}");
    assert!((batched - truth).abs() / truth < 0.05, "batch {batched}");
}

#[test]
fn streaming_snapshot_feeds_distributed_dp() {
    use fednum::core::privacy::SampleThreshold;
    let ds = Dataset::draw(&Uniform::new(0.0, 200.0), 40_000, 8);
    let codec = FixedPointCodec::integer(8);
    let mut stream = StreamingMean::new(codec, BitSampling::geometric(8, 1.0), None);
    let mut rng = StdRng::seed_from_u64(9);
    for &v in ds.values() {
        stream.ingest(v, &mut rng);
    }
    let snapshot = stream.snapshot();
    let privatized = SampleThreshold::new(0.9, 5).apply(&snapshot, &mut rng);
    let est = codec.decode_float(privatized.estimate());
    assert!(
        (est - ds.mean()).abs() / ds.mean() < 0.1,
        "distributed-DP streaming estimate {est} vs {}",
        ds.mean()
    );
}

#[test]
fn second_moment_and_geometric_mean_end_to_end() {
    let ds = Dataset::draw(&Uniform::new(1.0, 100.0), 60_000, 10);
    let mut rng = StdRng::seed_from_u64(11);

    // E[X²] via bit-pushing on squares (values < 100² → 14 bits).
    let m2_mech = BasicBitPushing::new(BasicConfig::new(
        FixedPointCodec::integer(14),
        BitSampling::geometric(14, 1.0),
    ));
    let m2 = raw_moment(ds.values(), 2, &m2_mech, &mut rng);
    let m2_truth = ds.values().iter().map(|v| v * v).sum::<f64>() / ds.len() as f64;
    assert!(
        (m2 / m2_truth - 1.0).abs() < 0.1,
        "E[X²] {m2} vs {m2_truth}"
    );

    // Geometric mean via log-domain bit-pushing (ln x ∈ [0, ln 100]).
    let gm_mech = BasicBitPushing::new(BasicConfig::new(
        FixedPointCodec::spanning(12, 0.0, 100.0f64.ln()),
        BitSampling::geometric(12, 1.0),
    ));
    let gm = geometric_mean(ds.values(), &gm_mech, &mut rng);
    let gm_truth = (ds.values().iter().map(|v| v.ln()).sum::<f64>() / ds.len() as f64).exp();
    assert!(
        (gm / gm_truth - 1.0).abs() < 0.1,
        "geo-mean {gm} vs {gm_truth}"
    );
}

#[test]
fn streaming_with_decay_tracks_a_regime_shift() {
    use fednum::core::bounds::UpperBoundTracker;
    use fednum::workloads::{buggy_rollout, RoundSampler};

    let scenario = buggy_rollout(0.3, 250_000.0, 4);
    let codec = FixedPointCodec::integer(8); // clip the outliers hard
    let mut stream = StreamingMean::new(codec, BitSampling::geometric(8, 1.0), None);
    let mut tracker = UpperBoundTracker::new(4.0);
    let mut rng = StdRng::seed_from_u64(14);
    let mut flagged_round = None;
    for round in 0..8u64 {
        let dist = scenario.at_round(round);
        let ds = Dataset::draw(&dist, 10_000, 100 + round);
        tracker.record_round(ds.max());
        if tracker.flagged() && flagged_round.is_none() {
            flagged_round = Some(round);
        }
        stream.decay(0.5);
        for &v in ds.values() {
            stream.ingest(v, &mut rng);
        }
    }
    // The monitor caught the rollout at exactly the shift round.
    assert_eq!(flagged_round, Some(4));
    // The clipped streaming estimate reflects the post-shift regime:
    // ~0.3 body + 0.1% clipped-to-255 outliers ≈ 0.55.
    let est = stream.estimate().unwrap();
    assert!((0.3..1.2).contains(&est), "streaming estimate {est}");
}

#[test]
fn private_quantile_with_randomized_response() {
    let ds = Dataset::draw(&CensusAges::new(), 150_000, 12);
    let mut sorted = ds.values().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let truth = sorted[(0.75 * sorted.len() as f64) as usize];
    let cfg = QuantileConfig::new(FixedPointCodec::integer(7), 0.75)
        .with_privacy(RandomizedResponse::from_epsilon(2.0));
    let mut rng = StdRng::seed_from_u64(13);
    let out = QuantileEstimator::new(cfg).run(ds.values(), &mut rng);
    assert!(
        (out.estimate - truth).abs() <= 6.0,
        "private p75 {} vs truth {truth}",
        out.estimate
    );
}
