//! Integration tests of the privacy guarantees: empirical ε-LDP checks,
//! unbiasedness of every mechanism, and budget enforcement through a
//! protocol run.

use fednum::core::encoding::FixedPointCodec;
use fednum::core::privacy::{PrivacyBudget, PrivacyLedger, RandomizedResponse};
use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
use fednum::core::sampling::BitSampling;
use fednum::ldp::{
    DuchiOneBit, LaplaceMechanism, MeanMechanism, PiecewiseMechanism, SubtractiveDithering,
    ValueRange,
};
use fednum::workloads::{Dataset, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Empirical ε-LDP check on the *transmitted bit distribution*: for two
/// clients with maximally different values, the probability of any reported
/// bit value differs by at most e^ε (up to sampling error).
#[test]
fn empirical_ldp_likelihood_ratio_bounded() {
    let eps = 1.0;
    let rr = RandomizedResponse::from_epsilon(eps);
    let trials = 400_000;
    let mut rng = StdRng::seed_from_u64(1);
    // Client A holds bit 1, client B holds bit 0 at the same position.
    let p_a_reports_one =
        (0..trials).filter(|_| rr.flip(true, &mut rng)).count() as f64 / trials as f64;
    let p_b_reports_one =
        (0..trials).filter(|_| rr.flip(false, &mut rng)).count() as f64 / trials as f64;
    let ratio = p_a_reports_one / p_b_reports_one;
    assert!(
        ratio <= eps.exp() * 1.03,
        "likelihood ratio {ratio} exceeds e^eps = {}",
        eps.exp()
    );
    // And the guarantee is tight (the mechanism is not over-noised).
    assert!(ratio >= eps.exp() * 0.97, "ratio {ratio} is far from tight");
}

/// Every LDP mechanism is (empirically) unbiased on the same inputs.
#[test]
fn all_mechanisms_unbiased_on_shared_inputs() {
    let range = ValueRange::new(0.0, 255.0);
    let ds = Dataset::draw(&Uniform::new(20.0, 200.0), 30_000, 2);
    let truth = ds.mean();
    let mechanisms: Vec<Box<dyn MeanMechanism>> = vec![
        Box::new(SubtractiveDithering::new(range)),
        Box::new(DuchiOneBit::new(range, 2.0)),
        Box::new(PiecewiseMechanism::new(range, 2.0)),
        Box::new(LaplaceMechanism::new(range, 2.0)),
        Box::new(fednum::ldp::DitheringLdp::new(range, 2.0)),
        Box::new(BasicBitPushing::new(
            BasicConfig::new(FixedPointCodec::integer(8), BitSampling::geometric(8, 1.0))
                .with_privacy(RandomizedResponse::from_epsilon(2.0)),
        )),
    ];
    for m in &mechanisms {
        let trials = 25;
        let mean_est: f64 = (0..trials)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(s);
                m.estimate_mean(ds.values(), &mut rng)
            })
            .sum::<f64>()
            / f64::from(trials as u32);
        assert!(
            (mean_est - truth).abs() / truth < 0.05,
            "{}: mean of estimates {mean_est} vs truth {truth}",
            m.name()
        );
    }
}

/// Stricter ε means strictly more reported-bit noise (monotone privacy/
/// utility trade-off) for the bit-pushing pipeline.
#[test]
fn error_is_monotone_in_epsilon() {
    let ds = Dataset::draw(&Uniform::new(0.0, 200.0), 20_000, 3);
    let truth = ds.mean();
    let rmse_at = |eps: f64| {
        let protocol = BasicBitPushing::new(
            BasicConfig::new(FixedPointCodec::integer(8), BitSampling::geometric(8, 2.0))
                .with_privacy(RandomizedResponse::from_epsilon(eps)),
        );
        let trials = 30;
        let mut sq = 0.0;
        for s in 0..trials {
            let mut rng = StdRng::seed_from_u64(s);
            let e = protocol.run(ds.values(), &mut rng).estimate;
            sq += (e - truth) * (e - truth);
        }
        (sq / f64::from(trials as u32)).sqrt()
    };
    let strict = rmse_at(0.25);
    let moderate = rmse_at(1.0);
    let loose = rmse_at(4.0);
    assert!(strict > moderate, "eps 0.25 ({strict}) vs 1.0 ({moderate})");
    assert!(moderate > loose, "eps 1.0 ({moderate}) vs 4.0 ({loose})");
}

/// A privacy ledger driven by an actual protocol run: one bit per client per
/// task, budget exhausted after two tasks.
#[test]
fn metering_budget_enforced_across_tasks() {
    let ds = Dataset::draw(&Uniform::new(0.0, 100.0), 2000, 4);
    let mut ledger = PrivacyLedger::with_budget(PrivacyBudget::bits(2));
    let eps = 1.0;
    for task in 0..3 {
        let mut participants = 0;
        for client in 0..ds.len() as u64 {
            if ledger.charge(client, 1, eps).is_ok() {
                participants += 1;
            }
        }
        if task < 2 {
            assert_eq!(participants, 2000, "task {task} should be fully subscribed");
        } else {
            assert_eq!(participants, 0, "budget must be exhausted by task 2");
        }
    }
    assert_eq!(ledger.max_bits_per_client(), 2);
    assert!((ledger.max_epsilon_per_client() - 2.0).abs() < 1e-12);
}

/// DP noise must not introduce bias even at very strict ε.
#[test]
fn strict_epsilon_remains_unbiased() {
    let ds = Dataset::draw(&Uniform::new(50.0, 150.0), 50_000, 5);
    let truth = ds.mean();
    let protocol = BasicBitPushing::new(
        BasicConfig::new(FixedPointCodec::integer(8), BitSampling::geometric(8, 2.0))
            .with_privacy(RandomizedResponse::from_epsilon(0.2)),
    );
    let trials = 60;
    let mean_est: f64 = (0..trials)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s);
            protocol.run(ds.values(), &mut rng).estimate
        })
        .sum::<f64>()
        / f64::from(trials as u32);
    assert!(
        (mean_est - truth).abs() / truth < 0.1,
        "mean of estimates {mean_est} vs truth {truth}"
    );
}
