//! Chaos suite: seeded fault-injection scenarios over the full
//! population → fedsim → secagg → core pipeline.
//!
//! Every scenario runs under `catch_unwind`: whatever the fleet does —
//! dropouts, stragglers, corrupted bits, duplicated/replayed/stale reports,
//! unmask failures — the orchestrator must either produce a usable estimate
//! or fail with a typed [`FedError`], never panic. Successful degraded
//! rounds must land within a predicted-error envelope, and the privacy
//! ledger must never charge a client twice for one round, no matter how many
//! retry waves re-sent its report.

use std::panic::{catch_unwind, AssertUnwindSafe};

use fednum::core::encoding::FixedPointCodec;
use fednum::core::privacy::{PrivacyLedger, RandomizedResponse};
use fednum::core::protocol::basic::BasicConfig;
use fednum::core::sampling::BitSampling;
use fednum::fedsim::faults::{FaultPlan, FaultRates};
use fednum::fedsim::round::{DegradedMode, FederatedMeanConfig, FederatedOutcome, SecAggSettings};
use fednum::fedsim::{Client, DropoutModel, ElicitStrategy, FedError, Population, RetryPolicy};
use fednum::RoundBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BITS: u32 = 8;
const DOMAIN: f64 = 256.0; // integer(8) codec span

// Builder-backed stand-ins for the deprecated free functions: the chaos
// grids below predate `RoundBuilder` and keep their original call shapes;
// the facade is what actually runs.
fn run_federated_mean_metered(
    values: &[f64],
    config: &FederatedMeanConfig,
    ledger: &mut PrivacyLedger,
    rng: &mut dyn Rng,
) -> Result<FederatedOutcome, FedError> {
    RoundBuilder::new(config.clone())
        .metered(ledger)
        .rng(rng)
        .run(values)
        .map(|out| out.flat().unwrap().clone())
}

fn run_federated_mean_transport_metered(
    values: &[f64],
    config: &FederatedMeanConfig,
    ledger: &mut PrivacyLedger,
    transport: &mut dyn fednum::transport::Transport,
    rng: &mut dyn Rng,
) -> Result<FederatedOutcome, FedError> {
    RoundBuilder::new(config.clone())
        .metered(ledger)
        .via(transport)
        .rng(rng)
        .run(values)
        .map(|out| out.flat().unwrap().clone())
}

fn run_hierarchical_mean(
    values: &[f64],
    config: &FederatedMeanConfig,
    hier: &fednum::hiersec::HierSecConfig,
    workers: usize,
    seed: u64,
) -> Result<fednum::transport::HierShardedOutcome, FedError> {
    RoundBuilder::new(config.clone())
        .hierarchical(*hier, workers)
        .seed(seed)
        .run(values)
        .map(|out| out.hierarchical().unwrap().clone())
}

/// One cell of the scenario grid.
struct Scenario {
    id: u64,
    population: usize,
    dropout: DropoutModel,
    fault_scale: f64,
    rates: FaultRates,
    secagg: Option<SecAggSettings>,
    max_waves: u32,
}

fn scenario_grid() -> Vec<Scenario> {
    let populations = [60usize, 250, 1000];
    let dropouts = [
        DropoutModel::None,
        DropoutModel::bernoulli(0.25),
        DropoutModel::phased(0.1, 0.2),
    ];
    let fault_scales = [0.0f64, 0.01, 0.03];
    // Plus one skewed mix dominated by the replay/duplicate classes.
    let skewed = FaultRates {
        duplicate: 0.08,
        replay: 0.05,
        stale_round: 0.03,
        ..FaultRates::none()
    };
    let transports = [
        None,
        Some(SecAggSettings {
            threshold_fraction: 0.5,
            neighbors: Some(32),
        }),
        // Tight threshold: after-masking dropout regularly forces the
        // re-masked retry path.
        Some(SecAggSettings {
            threshold_fraction: 0.8,
            neighbors: Some(32),
        }),
    ];
    let waves = [1u32, 3];

    let mut grid = Vec::new();
    let mut id = 0u64;
    for &population in &populations {
        for &dropout in &dropouts {
            for fault_case in 0..=fault_scales.len() {
                for &secagg in &transports {
                    for &max_waves in &waves {
                        let (fault_scale, rates) = if fault_case < fault_scales.len() {
                            let s = fault_scales[fault_case];
                            (s, FaultRates::uniform(s))
                        } else {
                            (0.16 / 7.0, skewed)
                        };
                        id += 1;
                        grid.push(Scenario {
                            id,
                            population,
                            dropout,
                            fault_scale,
                            rates,
                            secagg,
                            max_waves,
                        });
                    }
                }
            }
        }
    }
    grid
}

/// Builds a multi-value population and elicits one value per client, so the
/// scenario exercises the population layer too.
fn elicit(scenario: &Scenario) -> Vec<f64> {
    let clients: Vec<Client> = (0..scenario.population as u64)
        .map(|i| {
            let base = (i * 37 + scenario.id * 13) % 200;
            let values: Vec<f64> = (0..=(i % 3)).map(|k| (base + 10 * k) as f64).collect();
            Client::new(i, (i % 4) as u32, values)
        })
        .collect();
    let strategy = if scenario.id.is_multiple_of(2) {
        ElicitStrategy::Sample
    } else {
        ElicitStrategy::LocalAggregate
    };
    let mut rng = StdRng::seed_from_u64(scenario.id ^ 0xE11C);
    Population::new(clients).elicit(strategy, &mut rng)
}

fn config_for(scenario: &Scenario) -> FederatedMeanConfig {
    let mut protocol = BasicConfig::new(
        FixedPointCodec::integer(BITS),
        BitSampling::geometric(BITS, 1.0),
    );
    if scenario.id.is_multiple_of(5) {
        protocol = protocol.with_privacy(RandomizedResponse::from_epsilon(3.0));
    }
    let mut cfg = FederatedMeanConfig::new(protocol)
        .with_dropout(scenario.dropout)
        .with_retry(RetryPolicy {
            max_secagg_retries: 2,
            base_backoff: 0.5,
            max_backoff: 8.0,
            min_cohort: 5,
        });
    if scenario.max_waves > 1 {
        cfg = cfg.with_auto_adjust(scenario.max_waves, 5, 0.7);
    }
    if let Some(settings) = scenario.secagg {
        cfg = cfg.with_secagg(settings);
    }
    if scenario.fault_scale > 0.0 {
        cfg = cfg.with_faults(FaultPlan::new(scenario.rates, scenario.id ^ 0xFA17).unwrap());
    }
    cfg.session_seed = 0x1000 + scenario.id;
    cfg
}

#[test]
fn chaos_scenarios_never_panic_and_degrade_predictably() {
    let grid = scenario_grid();
    assert!(
        grid.len() >= 200,
        "chaos grid must span at least 200 scenarios, has {}",
        grid.len()
    );

    let mut successes = 0usize;
    let mut degraded_successes = 0usize;
    let mut retried = 0usize;
    let mut typed_failures = 0usize;
    let mut out_of_envelope = 0usize;

    for scenario in &grid {
        let values = elicit(scenario);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let config = config_for(scenario);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut ledger = PrivacyLedger::new();
            let mut rng = StdRng::seed_from_u64(scenario.id ^ 0xC4A0);
            let out = run_federated_mean_metered(&values, &config, &mut ledger, &mut rng);
            (out, ledger)
        }));
        let (outcome, ledger) = result.unwrap_or_else(|_| {
            panic!(
                "scenario {} (n={}, faults={:.3}, secagg={}) panicked",
                scenario.id,
                scenario.population,
                scenario.fault_scale,
                scenario.secagg.is_some()
            )
        });
        // Whatever happened, the round billed each client at most one bit:
        // retry waves never double-charge.
        assert!(
            ledger.max_bits_per_client() <= 1,
            "scenario {}: ledger charged {} bits to one client",
            scenario.id,
            ledger.max_bits_per_client()
        );
        match outcome {
            Ok(out) => {
                successes += 1;
                if out.robustness.degraded != DegradedMode::Clean {
                    degraded_successes += 1;
                }
                retried += usize::from(out.robustness.secagg_retries > 0);
                // Predicted-error envelope: statistical spread plus a bias
                // allowance for the undetectable corruption classes
                // (corrupted bits, naive-accepted stale payloads), which
                // shift bit means by up to their injection rate.
                let bias_allowance =
                    2.0 * (scenario.rates.corrupt_bit + scenario.rates.stale_round) * DOMAIN;
                let tolerance = 8.0 * out.outcome.predicted_std.max(DOMAIN * 0.005)
                    + bias_allowance
                    + DOMAIN * 0.02;
                if (out.outcome.estimate - truth).abs() > tolerance {
                    out_of_envelope += 1;
                    eprintln!(
                        "scenario {}: estimate {} vs truth {truth} outside ±{tolerance:.2}",
                        scenario.id, out.outcome.estimate
                    );
                }
            }
            Err(e) => {
                // Every failure must be one of the typed classes.
                typed_failures += 1;
                match e {
                    FedError::NoReports
                    | FedError::SecAgg(_)
                    | FedError::CohortTooSmall { .. }
                    | FedError::PopulationTooSmall { .. }
                    | FedError::Budget(_)
                    | FedError::BitOutOfRange { .. }
                    | FedError::InvalidConfig(_) => {}
                    // The sync in-memory engine never touches a socket; a
                    // transport error here is a pipeline bug, not chaos.
                    FedError::Transport { .. } => {
                        panic!(
                            "scenario {}: transport error without a wire: {e}",
                            scenario.id
                        )
                    }
                }
            }
        }
    }

    assert_eq!(out_of_envelope, 0, "estimates escaped the error envelope");
    assert!(
        successes >= grid.len() / 2,
        "most scenarios should produce an estimate: {successes}/{}",
        grid.len()
    );
    assert!(
        degraded_successes > 20,
        "degraded recovery paths must be exercised, got {degraded_successes}"
    );
    assert!(
        retried > 0,
        "the secagg retry path must fire somewhere in the grid"
    );
    eprintln!(
        "chaos: {} scenarios, {successes} ok ({degraded_successes} degraded, {retried} retried), \
         {typed_failures} typed failures",
        grid.len()
    );
}

#[test]
fn hostile_scenarios_fail_typed_never_panic() {
    // Fleets hostile enough that the round cannot complete: near-total
    // dropout, cohorts below the privacy minimum, unmask failures with no
    // retry budget. Every one must surface a typed error.
    let mut failures = 0usize;
    for seed in 0..40u64 {
        let values: Vec<f64> = (0..25).map(|i| f64::from(i % 10)).collect();
        let mut cfg = config_for(&Scenario {
            id: seed,
            population: values.len(),
            dropout: DropoutModel::bernoulli(0.95),
            fault_scale: 0.05,
            rates: FaultRates::uniform(0.05),
            secagg: seed.is_multiple_of(2).then_some(SecAggSettings {
                threshold_fraction: 0.9,
                neighbors: None,
            }),
            max_waves: 1,
        });
        cfg.retry = RetryPolicy {
            max_secagg_retries: 0,
            base_backoff: 0.0,
            max_backoff: 0.0,
            min_cohort: 8,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut ledger = PrivacyLedger::new();
            let mut rng = StdRng::seed_from_u64(seed);
            run_federated_mean_metered(&values, &cfg, &mut ledger, &mut rng)
        }))
        .unwrap_or_else(|_| panic!("hostile scenario {seed} panicked"));
        if let Err(e) = outcome {
            failures += 1;
            assert!(!e.to_string().is_empty());
        }
    }
    assert!(
        failures >= 30,
        "hostile fleets should fail in most runs, got {failures}/40"
    );
}

#[test]
fn chaos_failures_are_deterministic_per_seed() {
    // The same scenario id replays to the identical outcome: fault sampling
    // is hash-based and draws nothing from the orchestrator RNG stream.
    let grid = scenario_grid();
    for scenario in grid.iter().step_by(37) {
        let values = elicit(scenario);
        let config = config_for(scenario);
        let run = || {
            let mut ledger = PrivacyLedger::new();
            let mut rng = StdRng::seed_from_u64(scenario.id ^ 0xC4A0);
            run_federated_mean_metered(&values, &config, &mut ledger, &mut rng)
                .map(|o| (o.outcome.estimate, o.reports, o.robustness))
                .map_err(|e| e.to_string())
        };
        assert_eq!(run(), run(), "scenario {} must replay", scenario.id);
    }
}

#[test]
fn chaos_scenarios_degrade_identically_over_the_simulated_network() {
    // The whole scenario matrix, replayed through the event-driven
    // transport: wire faults acted out by `SimNetTransport`, client faults
    // by the coordinator's client model. Every scenario must land exactly
    // where the legacy synchronous loop landed — same estimate bits, same
    // degradation class, same typed error — with zero panics.
    use fednum::transport::net::SimNetTransport;
    use fednum::transport::{InMemoryTransport, Transport};

    let grid = scenario_grid();
    let mut identical = 0usize;
    let mut degraded = 0usize;
    for scenario in &grid {
        let values = elicit(scenario);
        let config = config_for(scenario);
        let legacy = {
            let mut ledger = PrivacyLedger::new();
            let mut rng = StdRng::seed_from_u64(scenario.id ^ 0xC4A0);
            run_federated_mean_metered(&values, &config, &mut ledger, &mut rng)
        };
        let evented = catch_unwind(AssertUnwindSafe(|| {
            let mut ledger = PrivacyLedger::new();
            let mut rng = StdRng::seed_from_u64(scenario.id ^ 0xC4A0);
            let mut transport: Box<dyn Transport> = if config.faults.is_some() {
                Box::new(SimNetTransport::for_config(&config, scenario.id))
            } else {
                Box::new(InMemoryTransport::new(scenario.id))
            };
            run_federated_mean_transport_metered(
                &values,
                &config,
                &mut ledger,
                transport.as_mut(),
                &mut rng,
            )
        }))
        .unwrap_or_else(|_| panic!("scenario {} panicked over the transport", scenario.id));
        match (legacy, evented) {
            (Ok(l), Ok(e)) => {
                identical += 1;
                degraded += usize::from(e.robustness.degraded != DegradedMode::Clean);
                assert_eq!(
                    l.outcome.estimate.to_bits(),
                    e.outcome.estimate.to_bits(),
                    "scenario {}: transport estimate diverged",
                    scenario.id
                );
                assert_eq!(
                    l.robustness.degraded, e.robustness.degraded,
                    "scenario {}: degradation class diverged",
                    scenario.id
                );
                assert_eq!(
                    l.robustness.rejections, e.robustness.rejections,
                    "scenario {}: rejection counts diverged",
                    scenario.id
                );
                assert!(
                    e.robustness.traffic.total_messages() > 0,
                    "scenario {}: transport path metered no traffic",
                    scenario.id
                );
            }
            (Err(l), Err(e)) => {
                assert_eq!(l, e, "scenario {}: error classes diverged", scenario.id)
            }
            (l, e) => panic!(
                "scenario {}: paths disagree on success: legacy={l:?} transport={e:?}",
                scenario.id
            ),
        }
    }
    assert!(
        identical >= grid.len() / 2,
        "most scenarios should succeed identically: {identical}/{}",
        grid.len()
    );
    assert!(
        degraded > 20,
        "degraded classes must be exercised over the transport, got {degraded}"
    );
}

#[test]
fn salvage_never_worsens_the_estimate_across_the_chaos_grid() {
    // The salvage pass (ISSUE satellite): a reduced cut of the scenario
    // matrix with the straggle class boosted so every cell parks frames,
    // each cell run twice over the simulated network — discard vs. an
    // armed salvage policy. Contracts: salvage is *strictly additive*
    // (reports never shrink, grid-aggregate NRMSE never worsens, cells
    // where the policy stays idle are bit-identical), failures stay typed
    // and identical, and the ledger keeps billing each client at most one
    // bit however many sessions touched its report.
    use fednum::fedsim::round::SalvageOutcome;
    use fednum::fedsim::SalvagePolicy;
    use fednum::transport::net::SimNetTransport;

    let grid: Vec<Scenario> = scenario_grid().into_iter().step_by(5).collect();
    assert!(
        grid.len() >= 40,
        "reduced salvage grid too thin: {}",
        grid.len()
    );

    let mut sq_err_discard = 0.0f64;
    let mut sq_err_salvage = 0.0f64;
    let mut compared = 0usize;
    let mut salvaged_cells = 0usize;
    let mut idle_cells = 0usize;
    let run = |cfg: &FederatedMeanConfig, values: &[f64], seed: u64| {
        catch_unwind(AssertUnwindSafe(|| {
            let mut ledger = PrivacyLedger::new();
            let mut transport = SimNetTransport::for_config(cfg, seed);
            let out = run_federated_mean_transport_metered(
                values,
                cfg,
                &mut ledger,
                &mut transport,
                &mut StdRng::seed_from_u64(seed ^ 0xC4A0),
            );
            assert!(
                ledger.max_bits_per_client() <= 1,
                "a client was billed {} bits",
                ledger.max_bits_per_client()
            );
            out
        }))
    };

    for scenario in &grid {
        let values = elicit(scenario);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut discard = config_for(scenario);
        // Boost the straggle class on top of whatever the cell injects, so
        // the salvage path sees parked frames in (nearly) every cell.
        let rates = FaultRates {
            straggle: scenario.rates.straggle + 0.15,
            ..scenario.rates
        };
        discard = discard.with_faults(FaultPlan::new(rates, scenario.id ^ 0xFA17).unwrap());
        let salvage = discard.clone().with_salvage(SalvagePolicy::default());

        let off = run(&discard, &values, scenario.id)
            .unwrap_or_else(|_| panic!("scenario {}: discard run panicked", scenario.id));
        let on = run(&salvage, &values, scenario.id)
            .unwrap_or_else(|_| panic!("scenario {}: salvage run panicked", scenario.id));
        match (off, on) {
            (Ok(off), Ok(on)) => {
                assert!(
                    on.reports >= off.reports,
                    "scenario {}: salvage shrank the report count ({} < {})",
                    scenario.id,
                    on.reports,
                    off.reports
                );
                match on.robustness.salvage {
                    Some(SalvageOutcome::Salvaged { reports }) => {
                        salvaged_cells += 1;
                        assert_eq!(
                            on.reports,
                            off.reports + reports,
                            "scenario {}: salvage accounting broke",
                            scenario.id
                        );
                    }
                    Some(SalvageOutcome::SalvageSkipped | SalvageOutcome::SalvageAborted)
                    | None => {
                        idle_cells += 1;
                        assert_eq!(
                            on.outcome.estimate.to_bits(),
                            off.outcome.estimate.to_bits(),
                            "scenario {}: idle salvage perturbed the estimate",
                            scenario.id
                        );
                    }
                }
                compared += 1;
                sq_err_discard += ((off.outcome.estimate - truth) / DOMAIN).powi(2);
                sq_err_salvage += ((on.outcome.estimate - truth) / DOMAIN).powi(2);
            }
            (Err(l), Err(e)) => assert_eq!(
                l, e,
                "scenario {}: salvage changed the failure class",
                scenario.id
            ),
            (l, e) => panic!(
                "scenario {}: salvage flipped success: discard={l:?} salvage={e:?}",
                scenario.id
            ),
        }
    }
    assert!(
        salvaged_cells >= 10,
        "salvage fired in only {salvaged_cells} cells"
    );
    assert!(compared >= grid.len() / 2);
    let nrmse_discard = (sq_err_discard / compared as f64).sqrt();
    let nrmse_salvage = (sq_err_salvage / compared as f64).sqrt();
    assert!(
        nrmse_salvage <= nrmse_discard + 1e-12,
        "salvage worsened grid NRMSE: {nrmse_salvage:.6} vs discard {nrmse_discard:.6}"
    );
    eprintln!(
        "salvage chaos: {compared} cells compared ({salvaged_cells} salvaged, {idle_cells} idle), \
         NRMSE {nrmse_salvage:.6} (salvage) vs {nrmse_discard:.6} (discard)"
    );

    // Hostile seeds on top: fleets straggling half their reports under
    // thresholds with no slack. Salvage must never panic, and whatever it
    // returns is typed or an estimate — the additive guarantee at its most
    // adversarial.
    for seed in 0..12u64 {
        let values: Vec<f64> = (0..60).map(|i| f64::from(i % 30)).collect();
        let mut cfg = config_for(&Scenario {
            id: seed,
            population: values.len(),
            dropout: DropoutModel::bernoulli(0.4),
            fault_scale: 0.5,
            rates: FaultRates {
                straggle: 0.5,
                drop_before_unmask: 0.1,
                ..FaultRates::none()
            },
            secagg: seed.is_multiple_of(2).then_some(SecAggSettings {
                threshold_fraction: 0.8,
                neighbors: None,
            }),
            max_waves: 1,
        });
        cfg = cfg
            .with_faults(
                FaultPlan::new(
                    FaultRates {
                        straggle: 0.5,
                        drop_before_unmask: 0.1,
                        ..FaultRates::none()
                    },
                    seed ^ 0xB05,
                )
                .unwrap(),
            )
            .with_salvage(SalvagePolicy::default());
        cfg.retry = RetryPolicy {
            max_secagg_retries: 0,
            base_backoff: 0.0,
            max_backoff: 0.0,
            min_cohort: 8,
        };
        let outcome = run(&cfg, &values, seed)
            .unwrap_or_else(|_| panic!("hostile salvage seed {seed} panicked"));
        if let Err(e) = outcome {
            assert!(!e.to_string().is_empty());
        }
    }
}

#[test]
fn chaos_matrix_composes_with_hierarchical_secagg() {
    // A reduced cut of the scenario matrix replayed through the two-tier
    // path: the same fault plans now hit K independent shard sessions, and
    // shard-level secagg failures degrade shards into the merge tier
    // instead of killing the round. Contracts: no panics, every failure
    // typed (merge-tier aborts map to `DegradedMode::Aborted` in
    // telemetry), shard bookkeeping partitions cleanly, and the worker
    // pool never changes the outcome.
    use fednum::hiersec::HierSecConfig;

    let grid: Vec<Scenario> = scenario_grid()
        .into_iter()
        .filter(|s| s.population >= 250)
        .step_by(4)
        .collect();
    assert!(
        grid.len() >= 30,
        "reduced hier grid too thin: {}",
        grid.len()
    );

    let mut successes = 0usize;
    let mut shard_degraded = 0usize;
    let mut aborted = 0usize;
    let mut other_failures = 0usize;
    for scenario in &grid {
        let values = elicit(scenario);
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let mut config = config_for(scenario);
        // The hierarchy is the secure path: force secagg on so every cell
        // exercises both tiers.
        let settings = scenario.secagg.unwrap_or(SecAggSettings {
            threshold_fraction: 0.5,
            neighbors: Some(32),
        });
        config = config.with_secagg(settings);
        let hier = HierSecConfig::try_new(4, settings, 3, 0x41E5 ^ scenario.id).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_hierarchical_mean(&values, &config, &hier, 2, scenario.id ^ 0xC4A0)
        }))
        .unwrap_or_else(|_| panic!("hier scenario {} panicked", scenario.id));
        match outcome {
            Ok(out) => {
                successes += 1;
                let mut all: Vec<usize> = out
                    .included_shards
                    .iter()
                    .chain(&out.degraded_shards)
                    .copied()
                    .collect();
                all.sort_unstable();
                assert_eq!(
                    all,
                    (0..4).collect::<Vec<_>>(),
                    "scenario {}: shards neither included nor degraded",
                    scenario.id
                );
                if !out.degraded_shards.is_empty() {
                    shard_degraded += 1;
                    assert_eq!(
                        out.degraded,
                        DegradedMode::Partial,
                        "scenario {}: degraded shards must report Partial",
                        scenario.id
                    );
                }
                let bias_allowance =
                    2.0 * (scenario.rates.corrupt_bit + scenario.rates.stale_round) * DOMAIN;
                let tolerance = 8.0 * out.outcome.predicted_std.max(DOMAIN * 0.005)
                    + bias_allowance
                    + DOMAIN * 0.05;
                assert!(
                    (out.outcome.estimate - truth).abs() <= tolerance,
                    "scenario {}: estimate {} vs truth {truth} outside ±{tolerance:.2}",
                    scenario.id,
                    out.outcome.estimate
                );
                // Pool parity holds cell by cell, chaos included.
                let replay =
                    run_hierarchical_mean(&values, &config, &hier, 4, scenario.id ^ 0xC4A0)
                        .expect("replay of a successful scenario must succeed");
                assert_eq!(
                    replay.outcome.estimate.to_bits(),
                    out.outcome.estimate.to_bits(),
                    "scenario {}: worker pool changed the estimate",
                    scenario.id
                );
            }
            Err(FedError::SecAgg(_)) => {
                // Merge-tier failure: the round aborts; telemetry maps this
                // to the reserved slot.
                aborted += 1;
                let mapped = DegradedMode::Aborted;
                assert_ne!(mapped, DegradedMode::Clean);
            }
            Err(
                FedError::NoReports
                | FedError::CohortTooSmall { .. }
                | FedError::PopulationTooSmall { .. }
                | FedError::InvalidConfig(_),
            ) => other_failures += 1,
            Err(e) => panic!("scenario {}: unexpected failure class {e:?}", scenario.id),
        }
    }
    assert!(
        successes >= grid.len() / 2,
        "most hier scenarios should publish: {successes}/{}",
        grid.len()
    );

    // A hostile sweep on top: per-shard thresholds tuned to the dropout
    // rate so each shard's survival is roughly a coin flip. Across seeds
    // this must surface both failure tiers — rounds that publish *around*
    // degraded shards, and rounds the merge threshold aborts.
    let strict = SecAggSettings {
        threshold_fraction: 0.7,
        neighbors: None,
    };
    for seed in 0..10u64 {
        let values: Vec<f64> = (0..248).map(|i| f64::from(i % 100)).collect();
        let mut cfg = FederatedMeanConfig::new(BasicConfig::new(
            FixedPointCodec::integer(BITS),
            BitSampling::geometric(BITS, 1.0),
        ))
        .with_dropout(DropoutModel::bernoulli(0.3))
        .with_secagg(strict);
        cfg.retry = RetryPolicy {
            max_secagg_retries: 0,
            base_backoff: 0.0,
            max_backoff: 0.0,
            min_cohort: 5,
        };
        cfg.session_seed = 0x2000 + seed;
        let hier = HierSecConfig::try_new(4, strict, 2, 0x9057 ^ seed).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_hierarchical_mean(&values, &cfg, &hier, 2, seed)
        }))
        .unwrap_or_else(|_| panic!("hostile hier seed {seed} panicked"));
        match outcome {
            Ok(out) => {
                if !out.degraded_shards.is_empty() {
                    shard_degraded += 1;
                    assert_eq!(out.degraded, DegradedMode::Partial);
                }
            }
            Err(FedError::SecAgg(_)) => aborted += 1,
            Err(FedError::NoReports | FedError::CohortTooSmall { .. }) => other_failures += 1,
            Err(e) => panic!("hostile hier seed {seed}: unexpected class {e:?}"),
        }
    }
    assert!(
        shard_degraded > 0,
        "the sweep never degraded a shard — tier-1 recovery untested"
    );
    assert!(
        aborted > 0,
        "the sweep never aborted a merge — tier-2 failure untested"
    );
    eprintln!(
        "hier chaos: {} scenarios + 10 hostile, {successes} ok ({shard_degraded} with degraded \
         shards), {aborted} merge aborts, {other_failures} other typed failures",
        grid.len()
    );
}
