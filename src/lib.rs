//! # fednum — private and efficient federated numerical aggregation
//!
//! Umbrella crate re-exporting the whole workspace: a Rust implementation of
//! **bit-pushing** (Cormode, Markov, Srinivas — EDBT 2024) together with the
//! baselines it is evaluated against, a simulated secure-aggregation
//! substrate, a federated environment simulator, workload generators, and an
//! experiment harness.
//!
//! ## Quick start
//!
//! ```
//! use fednum::core::encoding::FixedPointCodec;
//! use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
//! use fednum::core::sampling::BitSampling;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 10k clients each hold a private value in [0, 255].
//! let values: Vec<f64> = (0..10_000).map(|i| (i % 200) as f64).collect();
//! let truth = values.iter().sum::<f64>() / values.len() as f64;
//!
//! let codec = FixedPointCodec::integer(8);           // 8-bit clipping codec
//! let sampling = BitSampling::geometric(8, 0.5);     // p_j ∝ 2^{0.5 j}
//! let protocol = BasicBitPushing::new(BasicConfig::new(codec, sampling));
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let outcome = protocol.run(&values, &mut rng);
//! assert!((outcome.estimate - truth).abs() / truth < 0.05);
//! ```
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! reproduction of every figure in the paper.

pub use fednum_core as core;
pub use fednum_fedsim as fedsim;
pub use fednum_hiersec as hiersec;
pub use fednum_ldp as ldp;
pub use fednum_metrics as metrics;
pub use fednum_secagg as secagg;
pub use fednum_transport as transport;
pub use fednum_workloads as workloads;

// The unified entry point for every round flavor, hoisted to the crate
// root: `fednum::RoundBuilder::new(config).run(&values)`.
pub use fednum_transport::{RoundBuilder, RoundDetail, RoundOutcome, ShuffleConfig};

// The bit-plane aggregation surface behind `RoundBuilder::batched(chunk)`:
// the per-bit-position bitmap representation clients' one-bit reports are
// packed into, and the chunked multi-client wire frame that carries it.
// Shapes that cannot batch (adaptive, shuffle tier, injected faults,
// straggler salvage, zero chunk) are rejected up front with
// `FedError::InvalidConfig`.
pub use fednum_core::bits::BitPlanes;
pub use fednum_core::wire::{BatchReportMessage, MAX_BATCH_BITS};
