//! Federated learning with bit-pushed gradients: train a linear model where
//! every client discloses exactly one bit of one (clipped) gradient
//! coordinate per step — the Section 3 "subroutine in federated learning"
//! use case, with feature normalization from Section 3.4.
//!
//! ```text
//! cargo run --release --example federated_learning
//! ```

use fednum::core::encoding::FixedPointCodec;
use fednum::core::normalize::FeatureNormalizer;
use fednum::core::privacy::RandomizedResponse;
use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
use fednum::core::sampling::BitSampling;
use fednum::fedsim::{train_linear, FedLearnConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    // 40 000 clients each hold one (x, y) example of
    //   y = 2 x0 - 1.5 x1 + 0.5 + noise,
    // with x1 on a wildly different scale (motivating normalization).
    let n = 40_000;
    let mut rng = StdRng::seed_from_u64(11);
    let mut raw_x1 = Vec::with_capacity(n);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x0: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let x1_raw: f64 = 500.0 + 100.0 * (rng.random::<f64>() * 2.0 - 1.0);
        raw_x1.push(x1_raw);
        xs.push(vec![x0, x1_raw]);
        let noise = (rng.random::<f64>() - 0.5) * 0.1;
        // The "true" normalized feature is (x1_raw - 500) / ~57.7.
        ys.push(2.0 * x0 - 1.5 * ((x1_raw - 500.0) / 57.74) + 0.5 + noise);
    }

    // Step 1: federated feature normalization (Section 3.4) — the raw
    // feature never leaves the device; only one bit per client per fit.
    let mean_est = BasicBitPushing::new(BasicConfig::new(
        FixedPointCodec::integer(10), // x1 < 1024
        BitSampling::geometric(10, 1.0),
    ));
    let dev_est = BasicBitPushing::new(BasicConfig::new(
        FixedPointCodec::integer(14), // deviations² ≤ ~100² < 2^14
        BitSampling::geometric(14, 1.0),
    ));
    let norm = FeatureNormalizer::fit(&raw_x1, &mean_est, &dev_est, &mut rng);
    println!(
        "normalizer fitted federatedly: mean = {:.1} (true 500), std = {:.1} (true ~57.7)",
        norm.mean, norm.std
    );
    for x in &mut xs {
        x[1] = norm.normalize(x[1]);
    }

    // Step 2: federated training — one bit of one gradient coordinate per
    // client per step, under eps = 4 randomized response.
    let config = FedLearnConfig::new()
        .with_steps(60)
        .with_learning_rate(0.4)
        .with_privacy(RandomizedResponse::from_epsilon(4.0));
    let trace = train_linear(&xs, &ys, &config, &mut rng);

    println!(
        "trained model: w = [{:.3}, {:.3}], b = {:.3}  (true: [2.0, -1.5], 0.5)",
        trace.model.weights[0], trace.model.weights[1], trace.model.bias
    );
    println!(
        "loss: {:.4} (step 1) -> {:.4} (step {})",
        trace.losses[0],
        trace.losses.last().unwrap(),
        trace.losses.len()
    );
    println!(
        "privacy: each client disclosed {} randomized gradient bits total ({} steps x 1 bit)",
        trace.bits_per_client, config.steps
    );
    assert!((trace.model.weights[0] - 2.0).abs() < 0.5);
    assert!((trace.model.weights[1] + 1.5).abs() < 0.5);
}
