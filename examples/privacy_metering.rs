//! Privacy metering: per-client accounting of disclosed bits and ε, with an
//! enforced budget (Section 1.1's "privacy metering" control surface).
//!
//! Three aggregation tasks run over the same fleet; the ledger caps every
//! client at two disclosed bits and ε = 2 total, so the third task must run
//! on the clients with budget remaining.
//!
//! ```text
//! cargo run --release --example privacy_metering
//! ```

use fednum::core::encoding::FixedPointCodec;
use fednum::core::privacy::{PrivacyBudget, PrivacyLedger, RandomizedResponse};
use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
use fednum::core::sampling::BitSampling;
use fednum::workloads::{Dataset, LogNormal, Normal, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 20_000;
    let mut rng = StdRng::seed_from_u64(5);

    // Each client holds three features.
    let feature_a = Dataset::draw(&Normal::new(400.0, 80.0), n, 1);
    let feature_b = Dataset::draw(&Uniform::new(0.0, 1000.0), n, 2);
    let feature_c = Dataset::draw(&LogNormal::new(4.0, 0.6), n, 3);

    // Budget: at most 2 private bits and ε = 2.0 per client, ever.
    let budget = PrivacyBudget {
        max_bits: Some(2),
        max_epsilon: Some(2.0),
    };
    let mut ledger = PrivacyLedger::with_budget(budget);
    let epsilon_per_bit = 1.0;
    let rr = RandomizedResponse::from_epsilon(epsilon_per_bit);

    let protocol = |bits: u32| {
        BasicBitPushing::new(
            BasicConfig::new(
                FixedPointCodec::integer(bits),
                BitSampling::geometric(bits, 2.0),
            )
            .with_privacy(rr),
        )
    };

    for (task, (name, data)) in [
        ("feature A", &feature_a),
        ("feature B", &feature_b),
        ("feature C", &feature_c),
    ]
    .into_iter()
    .enumerate()
    {
        // Charge the ledger one bit per participating client; clients whose
        // budget is exhausted sit the task out.
        let mut eligible = Vec::new();
        for (client, &value) in data.values().iter().enumerate() {
            if ledger.charge(client as u64, 1, epsilon_per_bit).is_ok() {
                eligible.push(value);
            }
        }
        if eligible.len() < 1000 {
            println!(
                "task {task} ({name}): skipped — only {} clients have budget left",
                eligible.len()
            );
            continue;
        }
        let est = protocol(10).run(&eligible, &mut rng).estimate;
        let truth = eligible.iter().sum::<f64>() / eligible.len() as f64;
        println!(
            "task {task} ({name}): {} participants, estimate {est:.1} (truth {truth:.1})",
            eligible.len()
        );
    }

    println!(
        "ledger: {} clients metered, max bits/client = {}, max eps/client = {:.1}, total bits = {}",
        ledger.clients(),
        ledger.max_bits_per_client(),
        ledger.max_epsilon_per_client(),
        ledger.total_bits()
    );
    assert!(ledger.max_bits_per_client() <= 2, "budget must hold");
    println!(
        "worst-case promise: no client ever disclosed more than {} randomized bits — a guarantee \
         that holds regardless of any DP analysis.",
        ledger.max_bits_per_client()
    );
}
