//! A private age survey: estimate the mean and variance of ages across a
//! federated population with an ε-LDP guarantee, each client disclosing one
//! randomized bit of one value.
//!
//! Mirrors the paper's census-data evaluation (Figures 2 and 3).
//!
//! ```text
//! cargo run --release --example census_age_survey
//! ```

use fednum::core::encoding::FixedPointCodec;
use fednum::core::privacy::{BitSquash, RandomizedResponse};
use fednum::core::protocol::adaptive::{AdaptiveBitPushing, AdaptiveConfig};
use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
use fednum::core::sampling::BitSampling;
use fednum::core::variance::VarianceViaCentered;
use fednum::workloads::{CensusAges, Dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ages = CensusAges::new();
    let population = Dataset::draw(&ages, 50_000, 11);
    println!(
        "synthetic census cohort: n = {}, true mean age = {:.2}, true variance = {:.1}",
        population.len(),
        population.mean(),
        population.variance()
    );

    // --- Mean under ε = 1 local differential privacy ---------------------
    let epsilon = 1.0;
    let rr = RandomizedResponse::from_epsilon(epsilon);
    let bits = 8; // ages < 128; one vacuous bit on top, as deployed configs do
    let dp_mean = BasicBitPushing::new(
        BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, 2.0), // weighted a=1.0, best under DP (Fig 3)
        )
        .with_privacy(rr)
        .with_squash(BitSquash::Absolute(0.05)),
    );
    let mut rng = StdRng::seed_from_u64(3);
    let outcome = dp_mean.run(population.values(), &mut rng);
    println!(
        "mean age under eps={epsilon} LDP: {:.2} (error {:.2}, every client disclosed exactly 1 randomized bit)",
        outcome.estimate,
        (outcome.estimate - population.mean()).abs()
    );

    // --- Variance without privacy noise (Lemma 3.5, centered form) -------
    let mean_est = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(bits)));
    // Squared deviations from the mean are below ~90² < 2^13.
    let dev_est = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(13)));
    let var_est = VarianceViaCentered::new(mean_est, dev_est);
    let var = var_est.estimate_variance(population.values(), &mut rng);
    println!(
        "variance of ages (adaptive, centered reduction): {var:.1} (truth {:.1}, NRMSE {:.3})",
        population.variance(),
        (var - population.variance()).abs() / population.variance()
    );

    // --- The likelihood-ratio view of the guarantee ----------------------
    println!(
        "per-bit plausible deniability: a reported bit is truthful with p = {:.3}; \
         any observer's likelihood ratio is bounded by e^eps = {:.2}",
        rr.p(),
        epsilon.exp()
    );
}
