//! Device-health telemetry monitoring: the Section 4.3 deployment scenario.
//!
//! A heavy-tailed metric ("mostly 0/1 with rare huge outliers") is clipped
//! to a fixed bit depth, aggregated over an unreliable fleet with
//! auto-adjusted bit sampling, transported through simulated secure
//! aggregation, and monitored for heavy-tail instability with the
//! upper-bound tracker.
//!
//! ```text
//! cargo run --release --example telemetry_monitoring
//! ```

use fednum::core::bounds::UpperBoundTracker;
use fednum::core::encoding::FixedPointCodec;
use fednum::core::protocol::basic::BasicConfig;
use fednum::core::sampling::BitSampling;
use fednum::fedsim::round::{FederatedMeanConfig, SecAggSettings};
use fednum::fedsim::{DropoutModel, LatencyModel};
use fednum::workloads::{Dataset, MostlyBinaryWithOutliers, Sampler};
use fednum::RoundBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A metric whose typical values are 0 and 1. From round 2 onward a
    // buggy client build ships and 0.1% of clients start reporting values
    // five orders of magnitude larger (non-stationary heavy tail).
    let healthy = MostlyBinaryWithOutliers::new(0.32, 0.0, 0.0);
    let regressed = MostlyBinaryWithOutliers::new(0.32, 0.001, 250_000.0);
    println!(
        "telemetry metric: typical value ~ 0.32; after the regression the raw population mean \
         jumps to {:.1} (outlier-dominated!)",
        regressed.mean().unwrap(),
    );

    // Deployment guidance: clip to a fixed bit depth so the mean becomes a
    // meaningful winsorized statistic.
    let bits = 8;
    let mut tracker = UpperBoundTracker::new(4.0);
    let mut rng = StdRng::seed_from_u64(21);

    for round in 0..5u64 {
        let metric = if round < 2 { &healthy } else { &regressed };
        let cohort = Dataset::draw(metric, 20_000, 100 + round);
        tracker.record_round(cohort.max());

        let protocol = BasicConfig::new(
            FixedPointCodec::integer(bits),
            BitSampling::geometric(bits, 1.0),
        );
        let config = FederatedMeanConfig::new(protocol)
            .with_dropout(DropoutModel::phased(0.15, 0.05))
            .with_auto_adjust(4, 50, 0.7)
            .with_secagg(SecAggSettings {
                threshold_fraction: 0.5,
                ..SecAggSettings::default()
            })
            .with_latency(LatencyModel::typical_fleet());

        let out = RoundBuilder::new(config)
            .rng(&mut rng)
            .run(cohort.values())
            .expect("round should succeed with 80% availability")
            .flat()
            .expect("flat round")
            .clone();
        let winsorized_truth = cohort.clipped_mean(((1u64 << bits) - 1) as f64);
        println!(
            "round {round}: clipped mean = {:.3} (truth {:.3}), {} reports in {} wave(s), \
             {:.1} min, clip rate {:.2}%, secagg recovered {} dropout masks{}",
            out.outcome.estimate,
            winsorized_truth,
            out.reports,
            out.waves_used,
            out.completion_time,
            out.outcome.clip_fraction * 100.0,
            out.secagg.map_or(0, |s| s.recovered_pairwise),
            if tracker.flagged() {
                "  [BOUND JUMP]"
            } else {
                ""
            },
        );
    }

    println!(
        "upper-bound monitor: max observed = {:.0}, heavy-tail flag = {}, suggested clip depth = {} bits",
        tracker.latest().unwrap(),
        tracker.ever_flagged(),
        tracker.suggested_bits().unwrap()
    );
    assert!(
        tracker.ever_flagged(),
        "the regression must trip the monitor"
    );
    println!(
        "note: the clipped estimate tracks the winsorized target; the post-regression raw mean \
         ({:.0}) was never a meaningful quantity to estimate — exactly the Section 4.3 finding.",
        regressed.mean().unwrap()
    );
}
