//! Quickstart: estimate a population mean with bit-pushing, disclosing at
//! most one bit per client.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fednum::core::encoding::FixedPointCodec;
use fednum::core::protocol::adaptive::{AdaptiveBitPushing, AdaptiveConfig};
use fednum::core::protocol::basic::{BasicBitPushing, BasicConfig};
use fednum::core::sampling::BitSampling;
use fednum::workloads::{Dataset, Normal};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 10 000 clients each hold one private value.
    let population = Dataset::draw(&Normal::new(500.0, 100.0), 10_000, 7);
    let truth = population.mean();
    println!(
        "population: n = {}, true mean = {truth:.2}",
        population.len()
    );

    // Single-round weighted bit-pushing: 12-bit clipping codec, sampling
    // bit j with probability proportional to 2^j.
    let protocol = BasicBitPushing::new(BasicConfig::new(
        FixedPointCodec::integer(12),
        BitSampling::geometric(12, 1.0),
    ));
    let mut rng = StdRng::seed_from_u64(42);
    let outcome = protocol.run(population.values(), &mut rng);
    println!(
        "weighted bit-pushing:  estimate = {:.2}  (predicted std {:.2}, {} reports, 1 bit each)",
        outcome.estimate,
        outcome.predicted_std,
        outcome.accumulator.total_reports(),
    );

    // Two-round adaptive bit-pushing: round 1 learns the bit means, round 2
    // re-optimizes the sampling weights (Lemma 3.3) and pools both rounds.
    let adaptive = AdaptiveBitPushing::new(AdaptiveConfig::new(FixedPointCodec::integer(12)));
    let outcome = adaptive.run(population.values(), &mut rng);
    println!(
        "adaptive bit-pushing:  estimate = {:.2}  (round-2 probabilities drop {} vacuous bits)",
        outcome.estimate,
        outcome
            .round2_sampling
            .probs()
            .iter()
            .filter(|&&p| p == 0.0)
            .count(),
    );

    let err = (outcome.estimate - truth).abs() / truth;
    println!("relative error: {:.3}%", err * 100.0);
    assert!(err < 0.05, "quickstart should land within 5%");
}
