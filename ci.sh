#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#
#   ./ci.sh          # full gate: build, tests, clippy, fmt
#   ./ci.sh quick    # skip clippy/fmt (inner-loop smoke)
#
# Everything runs --offline: the workspace vendors all dependencies
# (vendor/) and must never reach a registry.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$1"; }

step "cargo build --release"
cargo build --release --offline --workspace

step "proptest regression seeds (deterministic smoke)"
# The shrunk cases recorded in tests/proptests.proptest-regressions are
# replayed twice: once as explicit unit tests (runner-independent), once by
# the proptest runner itself, which reads the seed file before generating
# novel cases. PROPTEST_CASES=1 keeps the second pass to (seeds + 1 case).
cargo test --release --offline --test proptests \
    regression_constant_population_v945_seed0_n2 -- --exact
PROPTEST_CASES=1 cargo test --release --offline --test proptests \
    constant_population_underestimates_by_unsampled_bits
# Transport wire-codec regression anchors (boundary frames pinned as unit
# tests), plus a 1-case proptest replay of the round-trip property.
cargo test --release --offline -p fednum-transport --test proptest_messages \
    regression_max_varint_fields_round_trip -- --exact
cargo test --release --offline -p fednum-transport --test proptest_messages \
    regression_hostile_count_fails_closed -- --exact
PROPTEST_CASES=1 cargo test --release --offline -p fednum-transport \
    --test proptest_messages encode_decode_identity
# Straggler-salvage regression anchor: a pinned seed that must keep
# recovering >50 stragglers and replaying bit-identically.
cargo test --release --offline -p fednum-transport --test salvage \
    regression_salvage_seed_0x5a17_recovers_and_stays_pinned -- --exact

step "cargo test (workspace)"
cargo test -q --release --offline --workspace

step "hierarchical chaos matrix (both secagg tiers under fault injection)"
cargo test -q --release --offline --test chaos \
    chaos_matrix_composes_with_hierarchical_secagg -- --exact

step "salvage chaos pass (salvage never worse than discard)"
cargo test -q --release --offline --test chaos \
    salvage_never_worsens_the_estimate_across_the_chaos_grid -- --exact

step "bench_transport --hiersec smoke (fixed seed, 10s budget)"
# Quick grid (50k clients, K in {4,16}, 1/4 workers); the binary itself
# enforces the wall-clock budget and the >=2x modeled pool speedup.
./target/release/bench_transport --hiersec --quick \
    --out results/BENCH_hiersec_smoke.json

step "bench_transport --salvage smoke (fixed seed, recovery/overhead gates)"
# Quick sweep (50k clients, straggle rates {0.05,0.1,0.2}); the binary
# enforces >=90% straggler recovery per rate and <=15% wall overhead.
./target/release/bench_transport --salvage --quick \
    --out results/BENCH_salvage_smoke.json

step "tcp-loopback smoke (fednumd + concurrent drivers over real sockets)"
# Spawns the real fednumd binary on an OS-assigned port, holds its stdin
# open on a FIFO (EOF is its hang-up signal), and drives it with
# bench_tcp: in-memory parity assert, 3 concurrent driver sessions, the
# >=100k client-frames/s gate, then the admin Shutdown frame. fednumd
# exits 2 on leaked threads, and we assert its printed peak concurrency.
FEDNUMD_LOG=$(mktemp)
FEDNUMD_FIFO=$(mktemp -u)
mkfifo "$FEDNUMD_FIFO"
./target/release/fednumd --addr 127.0.0.1:0 --workers 4 \
    > "$FEDNUMD_LOG" < "$FEDNUMD_FIFO" &
FEDNUMD_PID=$!
exec 8> "$FEDNUMD_FIFO"
FEDNUMD_ADDR=""
for _ in $(seq 100); do
    FEDNUMD_ADDR=$(sed -n 's/^fednumd listening on //p' "$FEDNUMD_LOG")
    [[ -n "$FEDNUMD_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$FEDNUMD_ADDR" ]] || { echo "fednumd never came up"; exit 1; }
./target/release/bench_tcp --quick --addr "$FEDNUMD_ADDR" --shutdown-daemon \
    --out results/BENCH_tcp_smoke.json
wait "$FEDNUMD_PID"
exec 8>&-
rm -f "$FEDNUMD_FIFO"
cat "$FEDNUMD_LOG"
grep -Eq 'peak [3-9][0-9]* concurrent' "$FEDNUMD_LOG" \
    || { echo "fednumd never served 3 concurrent sessions"; exit 1; }
rm -f "$FEDNUMD_LOG"

if [[ "${1:-}" != "quick" ]]; then
    step "cargo doc --no-deps"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

    step "cargo clippy --workspace --all-targets -- -D warnings"
    # -D warnings includes deprecation warnings: internal code may not
    # call the deprecated run_* wrappers superseded by RoundBuilder. The
    # vendored offline stand-ins (vendor/) are excluded — they mirror
    # external crates and are not held to repo lint standards.
    cargo clippy --workspace \
        --exclude serde --exclude serde_derive --exclude serde_json \
        --exclude rand --exclude proptest --exclude criterion \
        --all-targets --offline -- -D warnings

    step "cargo fmt --check"
    cargo fmt --check
fi

step "CI gate passed"
