#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#
#   ./ci.sh          # full gate: build, tests, clippy, fmt
#   ./ci.sh quick    # skip clippy/fmt (inner-loop smoke)
#
# Everything runs --offline: the workspace vendors all dependencies
# (vendor/) and must never reach a registry.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$1"; }

step "cargo build --release"
cargo build --release --offline --workspace

step "proptest regression seeds (deterministic smoke)"
# The shrunk cases recorded in tests/proptests.proptest-regressions are
# replayed twice: once as explicit unit tests (runner-independent), once by
# the proptest runner itself, which reads the seed file before generating
# novel cases. PROPTEST_CASES=1 keeps the second pass to (seeds + 1 case).
cargo test --release --offline --test proptests \
    regression_constant_population_v945_seed0_n2 -- --exact
PROPTEST_CASES=1 cargo test --release --offline --test proptests \
    constant_population_underestimates_by_unsampled_bits
# Transport wire-codec regression anchors (boundary frames pinned as unit
# tests), plus a 1-case proptest replay of the round-trip property.
cargo test --release --offline -p fednum-transport --test proptest_messages \
    regression_max_varint_fields_round_trip -- --exact
cargo test --release --offline -p fednum-transport --test proptest_messages \
    regression_hostile_count_fails_closed -- --exact
# Batched-wire anchors: a hostile chunk frame claiming 2^40 slots and a
# non-canonical padding bit past the slot count must both fail closed.
cargo test --release --offline -p fednum-transport --test proptest_messages \
    regression_hostile_batch_slot_count_fails_closed -- --exact
cargo test --release --offline -p fednum-transport --test proptest_messages \
    regression_batch_noncanonical_padding_rejected -- --exact
PROPTEST_CASES=1 cargo test --release --offline -p fednum-transport \
    --test proptest_messages encode_decode_identity
# Straggler-salvage regression anchor: a pinned seed that must keep
# recovering >50 stragglers and replaying bit-identically.
cargo test --release --offline -p fednum-transport --test salvage \
    regression_salvage_seed_0x5a17_recovers_and_stays_pinned -- --exact

step "cargo test (workspace)"
cargo test -q --release --offline --workspace

step "hierarchical chaos matrix (both secagg tiers under fault injection)"
cargo test -q --release --offline --test chaos \
    chaos_matrix_composes_with_hierarchical_secagg -- --exact

step "salvage chaos pass (salvage never worse than discard)"
cargo test -q --release --offline --test chaos \
    salvage_never_worsens_the_estimate_across_the_chaos_grid -- --exact

step "bench_transport --hiersec smoke (fixed seed, 10s budget)"
# Quick grid (50k clients, K in {4,16}, 1/4 workers); the binary itself
# enforces the wall-clock budget and the >=2x modeled pool speedup.
# --smoke = quick sizes + the BENCH_*_smoke.json artifact name (see
# EXPERIMENTS.md: smoke runs never overwrite a full run's numbers).
./target/release/bench_transport --hiersec --smoke

step "bench_transport --salvage smoke (fixed seed, recovery/overhead gates)"
# Quick sweep (50k clients, straggle rates {0.05,0.1,0.2}); the binary
# enforces >=90% straggler recovery per rate and <=15% wall overhead.
./target/release/bench_transport --salvage --smoke

step "tcp-loopback smoke (fednumd + concurrent drivers over real sockets)"
# Spawns the real fednumd binary on an OS-assigned port, holds its stdin
# open on a FIFO (EOF is its hang-up signal), and drives it with
# bench_tcp: in-memory parity assert, 3 concurrent driver sessions, the
# >=100k client-frames/s gate, then the admin Shutdown frame. fednumd
# exits 2 on leaked threads, and we assert its printed peak concurrency.
FEDNUMD_LOG=$(mktemp)
FEDNUMD_FIFO=$(mktemp -u)
mkfifo "$FEDNUMD_FIFO"
./target/release/fednumd --addr 127.0.0.1:0 --workers 4 \
    > "$FEDNUMD_LOG" < "$FEDNUMD_FIFO" &
FEDNUMD_PID=$!
exec 8> "$FEDNUMD_FIFO"
FEDNUMD_ADDR=""
for _ in $(seq 100); do
    FEDNUMD_ADDR=$(sed -n 's/^fednumd listening on //p' "$FEDNUMD_LOG")
    [[ -n "$FEDNUMD_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$FEDNUMD_ADDR" ]] || { echo "fednumd never came up"; exit 1; }
./target/release/bench_tcp --smoke --addr "$FEDNUMD_ADDR" --shutdown-daemon
wait "$FEDNUMD_PID"
exec 8>&-
rm -f "$FEDNUMD_FIFO"
cat "$FEDNUMD_LOG"
grep -Eq 'peak [3-9][0-9]* concurrent' "$FEDNUMD_LOG" \
    || { echo "fednumd never served 3 concurrent sessions"; exit 1; }
rm -f "$FEDNUMD_LOG"

step "bench_tcp --longitudinal smoke (amortized per-round overhead gate)"
# Multi-round campaign over one connection vs fresh per-round sessions,
# with and without the durable ledger; the binary enforces the <=10%
# amortized per-round overhead gate and per-round estimate parity.
./target/release/bench_tcp --longitudinal --smoke

step "bench_tcp --planes smoke (bit-plane wire: >=10x + scalar parity gates)"
# Pinned parity regression seeds first: batched plain/secagg rounds must
# stay bit-identical to the scalar path per seed across chunk sizes.
cargo test --release --offline -p fednum-transport --lib \
    coordinator::tests::batched_plain_round_is_bit_identical_per_seed -- --exact
cargo test --release --offline -p fednum-transport --lib \
    coordinator::tests::batched_secagg_round_is_bit_identical_per_seed -- --exact
# Then the throughput panel: the binary enforces batched-vs-scalar
# estimate parity over the socket (plain + secagg, 3 seeds) and the
# >=10x client-aggregation speedup over the scalar wire's frames/s.
./target/release/bench_tcp --planes --smoke

step "fleet smoke (fednumd + 50 fednumc processes, 5 seeded kills)"
# The real binaries end to end: fednumd hosts a 2-round, 40-cohort fleet
# campaign over a 50-participant population; 5 seeded victims die
# mid-round (3 hang up on assignment, 2 go silent for the heartbeat
# monitor). The daemon must salvage every death, complete both rounds
# with nothing abandoned, dismiss every survivor, and exit 0 (a leaked
# worker thread is exit 2); every fednumc must exit 0 (scripted deaths
# count their own fault as success).
FLEET_LOG=$(mktemp)
FLEET_FIFO=$(mktemp -u)
mkfifo "$FLEET_FIFO"
./target/release/fednumd --addr 127.0.0.1:0 \
    --fleet-cohort 40 --fleet-population 50 --fleet-rounds 2 \
    --fleet-heartbeat-ms 300 --fleet-liveness-ms 3000 \
    --fleet-deadline-ms 30000 --fleet-seed 7 --fleet-value-seed 99 \
    > "$FLEET_LOG" < "$FLEET_FIFO" &
FLEET_PID=$!
exec 9> "$FLEET_FIFO"
rm -f "$FLEET_FIFO"
FLEET_ADDR=""
for _ in $(seq 100); do
    FLEET_ADDR=$(sed -n 's/^fednumd listening on //p' "$FLEET_LOG")
    [[ -n "$FLEET_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$FLEET_ADDR" ]] || { echo "fleet fednumd never came up"; exit 1; }
# Seeded victim selection: ids (29*k mod 50)+1 for k=1..5 — same seed,
# same victims, every run. First 3 hang up on assignment, last 2 mute.
FLEET_KILL_SEED=29
FLEET_PIDS=()
for id in $(seq 50); do
    FAIL=none
    for k in 1 2 3; do
        [[ "$id" -eq $(( FLEET_KILL_SEED * k % 50 + 1 )) ]] && FAIL=assign
    done
    for k in 4 5; do
        [[ "$id" -eq $(( FLEET_KILL_SEED * k % 50 + 1 )) ]] && FAIL=mute
    done
    ./target/release/fednumc --addr "$FLEET_ADDR" --client-id "$id" \
        --fail-at "$FAIL" --max-seconds 120 > /dev/null &
    FLEET_PIDS+=($!)
done
for pid in "${FLEET_PIDS[@]}"; do
    wait "$pid" || { echo "a fednumc participant failed"; exit 1; }
done
wait "$FLEET_PID" || { echo "fleet fednumd exited unclean"; cat "$FLEET_LOG"; exit 1; }
exec 9>&-
cat "$FLEET_LOG"
[[ $(grep -c 'fednumd: fleet round .* 0 abandoned$' "$FLEET_LOG") -eq 2 ]] \
    || { echo "fleet rounds did not all complete cleanly"; exit 1; }
grep 'fednumd: fleet round' "$FLEET_LOG" \
    | grep -Eq 'salvage [1-9][0-9]* hangup|hangup / [1-9][0-9]* heartbeat' \
    || { echo "the seeded kills were never salvaged"; exit 1; }
grep -q ' 0 protocol error(s)' "$FLEET_LOG" \
    || { echo "fleet participants tripped the daemon protocol"; exit 1; }
rm -f "$FLEET_LOG"

step "chaos smoke (fednumd + 50 fednumc through the fednumx fault proxy)"
# The same 2-round fleet campaign, but every participant connection now
# crosses the seeded fednumx fault-injection proxy: 30% of connections
# are reset mid-frame, 10% stalled mid-frame for 100ms, 10% deliver a
# duplicated frame, and every frame may be split at seeded boundaries
# (corruption stays 0 so the zero-protocol-error gate below keeps its
# meaning). Participants must reconnect with Resume and retransmit;
# the daemon must dedup retransmitted reports. Gates: every fednumc
# exits 0, both rounds complete with a full cohort and 0 abandoned, at
# least one session actually resumed, no report was double-counted, and
# the daemon saw zero protocol errors.
CHAOS_LOG=$(mktemp)
CHAOS_FIFO=$(mktemp -u)
mkfifo "$CHAOS_FIFO"
./target/release/fednumd --addr 127.0.0.1:0 \
    --fleet-cohort 40 --fleet-population 50 --fleet-rounds 2 \
    --fleet-heartbeat-ms 300 --fleet-liveness-ms 3000 \
    --fleet-deadline-ms 30000 --fleet-seed 7 --fleet-value-seed 99 \
    > "$CHAOS_LOG" < "$CHAOS_FIFO" &
CHAOS_PID=$!
exec 9> "$CHAOS_FIFO"
rm -f "$CHAOS_FIFO"
CHAOS_ADDR=""
for _ in $(seq 100); do
    CHAOS_ADDR=$(sed -n 's/^fednumd listening on //p' "$CHAOS_LOG")
    [[ -n "$CHAOS_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$CHAOS_ADDR" ]] || { echo "chaos fednumd never came up"; exit 1; }
CHAOS_X_LOG=$(mktemp)
CHAOS_X_FIFO=$(mktemp -u)
mkfifo "$CHAOS_X_FIFO"
./target/release/fednumx --upstream "$CHAOS_ADDR" --seed 11 \
    --reset-frac 0.3 --stall-frac 0.1 --dup-frac 0.1 --stall-ms 100 \
    > "$CHAOS_X_LOG" < "$CHAOS_X_FIFO" &
CHAOS_X_PID=$!
exec 7> "$CHAOS_X_FIFO"
rm -f "$CHAOS_X_FIFO"
CHAOS_X_ADDR=""
for _ in $(seq 100); do
    CHAOS_X_ADDR=$(sed -n 's/^fednumx listening on //p' "$CHAOS_X_LOG")
    [[ -n "$CHAOS_X_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$CHAOS_X_ADDR" ]] || { echo "fednumx never came up"; exit 1; }
CHAOS_PIDS=()
for id in $(seq 50); do
    ./target/release/fednumc --addr "$CHAOS_X_ADDR" --client-id "$id" \
        --retries 20 --backoff-ms 25 --max-seconds 120 > /dev/null &
    CHAOS_PIDS+=($!)
done
for pid in "${CHAOS_PIDS[@]}"; do
    wait "$pid" || { echo "a fednumc participant failed under chaos"; exit 1; }
done
wait "$CHAOS_PID" \
    || { echo "chaos fednumd exited unclean"; cat "$CHAOS_LOG"; exit 1; }
exec 9>&-
exec 7>&-
wait "$CHAOS_X_PID" \
    || { echo "fednumx exited unclean"; cat "$CHAOS_X_LOG"; exit 1; }
cat "$CHAOS_LOG"
cat "$CHAOS_X_LOG"
[[ $(grep -c 'fednumd: fleet round .* 0 abandoned$' "$CHAOS_LOG") -eq 2 ]] \
    || { echo "chaos rounds did not all complete cleanly"; exit 1; }
# A double-counted report would overfill the cohort: both rounds must
# report exactly cohort-many accepted reports.
[[ $(grep -c '40 report(s) from a cohort of 40' "$CHAOS_LOG") -eq 2 ]] \
    || { echo "a chaos round did not gather exactly its cohort"; exit 1; }
grep -Eq 'fleet resilience: [1-9][0-9]* resume' "$CHAOS_LOG" \
    || { echo "no session ever resumed under chaos"; exit 1; }
grep -q ' 0 protocol error(s)' "$CHAOS_LOG" \
    || { echo "chaos faults tripped the daemon protocol"; exit 1; }
grep -Eq '[1-9][0-9]* reset' "$CHAOS_X_LOG" \
    || { echo "the fault proxy never injected a reset"; exit 1; }
rm -f "$CHAOS_LOG" "$CHAOS_X_LOG"

step "bench_tcp --chaos smoke (recovery >=95%, overhead <=25%, bit-identical)"
# Fault-free vs chaotic campaign (reference fault schedule through the
# in-process proxy) with the same seed; the binary enforces >=20% of
# connections reset, >=95% faulted-session recovery, <=25% round-wall
# overhead, zero double-counts both arms, protocol errors == injected
# corruptions exactly, and bit-identical per-round estimates.
./target/release/bench_tcp --chaos --smoke

step "amplification regression anchor (fixed (eps, n, delta) pinned to 1e-12)"
# The shuffle tier's amplification-by-shuffling bound: three pinned
# (local epsilon, cohort, delta) triples must reproduce their recorded
# amplified epsilons to 1e-12, so a numerics drift can never silently
# loosen what the durable ledger bills.
cargo test --release --offline -p fednum-core --lib \
    privacy::amplification::tests::regression_amplified_epsilon_pinned_to_1e12 -- --exact

step "bench_tcp --shuffle smoke (TCP parity + amplified-epsilon gates)"
# One shuffled round (clients -> shuffler session -> anonymized batch ->
# coordinator) over loopback TCP vs in memory; the binary enforces
# bit-identical estimates/traffic/charges and that the billed epsilon is
# the amplified central rate, strictly below the local one.
./target/release/bench_tcp --shuffle --smoke

step "bench_tcp --fleet smoke (5k idle connections + 1k-cohort round gate)"
# One event-loop daemon vs a 6000-session nonblocking client pool on one
# thread; the binary enforces >=5k concurrently-connected idle clients
# sustained (zero drops) while the 1k-cohort round completes in budget.
./target/release/bench_tcp --fleet --smoke

step "crash-recovery smoke (kill -9 mid-round, restart, bit-identical ledger)"
# Starts fednumd with a durable state dir, runs a reference 3-round
# campaign to completion, then repeats it on a fresh state dir with the
# driver halting before round 2's commit and the daemon SIGKILLed mid
# campaign. A restart on the same --state-dir must replay the WAL,
# discard the uncommitted round's staged charges, resume at round 2, and
# finish with a ledger digest identical to the uninterrupted reference.
CRASH_DIR=$(mktemp -d)
CRASH_LOG=$(mktemp)
# Helper: launch fednumd on an OS-assigned port with stdin held open on
# fd 8 (EOF is its graceful hang-up signal); sets CRASH_PID/CRASH_ADDR.
start_crash_daemon() {
    : > "$CRASH_LOG"
    CRASH_FIFO=$(mktemp -u)
    mkfifo "$CRASH_FIFO"
    ./target/release/fednumd --addr 127.0.0.1:0 "$@" \
        > "$CRASH_LOG" < "$CRASH_FIFO" &
    CRASH_PID=$!
    exec 8> "$CRASH_FIFO"
    rm -f "$CRASH_FIFO"
    CRASH_ADDR=""
    for _ in $(seq 100); do
        CRASH_ADDR=$(sed -n 's/^fednumd listening on //p' "$CRASH_LOG")
        [[ -n "$CRASH_ADDR" ]] && break
        sleep 0.1
    done
    [[ -n "$CRASH_ADDR" ]] \
        || { echo "fednumd never came up"; cat "$CRASH_LOG"; exit 1; }
}

# Reference: uninterrupted 3-round campaign, clean shutdown (exit 0).
start_crash_daemon --state-dir "$CRASH_DIR/ref"
REF_DIGEST=$(./target/release/fednum_campaign --addr "$CRASH_ADDR" --rounds 3 \
    | sed -n 's/^campaign digest: //p')
exec 8>&-
wait "$CRASH_PID"
[[ -n "$REF_DIGEST" ]] || { echo "reference campaign printed no digest"; exit 1; }

# Crash: rounds 0-1 committed, round 2 run but never committed, SIGKILL.
start_crash_daemon --state-dir "$CRASH_DIR/crash"
./target/release/fednum_campaign --addr "$CRASH_ADDR" --rounds 3 \
    --halt-before-commit 2 | grep -q 'halted before commit of round 2' \
    || { echo "crash driver never reached the halt point"; exit 1; }
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
exec 8>&-

# Restart on the same state dir: WAL replay must report the recovered
# campaign and discard the staged (uncommitted) round-2 charges.
start_crash_daemon --state-dir "$CRASH_DIR/crash"
grep -q 'recovered 1 campaign(s)' "$CRASH_LOG" \
    || { echo "restart did not report a recovered campaign"; cat "$CRASH_LOG"; exit 1; }
grep -Eq '[1-9][0-9]* staged charge' "$CRASH_LOG" \
    || { echo "restart discarded no staged charges"; cat "$CRASH_LOG"; exit 1; }
CRASH_DIGEST=$(./target/release/fednum_campaign --addr "$CRASH_ADDR" --rounds 3 \
    | sed -n 's/^campaign digest: //p')
exec 8>&-
wait "$CRASH_PID"
[[ "$CRASH_DIGEST" == "$REF_DIGEST" ]] \
    || { echo "ledger digests diverged: crash $CRASH_DIGEST vs ref $REF_DIGEST"; exit 1; }
echo "crash-recovery smoke: resumed ledger digest $CRASH_DIGEST matches reference"
rm -rf "$CRASH_DIR" "$CRASH_LOG"

if [[ "${1:-}" != "quick" ]]; then
    step "cargo doc --no-deps"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

    step "cargo clippy --workspace --all-targets -- -D warnings"
    # -D warnings includes deprecation warnings: internal code may not
    # call the deprecated run_* wrappers superseded by RoundBuilder. The
    # vendored offline stand-ins (vendor/) are excluded — they mirror
    # external crates and are not held to repo lint standards.
    cargo clippy --workspace \
        --exclude serde --exclude serde_derive --exclude serde_json \
        --exclude rand --exclude proptest --exclude criterion \
        --all-targets --offline -- -D warnings

    step "cargo fmt --check"
    cargo fmt --check
fi

step "CI gate passed"
